//! Property-based tests of the proportional model math (Eq. 6) through
//! the public API.

use propdiff::model::{Ddp, ProportionalModel};
use proptest::prelude::*;

/// Strategy: a valid DDP vector (nonincreasing, positive) of 2–6 classes.
fn ddp_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, 2..6).prop_map(|steps| {
        // Build a nonincreasing sequence by cumulative multiplication.
        let mut v = Vec::with_capacity(steps.len());
        let mut cur = 1.0;
        for s in steps {
            v.push(cur);
            cur *= s.clamp(0.05, 1.0);
        }
        v
    })
}

proptest! {
    /// Eq. (6) always reproduces the requested ratios exactly.
    #[test]
    fn predicted_delays_have_exact_ddp_ratios(
        ddps in ddp_strategy(),
        agg in 1.0f64..1e4,
        seed in 0u64..100,
    ) {
        let n = ddps.len();
        let mut lambdas = vec![0.0; n];
        // Deterministic pseudo-random rates from the seed.
        for (i, l) in lambdas.iter_mut().enumerate() {
            *l = 0.05 + ((seed + i as u64 * 7919) % 100) as f64 / 100.0;
        }
        let ddp = Ddp::new(&ddps).expect("strategy builds valid DDPs");
        let m = ProportionalModel::new(ddp);
        let d = m.predicted_delays(&lambdas, agg);
        for i in 0..n - 1 {
            let got = d[i] / d[i + 1];
            let want = ddps[i] / ddps[i + 1];
            prop_assert!((got - want).abs() / want < 1e-9);
        }
    }

    /// Eq. (6) always satisfies the conservation law Σλ_i d_i = λ·d̄.
    #[test]
    fn predicted_delays_conserve_backlog(
        ddps in ddp_strategy(),
        agg in 1.0f64..1e4,
    ) {
        let n = ddps.len();
        let m = ProportionalModel::new(Ddp::new(&ddps).expect("valid"));
        let lambdas: Vec<f64> = (1..=n).map(|i| i as f64 * 0.1).collect();
        let residual = m.conservation_residual(&lambdas, agg);
        let scale: f64 = lambdas.iter().sum::<f64>() * agg;
        prop_assert!(residual.abs() < 1e-9 * scale.max(1.0));
    }

    /// Higher classes always get lower predicted delays.
    #[test]
    fn predicted_delays_are_class_ordered(ddps in ddp_strategy()) {
        let n = ddps.len();
        let m = ProportionalModel::new(Ddp::new(&ddps).expect("valid"));
        let d = m.predicted_delays(&vec![0.2; n], 100.0);
        for w in d.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Feasibility is monotone in spacing on a fixed trace: if spacing r is
    /// infeasible, any wider spacing is too (checked on a small Poisson
    /// trace).
    #[test]
    fn feasibility_monotone_in_spacing(seed in 0u64..8) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let arrivals: Vec<(u64, u8, u32)> = (0..40_000)
            .map(|_| {
                t += -55.0 * (1.0 - rng.random::<f64>()).ln();
                let c = ((rng.random::<f64>() * 4.0) as u8).min(3);
                (t.round() as u64, c, 100u32)
            })
            .collect();
        let mut was_infeasible = false;
        for spacing in [2.0, 8.0, 32.0, 128.0, 512.0] {
            let m = ProportionalModel::new(Ddp::geometric(4, spacing).expect("valid"));
            let feasible = m.check_feasibility(&arrivals, 1.0).feasible();
            if was_infeasible {
                prop_assert!(!feasible, "feasibility regained at wider spacing {spacing}");
            }
            was_infeasible = !feasible;
        }
    }
}
