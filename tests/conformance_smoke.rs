//! Top-level smoke test wiring the conformance crate into the workspace
//! test run: the full named-check suite (the same registry the
//! `conformance` binary and CI execute) must pass on a couple of seeds.

#[test]
fn conformance_suite_smoke() {
    let failures = conformance::suite::run_suite(2, |_, _, _| {});
    assert!(
        failures.is_empty(),
        "conformance suite failed: {failures:#?}"
    );
}

#[test]
fn conformance_check_registry_is_complete() {
    let names: Vec<&str> = conformance::suite::all_checks()
        .iter()
        .map(|c| c.name)
        .collect();
    for expected in [
        "oracle-self-check",
        "wtp-oracle-diff",
        "bpr-proposition-1",
        "eq5-conservation",
        "time-rescale",
        "size-rescale",
        "eq7-feasibility-witness",
        "interleave-equivalence",
        "label-permutation",
    ] {
        assert!(names.contains(&expected), "missing check {expected}");
    }
}
