//! The ROADMAP's sharded-farm contract, asserted end-to-end: metrics from
//! per-seed shards, merged in any order, are **byte-identical** to one
//! registry that observed every stream back-to-back.

use propdiff::qsim::Session;
use propdiff::sched::{SchedulerKind, Sdp};
use propdiff::simcore::Time;
use propdiff::telemetry::MetricsRegistry;
use propdiff::traffic::{ClassSource, LoadPlan, SizeDist, PAPER_MEAN_PACKET_BYTES};

const SEEDS: [u64; 4] = [1, 2, 3, 5];
const PUNITS: u64 = 2_000;

fn paper_sources() -> Vec<ClassSource> {
    let fractions = [1.0 / 3.0; 3];
    LoadPlan::new(1.0, 0.9, &fractions, SizeDist::paper())
        .expect("valid load plan")
        .pareto_sources()
        .expect("valid sources")
}

fn run_seed(sources: &[ClassSource], seed: u64, registry: &mut MetricsRegistry) {
    let horizon = Time::from_ticks(PUNITS * PAPER_MEAN_PACKET_BYTES as u64);
    let mut sched = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    Session::sources(sources, horizon, seed, 1.0)
        .probe(registry)
        .run(sched.as_mut(), |_| {});
}

/// One registry observing N seeds sequentially vs N per-seed registries
/// merged — same bytes, in any merge order. Each shard starts and ends
/// drained (lossless replays deliver every enqueued packet), which is the
/// precondition for gauge high-water marks to merge exactly.
#[test]
fn sharded_registries_merge_bit_identical_to_sequential() {
    let sources = paper_sources();

    let mut sequential = MetricsRegistry::new();
    for &seed in &SEEDS {
        run_seed(&sources, seed, &mut sequential);
    }

    let shards: Vec<MetricsRegistry> = SEEDS
        .iter()
        .map(|&seed| {
            let mut shard = MetricsRegistry::new();
            run_seed(&sources, seed, &mut shard);
            assert!(
                shard.decisions() > 0,
                "seed {seed} produced an empty shard; the test would be vacuous"
            );
            shard
        })
        .collect();

    let mut forward = MetricsRegistry::new();
    for shard in &shards {
        forward.merge(shard);
    }
    let mut reverse = MetricsRegistry::new();
    for shard in shards.iter().rev() {
        reverse.merge(shard);
    }

    let want = sequential.to_json();
    assert_eq!(forward.to_json(), want, "forward merge differs");
    assert_eq!(reverse.to_json(), want, "reverse merge differs");
    // And the exposition built from merged shards matches too.
    assert_eq!(forward.to_prometheus(), sequential.to_prometheus());
}
