//! Cross-crate integration tests: the paper's headline claims, asserted
//! end-to-end through the public `propdiff` API at reduced scale.

use propdiff::qsim::{Experiment, Session};
use propdiff::sched::{SchedulerKind, Sdp};
use propdiff::PddSystem;

/// Fig. 1's core claim: WTP's successive-class delay ratios converge to
/// the inverse SDP ratios as utilization approaches 1.
#[test]
fn wtp_converges_to_proportional_model_at_heavy_load() {
    let sys = PddSystem::builder()
        .utilization(0.999)
        .horizon_punits(20_000)
        .seeds(vec![1, 2])
        .build()
        .unwrap();
    let r = sys.run();
    for (ratio, target) in r.ratios.iter().zip(&r.target_ratios) {
        assert!(
            (ratio - target).abs() / target < 0.2,
            "ratio {ratio} vs target {target}"
        );
    }
}

/// Fig. 1's comparison claim: across the heavy-load region WTP tracks the
/// proportional model at least as well as BPR (averaged over points).
#[test]
fn wtp_tracks_target_at_least_as_well_as_bpr() {
    let mut wtp_dev = 0.0;
    let mut bpr_dev = 0.0;
    for rho in [0.90, 0.95, 0.999] {
        let e = Experiment::paper(rho, Sdp::paper_default(), 20_000, vec![1, 2]);
        let rs = e.run_many(&[SchedulerKind::Wtp, SchedulerKind::Bpr]);
        wtp_dev += rs[0].ratio_deviation();
        bpr_dev += rs[1].ratio_deviation();
    }
    assert!(
        wtp_dev <= bpr_dev * 1.1,
        "WTP total deviation {wtp_dev} vs BPR {bpr_dev}"
    );
}

/// The conservation law (Eq. 5): on identical traffic, the byte-weighted
/// total waiting time is invariant across all work-conserving schedulers.
#[test]
fn conservation_law_across_all_schedulers() {
    let e = Experiment::paper(0.9, Sdp::paper_default(), 5_000, vec![9]);
    let trace = e.trace_for_seed(9);
    let mut weighted: Vec<(String, u128)> = Vec::new();
    for kind in SchedulerKind::ALL {
        let mut s = kind.build(&Sdp::paper_default(), 1.0);
        let mut total: u128 = 0;
        Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
            total += d.packet.size as u128 * d.wait().ticks() as u128;
        });
        weighted.push((kind.name().to_string(), total));
    }
    let first = weighted[0].1;
    for (name, w) in &weighted {
        assert_eq!(*w, first, "conservation law violated by {name}");
    }
}

/// The Eq. (6) targets derived for the Fig. 1 operating points are
/// feasible per Eq. (7) — the paper's §5 verification.
#[test]
fn figure_one_operating_points_are_feasible() {
    use propdiff::model::{Ddp, ProportionalModel};
    for rho in [0.8, 0.95] {
        let e = Experiment::paper(rho, Sdp::paper_default(), 20_000, vec![4]);
        let trace = e.trace_for_seed(4);
        let arrivals: Vec<(u64, u8, u32)> = trace
            .entries()
            .iter()
            .map(|en| (en.at.ticks(), en.class, en.size))
            .collect();
        for spacing in [2.0, 4.0] {
            let m = ProportionalModel::new(Ddp::geometric(4, spacing).unwrap());
            let report = m.check_feasibility(&arrivals, 1.0);
            assert!(
                report.feasible(),
                "spacing {spacing} at rho {rho} infeasible:\n{report}"
            );
        }
    }
}

/// Strict priority starves; WTP does not: under the same heavy traffic the
/// lowest class's mean delay under strict priority far exceeds WTP's.
#[test]
fn strict_priority_starves_lowest_class_wtp_does_not() {
    let e = Experiment::paper(0.97, Sdp::paper_default(), 10_000, vec![5]);
    let rs = e.run_many(&[SchedulerKind::Strict, SchedulerKind::Wtp]);
    let strict_low = rs[0].mean_delays[0];
    let wtp_low = rs[1].mean_delays[0];
    assert!(
        strict_low > wtp_low,
        "strict low-class delay {strict_low} should exceed WTP's {wtp_low}"
    );
    // And strict's top class is near zero delay — uncontrollable spacing.
    assert!(rs[0].mean_delays[3] < rs[1].mean_delays[3]);
}

/// FCFS cannot differentiate: every ratio stays near 1 regardless of SDPs.
#[test]
fn fcfs_gives_no_differentiation() {
    let sys = PddSystem::builder()
        .scheduler(SchedulerKind::Fcfs)
        .utilization(0.95)
        .horizon_punits(20_000)
        .seeds(vec![3])
        .build()
        .unwrap();
    let r = sys.run();
    for ratio in &r.ratios {
        assert!((ratio - 1.0).abs() < 0.2, "FCFS ratio {ratio}");
    }
}
