//! Simulator-vs-theory validation: under Poisson arrivals the measured
//! mean waits of FCFS, strict priority, and WTP must match the exact
//! M/G/1 formulas (Pollaczek–Khinchine, Cobham, Kleinrock's TDP).
//!
//! This is the strongest correctness evidence the repository has: the
//! simulator and the closed forms were implemented independently and meet
//! within Monte-Carlo noise.

use propdiff::analytic::Mg1;
use propdiff::qsim::Session;
use propdiff::sched::{SchedulerKind, Sdp};
use propdiff::simcore::Time;
use propdiff::stats::Summary;
use propdiff::traffic::{IatDist, LoadPlan, SizeDist, Trace};

/// Simulated per-class mean waits with Poisson arrivals and the paper's
/// packet-size mix on a 1 byte/tick link.
fn simulate(kind: SchedulerKind, rho: f64, fractions: &[f64], seed: u64) -> Vec<f64> {
    let plan = LoadPlan::new(1.0, rho, fractions, SizeDist::paper()).unwrap();
    let mut sources = plan.sources(&IatDist::exponential(1.0).unwrap()).unwrap();
    let trace = Trace::generate_per_source(
        &mut sources,
        Time::from_ticks(250_000_000), // ≈ 540k packets at ρ = 0.95
        seed,
    );
    let n = fractions.len();
    let sdp = Sdp::geometric(n, 2.0).unwrap();
    let mut s = kind.build(&sdp, 1.0);
    let mut acc = vec![Summary::new(); n];
    let warmup = Time::from_ticks(5_000_000);
    Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
        if d.start >= warmup {
            acc[d.packet.class as usize].push(d.wait().as_f64());
        }
    });
    acc.iter().map(Summary::mean).collect()
}

fn assert_close(measured: &[f64], predicted: &[f64], tol: f64, label: &str) {
    for (c, (m, p)) in measured.iter().zip(predicted).enumerate() {
        assert!(
            (m - p).abs() / p < tol,
            "{label} class {c}: measured {m:.1} vs predicted {p:.1}"
        );
    }
}

#[test]
fn fcfs_matches_pollaczek_khinchine() {
    let fractions = [0.4, 0.3, 0.2, 0.1];
    let q = Mg1::paper_sizes(0.9, &fractions).unwrap();
    let measured = simulate(SchedulerKind::Fcfs, 0.9, &fractions, 11);
    let predicted = vec![q.fcfs_wait(); 4];
    assert_close(&measured, &predicted, 0.06, "FCFS");
}

#[test]
fn strict_priority_matches_cobham() {
    let fractions = [0.4, 0.3, 0.2, 0.1];
    let q = Mg1::paper_sizes(0.9, &fractions).unwrap();
    let measured = simulate(SchedulerKind::Strict, 0.9, &fractions, 13);
    assert_close(&measured, &q.strict_priority_waits(), 0.08, "Cobham");
}

#[test]
fn wtp_matches_kleinrock_tdp() {
    let fractions = [0.4, 0.3, 0.2, 0.1];
    let q = Mg1::paper_sizes(0.9, &fractions).unwrap();
    let slopes = [1.0, 2.0, 4.0, 8.0];
    let measured = simulate(SchedulerKind::Wtp, 0.9, &fractions, 17);
    assert_close(&measured, &q.tdp_waits(&slopes), 0.08, "Kleinrock TDP");
}

#[test]
fn wtp_matches_tdp_at_moderate_load_and_skewed_mix() {
    let fractions = [0.1, 0.2, 0.3, 0.4];
    let q = Mg1::paper_sizes(0.75, &fractions).unwrap();
    let slopes = [1.0, 2.0, 4.0, 8.0];
    let measured = simulate(SchedulerKind::Wtp, 0.75, &fractions, 19);
    assert_close(
        &measured,
        &q.tdp_waits(&slopes),
        0.08,
        "Kleinrock TDP (skewed)",
    );
}
