//! Integration tests for the multi-hop user-perspective study (§6).

use propdiff::netsim::{analyze, packet_time_tolerance, ExperimentRecord, Session, StudyBConfig};
use propdiff::sched::SchedulerKind;

fn run_study_b(cfg: &StudyBConfig) -> Vec<ExperimentRecord> {
    Session::study_b(cfg).run().0
}

fn small_cfg(k: usize, rho: f64) -> StudyBConfig {
    let mut cfg = StudyBConfig::paper(k, rho, 10, 200.0);
    cfg.experiments = 10;
    cfg.warmup_secs = 5.0;
    cfg.seed = 77;
    cfg
}

/// Table 1's headline: R_D near the ideal 2.0 and consistent
/// differentiation end-to-end.
#[test]
fn end_to_end_rd_is_near_two_and_consistent() {
    let cfg = small_cfg(4, 0.95);
    let records = run_study_b(&cfg);
    let r = analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg));
    assert_eq!(r.experiments, 10);
    assert!((r.rd - 2.0).abs() < 0.5, "R_D {}", r.rd);
    assert!(
        r.inconsistent_experiments <= 1,
        "{} inconsistent experiments",
        r.inconsistent_experiments
    );
}

/// The paper's observation that per-hop deviations cancel out: more hops
/// keep R_D at least as close to 2.0 (checked loosely).
#[test]
fn more_hops_do_not_break_differentiation() {
    let c4 = small_cfg(4, 0.85);
    let r4 = analyze(&run_study_b(&c4), 4, packet_time_tolerance(&c4));
    let c8 = small_cfg(8, 0.85);
    let r8 = analyze(&run_study_b(&c8), 4, packet_time_tolerance(&c8));
    assert!((r4.rd - 2.0).abs() < 0.6, "K=4 rd {}", r4.rd);
    assert!((r8.rd - 2.0).abs() < 0.6, "K=8 rd {}", r8.rd);
    // Medians scale roughly with hop count (more queues to cross).
    assert!(r8.class_median_ticks[0] > r4.class_median_ticks[0]);
}

/// End-to-end class ordering holds for the medians.
#[test]
fn median_delays_are_class_ordered() {
    let cfg = small_cfg(4, 0.95);
    let r = analyze(
        &run_study_b(&cfg),
        cfg.num_classes(),
        packet_time_tolerance(&cfg),
    );
    for w in r.class_median_ticks.windows(2) {
        assert!(
            w[0] > w[1],
            "medians not ordered: {:?}",
            r.class_median_ticks
        );
    }
}

/// A FCFS network cannot differentiate end-to-end: R_D collapses to ~1.
#[test]
fn fcfs_network_has_no_end_to_end_differentiation() {
    let mut cfg = small_cfg(4, 0.95);
    cfg.scheduler = SchedulerKind::Fcfs;
    let r = analyze(
        &run_study_b(&cfg),
        cfg.num_classes(),
        packet_time_tolerance(&cfg),
    );
    assert!((r.rd - 1.0).abs() < 0.25, "FCFS network R_D {}", r.rd);
}

/// Determinism: identical configs (same seed) produce identical analyses.
#[test]
fn study_b_is_deterministic() {
    let cfg = small_cfg(2, 0.9);
    let a = analyze(&run_study_b(&cfg), 4, packet_time_tolerance(&cfg));
    let b = analyze(&run_study_b(&cfg), 4, packet_time_tolerance(&cfg));
    assert_eq!(a.rd, b.rd);
    assert_eq!(a.inconsistent_experiments, b.inconsistent_experiments);
}
