//! Guard for the `#[ignore]` hygiene audit.
//!
//! An audit of the workspace (in particular `crates/stats/src/ratio.rs`,
//! `crates/sched/src/factory.rs`, and `crates/sched/src/fcfs.rs`, which
//! were reported to carry ignored tests) found **no** unconditionally
//! ignored tests anywhere — nothing to re-enable. The only ignores in the
//! tree are the conditional `cfg_attr(feature = "mutated", ignore = ...)`
//! gates in the conformance layer, which exist so the seeded-mutation
//! build does not report its *intended* failures as test failures.
//!
//! This test keeps it that way: every `ignore` in every crate's sources
//! must carry a `= "reason"` string, so a silently parked test can never
//! reappear.

use std::fs;
use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_ignore_attribute_carries_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), &mut files);
    rust_sources(&root.join("tests"), &mut files);
    rust_sources(&root.join("src"), &mut files);
    assert!(!files.is_empty(), "audit found no sources to scan");

    let mut offenders = Vec::new();
    for file in files {
        // This file spells out the offending pattern in its own docs.
        if file.file_name().is_some_and(|n| n == "ignore_audit.rs") {
            continue;
        }
        let text = fs::read_to_string(&file).unwrap();
        for (lineno, line) in text.lines().enumerate() {
            // Matches both `#[ignore...]` and `cfg_attr(..., ignore...)`,
            // requiring `ignore = "..."` in each.
            let mut rest = line;
            while let Some(pos) = rest.find("ignore") {
                let before_ok =
                    pos == 0 || matches!(rest.as_bytes()[pos - 1], b'[' | b' ' | b',' | b'(');
                let after = rest[pos + "ignore".len()..].trim_start();
                if before_ok && (after.starts_with(']') || after.starts_with(')')) {
                    offenders.push(format!(
                        "{}:{}: {}",
                        file.display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
                rest = &rest[pos + "ignore".len()..];
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare #[ignore] without a reason:\n{}",
        offenders.join("\n")
    );
}
