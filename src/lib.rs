//! # propdiff — Proportional Differentiated Services
//!
//! Facade crate for the workspace: re-exports the full [`pdd`] public API
//! (the proportional delay differentiation model, the WTP and BPR
//! schedulers with all baselines, the single-link Study-A simulator, and
//! the multi-hop Study-B simulator, plus `netsim`'s mesh/topology layer
//! with link-level decomposition).
//!
//! Simulations are configured through the `Session` front doors —
//! [`pdd::qsim::Session`] for a single link, [`pdd::netsim::Session`] for
//! chains ([`pdd::netsim::StudyBConfig`]), meshes
//! ([`pdd::netsim::mesh::MeshConfig`]), and generated fabrics
//! ([`pdd::netsim::TopologyConfig`]) — with every link described by the
//! shared [`pdd::netsim::LinkSpec`].
//!
//! See the workspace README for the architecture overview and the
//! `examples/` directory for runnable entry points:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example voip_differentiation
//! cargo run --release --example multihop_user
//! cargo run --release --example scheduler_shootout
//! cargo run --release --example feasibility_explorer
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use pdd::*;
