//! High-level builder API over the Study-A single-link simulator.

use std::fmt;

use qsim::{Experiment, ExperimentResult};
use sched::{SchedulerKind, Sdp};

/// Errors from [`PddSystemBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// A parameter failed validation.
    Invalid(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Invalid(msg) => write!(f, "invalid PDD system: {msg}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// A configured proportionally-differentiated link, ready to simulate.
///
/// Built with [`PddSystem::builder`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct PddSystem {
    experiment: Experiment,
    scheduler: SchedulerKind,
}

impl PddSystem {
    /// Starts building a system with the paper's defaults (4 classes,
    /// spacing ratio 2, WTP, ρ = 0.95, 40/30/20/10 % loads).
    pub fn builder() -> PddSystemBuilder {
        PddSystemBuilder::default()
    }

    /// The underlying Study-A experiment configuration.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The configured scheduler.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Runs the simulation and returns seed-averaged class delays and
    /// ratios.
    pub fn run(&self) -> ExperimentResult {
        self.experiment.run(self.scheduler)
    }

    /// Runs the same traffic through several schedulers for comparison.
    pub fn compare(&self, kinds: &[SchedulerKind]) -> Vec<ExperimentResult> {
        self.experiment.run_many(kinds)
    }
}

/// Builder for [`PddSystem`].
#[derive(Debug, Clone)]
pub struct PddSystemBuilder {
    classes: usize,
    spacing_ratio: f64,
    sdp: Option<Sdp>,
    scheduler: SchedulerKind,
    utilization: f64,
    class_fractions: Option<Vec<f64>>,
    horizon_punits: u64,
    seeds: Vec<u64>,
}

impl Default for PddSystemBuilder {
    fn default() -> Self {
        PddSystemBuilder {
            classes: 4,
            spacing_ratio: 2.0,
            sdp: None,
            scheduler: SchedulerKind::Wtp,
            utilization: 0.95,
            class_fractions: None,
            horizon_punits: 50_000,
            seeds: vec![1, 2, 3],
        }
    }
}

impl PddSystemBuilder {
    /// Number of service classes (default 4).
    pub fn classes(mut self, n: usize) -> Self {
        self.classes = n;
        self
    }

    /// Quality spacing between successive classes: `d̄_i = r · d̄_{i+1}`
    /// (default 2). Ignored if [`Self::sdp`] is set explicitly.
    pub fn spacing_ratio(mut self, r: f64) -> Self {
        self.spacing_ratio = r;
        self
    }

    /// Explicit SDPs, overriding the geometric spacing.
    pub fn sdp(mut self, sdp: Sdp) -> Self {
        self.sdp = Some(sdp);
        self
    }

    /// Scheduler (default WTP).
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Aggregate link utilization ρ (default 0.95).
    pub fn utilization(mut self, rho: f64) -> Self {
        self.utilization = rho;
        self
    }

    /// Per-class load fractions (default: the paper's 40/30/20/10 for four
    /// classes, uniform otherwise).
    pub fn class_fractions(mut self, fractions: Vec<f64>) -> Self {
        self.class_fractions = Some(fractions);
        self
    }

    /// Simulated horizon in p-units (mean packet transmission times).
    pub fn horizon_punits(mut self, p: u64) -> Self {
        self.horizon_punits = p;
        self
    }

    /// Seeds to average over.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Validates and builds the system.
    pub fn build(self) -> Result<PddSystem, SystemError> {
        if !(self.utilization > 0.0 && self.utilization < 1.0) {
            return Err(SystemError::Invalid(format!(
                "utilization must be in (0,1), got {}",
                self.utilization
            )));
        }
        if self.seeds.is_empty() {
            return Err(SystemError::Invalid("need at least one seed".into()));
        }
        if self.horizon_punits < 100 {
            return Err(SystemError::Invalid(
                "horizon below 100 p-units cannot produce stable averages".into(),
            ));
        }
        let sdp = match self.sdp {
            Some(s) => {
                if s.num_classes() != self.classes {
                    return Err(SystemError::Invalid(format!(
                        "SDP has {} classes but {} were requested",
                        s.num_classes(),
                        self.classes
                    )));
                }
                s
            }
            None => Sdp::geometric(self.classes, self.spacing_ratio)
                .map_err(|e| SystemError::Invalid(e.to_string()))?,
        };
        let fractions = match self.class_fractions {
            Some(f) => {
                if f.len() != self.classes {
                    return Err(SystemError::Invalid(format!(
                        "{} fractions for {} classes",
                        f.len(),
                        self.classes
                    )));
                }
                let sum: f64 = f.iter().sum();
                if (sum - 1.0).abs() > 1e-6 || f.iter().any(|&x| x <= 0.0) {
                    return Err(SystemError::Invalid(
                        "fractions must be positive and sum to 1".into(),
                    ));
                }
                f
            }
            None if self.classes == 4 => vec![0.4, 0.3, 0.2, 0.1],
            None => vec![1.0 / self.classes as f64; self.classes],
        };
        let mut experiment =
            Experiment::paper(self.utilization, sdp, self.horizon_punits, self.seeds);
        experiment.class_fractions = fractions;
        Ok(PddSystem {
            experiment,
            scheduler: self.scheduler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_run() {
        let sys = PddSystem::builder()
            .horizon_punits(3_000)
            .seeds(vec![1])
            .build()
            .unwrap();
        let r = sys.run();
        assert_eq!(r.mean_delays.len(), 4);
        assert_eq!(r.ratios.len(), 3);
        assert_eq!(sys.scheduler(), SchedulerKind::Wtp);
    }

    #[test]
    fn builder_validation() {
        assert!(PddSystem::builder().utilization(1.5).build().is_err());
        assert!(PddSystem::builder().seeds(vec![]).build().is_err());
        assert!(PddSystem::builder().horizon_punits(10).build().is_err());
        assert!(PddSystem::builder()
            .classes(3)
            .sdp(Sdp::paper_default())
            .build()
            .is_err());
        assert!(PddSystem::builder()
            .class_fractions(vec![0.5, 0.5])
            .build()
            .is_err());
        assert!(PddSystem::builder()
            .class_fractions(vec![0.7, 0.2, 0.2, -0.1])
            .build()
            .is_err());
    }

    #[test]
    fn uniform_fractions_for_nonstandard_class_count() {
        let sys = PddSystem::builder()
            .classes(3)
            .horizon_punits(500)
            .build()
            .unwrap();
        assert_eq!(sys.experiment().class_fractions.len(), 3);
        let sum: f64 = sys.experiment().class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compare_runs_on_shared_traces() {
        let sys = PddSystem::builder()
            .horizon_punits(2_000)
            .seeds(vec![5])
            .build()
            .unwrap();
        let rs = sys.compare(&[SchedulerKind::Fcfs, SchedulerKind::Fcfs]);
        assert_eq!(rs[0].mean_delays, rs[1].mean_delays);
    }
}
