//! The proportional delay differentiation model (§2–§3).

use std::fmt;

/// Errors from DDP validation.
#[derive(Debug, Clone, PartialEq)]
pub enum DdpError {
    /// Fewer than two classes.
    TooFewClasses(usize),
    /// A parameter was zero, negative, or non-finite.
    NonPositive(f64),
    /// DDPs must be nonincreasing: δ_1 ≥ δ_2 ≥ … ≥ δ_N > 0.
    NotNonincreasing {
        /// Index at which the ordering broke.
        index: usize,
    },
}

impl fmt::Display for DdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdpError::TooFewClasses(n) => write!(f, "need at least 2 classes, got {n}"),
            DdpError::NonPositive(x) => write!(f, "DDPs must be positive and finite, got {x}"),
            DdpError::NotNonincreasing { index } => {
                write!(f, "DDPs must be nonincreasing; violated at index {index}")
            }
        }
    }
}

impl std::error::Error for DdpError {}

/// Validated Delay Differentiation Parameters: δ_1 ≥ δ_2 ≥ … ≥ δ_N > 0,
/// with class N (highest index) the best class (smallest δ).
#[derive(Debug, Clone, PartialEq)]
pub struct Ddp(Vec<f64>);

impl Ddp {
    /// Validates and wraps a raw DDP vector.
    pub fn new(ddps: &[f64]) -> Result<Self, DdpError> {
        if ddps.len() < 2 {
            return Err(DdpError::TooFewClasses(ddps.len()));
        }
        for &d in ddps {
            if !(d > 0.0 && d.is_finite()) {
                return Err(DdpError::NonPositive(d));
            }
        }
        for (i, w) in ddps.windows(2).enumerate() {
            if w[1] > w[0] {
                return Err(DdpError::NotNonincreasing { index: i + 1 });
            }
        }
        Ok(Ddp(ddps.to_vec()))
    }

    /// Geometric DDPs `1, 1/r, 1/r², …`: each class is `r`× better than
    /// the one below. Matches [`sched::Sdp::geometric`] through Eq. (10).
    pub fn geometric(n: usize, ratio: f64) -> Result<Self, DdpError> {
        if ratio < 1.0 || !ratio.is_finite() {
            return Err(DdpError::NonPositive(ratio));
        }
        Ddp::new(&(0..n).map(|i| ratio.powi(-(i as i32))).collect::<Vec<_>>())
    }

    /// The DDPs implied by a set of SDPs in heavy load (Eq. 10):
    /// δ_i ∝ 1/s_i.
    pub fn from_sdp(sdp: &sched::Sdp) -> Self {
        Ddp(sdp.implied_ddps())
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.0.len()
    }

    /// The raw parameters.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// δ_i.
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Target ratio `d̄_i / d̄_{i+1} = δ_i / δ_{i+1}` between successive
    /// classes.
    pub fn target_ratio(&self, i: usize) -> f64 {
        self.0[i] / self.0[i + 1]
    }
}

/// The proportional model evaluated against a load vector: Eq. (6) and the
/// §3 dynamics.
#[derive(Debug, Clone)]
pub struct ProportionalModel {
    ddp: Ddp,
}

impl ProportionalModel {
    /// Creates the model for the given DDPs.
    pub fn new(ddp: Ddp) -> Self {
        ProportionalModel { ddp }
    }

    /// The model's DDPs.
    pub fn ddp(&self) -> &Ddp {
        &self.ddp
    }

    /// Eq. (6): the class average delays that an ideal proportional
    /// scheduler would produce, given per-class arrival rates `lambda`
    /// (any consistent unit) and the FCFS aggregate average delay
    /// `agg_delay` at total load λ = Σλ_i:
    ///
    /// `d̄_i = δ_i · λ · d̄(λ) / Σ_j δ_j λ_j`
    ///
    /// # Panics
    /// Panics if `lambda.len()` differs from the number of classes, any
    /// rate is negative, or all rates are zero.
    pub fn predicted_delays(&self, lambda: &[f64], agg_delay: f64) -> Vec<f64> {
        assert_eq!(lambda.len(), self.ddp.num_classes(), "rate vector length");
        assert!(lambda.iter().all(|&l| l >= 0.0), "rates must be >= 0");
        let total: f64 = lambda.iter().sum();
        assert!(total > 0.0, "at least one class must have traffic");
        let denom: f64 = lambda
            .iter()
            .zip(self.ddp.values())
            .map(|(&l, &d)| l * d)
            .sum();
        self.ddp
            .values()
            .iter()
            .map(|&d| d * total * agg_delay / denom)
            .collect()
    }

    /// The conservation-law identity behind Eq. (6): the predicted delays
    /// redistribute exactly the FCFS aggregate backlog,
    /// `Σ λ_i d̄_i = λ d̄(λ)`.
    pub fn conservation_residual(&self, lambda: &[f64], agg_delay: f64) -> f64 {
        let d = self.predicted_delays(lambda, agg_delay);
        let lhs: f64 = lambda.iter().zip(&d).map(|(&l, &di)| l * di).sum();
        let rhs: f64 = lambda.iter().sum::<f64>() * agg_delay;
        lhs - rhs
    }

    /// Checks the Eq. (7) feasibility of this model's predicted delays for
    /// a recorded trace (see [`stats::check_feasibility`]).
    pub fn check_feasibility(
        &self,
        arrivals: &[(u64, u8, u32)],
        rate: f64,
    ) -> stats::FeasibilityReport {
        // Measure per-class packet rates and the aggregate FCFS delay from
        // the trace, then test the Eq. (6) targets.
        let n = self.ddp.num_classes();
        let span = match (arrivals.first(), arrivals.last()) {
            (Some(&(t0, _, _)), Some(&(t1, _, _))) if t1 > t0 => (t1 - t0) as f64,
            _ => 1.0,
        };
        let mut counts = vec![0u64; n];
        for &(_, c, _) in arrivals {
            counts[c as usize] += 1;
        }
        let lambda: Vec<f64> = counts.iter().map(|&c| c as f64 / span).collect();
        let agg = stats::fcfs_mean_wait(arrivals, None, rate);
        let targets = self.predicted_delays(&lambda, agg);
        stats::check_feasibility(arrivals, rate, &targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_r2() -> ProportionalModel {
        ProportionalModel::new(Ddp::geometric(4, 2.0).unwrap())
    }

    #[test]
    fn ddp_validation() {
        assert!(Ddp::new(&[1.0, 0.5, 0.25]).is_ok());
        assert_eq!(Ddp::new(&[1.0]), Err(DdpError::TooFewClasses(1)));
        assert_eq!(
            Ddp::new(&[0.5, 1.0]),
            Err(DdpError::NotNonincreasing { index: 1 })
        );
        assert_eq!(Ddp::new(&[1.0, -0.5]), Err(DdpError::NonPositive(-0.5)));
        assert!(Ddp::geometric(4, 0.9).is_err());
    }

    #[test]
    fn geometric_matches_inverse_sdp() {
        let ddp = Ddp::geometric(4, 2.0).unwrap();
        let from_sdp = Ddp::from_sdp(&sched::Sdp::geometric(4, 2.0).unwrap());
        for (a, b) in ddp.values().iter().zip(from_sdp.values()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(ddp.target_ratio(0), 2.0);
    }

    #[test]
    fn eq6_ratios_match_ddps() {
        let m = model_r2();
        let d = m.predicted_delays(&[0.4, 0.3, 0.2, 0.1], 100.0);
        for i in 0..3 {
            assert!((d[i] / d[i + 1] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn eq6_satisfies_conservation_law() {
        let m = model_r2();
        assert!(m.conservation_residual(&[0.4, 0.3, 0.2, 0.1], 123.0).abs() < 1e-9);
        assert!(m.conservation_residual(&[0.1, 0.1, 0.1, 0.7], 50.0).abs() < 1e-9);
    }

    // The four §3 dynamics properties, checked on Eq. (6) directly. We use
    // a fixed aggregate-delay *function* d̄(λ) = 1/(1−λ) (M/M/1-like,
    // increasing in λ) so that load changes flow through both λ and d̄(λ).
    fn dbar(lambda: &[f64]) -> f64 {
        let l: f64 = lambda.iter().sum();
        assert!(l < 1.0);
        1.0 / (1.0 - l)
    }

    #[test]
    fn dynamics_1_delay_increases_with_any_class_rate() {
        let m = model_r2();
        let base = [0.2, 0.2, 0.2, 0.2];
        let d0 = m.predicted_delays(&base, dbar(&base));
        for j in 0..4 {
            let mut bumped = base;
            bumped[j] += 0.05;
            let d1 = m.predicted_delays(&bumped, dbar(&bumped));
            for i in 0..4 {
                assert!(
                    d1[i] >= d0[i] - 1e-12,
                    "bumping class {j} decreased class {i}: {} -> {}",
                    d0[i],
                    d1[i]
                );
            }
        }
    }

    #[test]
    fn dynamics_2_higher_class_load_increase_hurts_more() {
        let m = model_r2();
        let base = [0.2, 0.2, 0.2, 0.2];
        // Increase class 0 (low) vs class 3 (high) by the same amount and
        // compare the impact on class 1's delay.
        let mut low = base;
        low[0] += 0.05;
        let mut high = base;
        high[3] += 0.05;
        let d_low = m.predicted_delays(&low, dbar(&low));
        let d_high = m.predicted_delays(&high, dbar(&high));
        for i in 0..4 {
            assert!(
                d_high[i] >= d_low[i] - 1e-12,
                "class {i}: high-class bump {} < low-class bump {}",
                d_high[i],
                d_low[i]
            );
        }
    }

    #[test]
    fn dynamics_3_raising_a_ddp_raises_own_delay_lowers_others() {
        let lambda = [0.2, 0.2, 0.2, 0.2];
        let agg = dbar(&lambda);
        let before = ProportionalModel::new(Ddp::new(&[1.0, 0.5, 0.25, 0.125]).unwrap())
            .predicted_delays(&lambda, agg);
        // Raise δ_2 from 0.5 to 0.8 (still nonincreasing).
        let after = ProportionalModel::new(Ddp::new(&[1.0, 0.8, 0.25, 0.125]).unwrap())
            .predicted_delays(&lambda, agg);
        assert!(after[1] > before[1]);
        for i in [0usize, 2, 3] {
            assert!(after[i] < before[i], "class {i} did not decrease");
        }
    }

    #[test]
    fn dynamics_4_load_shift_to_higher_class_raises_all_delays() {
        let m = model_r2();
        let base = [0.25, 0.2, 0.2, 0.15];
        // Shift 0.05 of load from class 0 to class 3 (i < j): all delays
        // increase. Aggregate load unchanged => d̄(λ) unchanged.
        let mut shifted = base;
        shifted[0] -= 0.05;
        shifted[3] += 0.05;
        let agg = dbar(&base);
        let d0 = m.predicted_delays(&base, agg);
        let d1 = m.predicted_delays(&shifted, agg);
        for i in 0..4 {
            assert!(d1[i] >= d0[i] - 1e-12, "class {i} decreased");
        }
        // And the reverse shift (j > i moved down) lowers all delays.
        let mut down = base;
        down[3] -= 0.05;
        down[0] += 0.05;
        let d2 = m.predicted_delays(&down, agg);
        for i in 0..4 {
            assert!(d2[i] <= d0[i] + 1e-12, "class {i} increased");
        }
    }

    #[test]
    fn feasibility_wrapper_accepts_fcfs_consistent_targets() {
        // Equal-rate two-class Poisson-ish trace.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let mut t = 0.0;
        let arrivals: Vec<(u64, u8, u32)> = (0..150_000)
            .map(|_| {
                t += -120.0 * (1.0 - rng.random::<f64>()).ln();
                let c = if rng.random::<f64>() < 0.5 { 0 } else { 1 };
                (t.round() as u64, c, 100u32)
            })
            .collect();
        let m = ProportionalModel::new(Ddp::geometric(2, 2.0).unwrap());
        let report = m.check_feasibility(&arrivals, 1.0);
        assert!(report.feasible(), "{report}");
        assert!(report.conservation_gap() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "rate vector length")]
    fn predicted_delays_checks_rate_length() {
        model_r2().predicted_delays(&[1.0], 1.0);
    }
}
