//! # pdd — Proportional Differentiated Services
//!
//! A from-scratch Rust reproduction of Dovrolis, Stiliadis & Ramanathan,
//! *"Proportional Differentiated Services: Delay Differentiation and Packet
//! Scheduling"*, ACM SIGCOMM 1999.
//!
//! The **proportional delay differentiation (PDD) model** (Eq. 1) fixes the
//! *ratios* between class average queueing delays:
//!
//! ```text
//! d̄_i / d̄_j = δ_i / δ_j      (δ_1 > δ_2 > … > δ_N > 0)
//! ```
//!
//! so higher classes are consistently better, by a spacing the operator
//! controls, independent of class loads. This crate bundles:
//!
//! * [`model`] — the model itself: validated DDPs, the Eq. (6) predicted
//!   delays, the four §3 dynamics properties, and Eq. (7) feasibility via
//!   subset-FCFS replay.
//! * [`analytic`] — exact M/G/1 oracles (Pollaczek–Khinchine, Cobham,
//!   Kleinrock's Time-Dependent Priorities) used to validate the
//!   simulators under Poisson traffic.
//! * [`design`] — the §7 operator question: the widest feasible DDP
//!   spacing for a measured trace, and the narrowest spacing meeting a
//!   top-class delay target.
//! * [`PddSystem`] — a high-level builder for simulating a differentiated
//!   link without touching the lower-level crates.
//! * Re-exports of the substrate crates: [`simcore`], [`traffic`],
//!   [`sched`], [`stats`], [`qsim`] (single-link Study A), [`netsim`]
//!   (multi-hop Study B, meshes, and datacenter topologies with
//!   link-level decomposition), [`scenario`] (dynamic perturbation
//!   timelines for `Session` runs), and [`telemetry`] (zero-cost probes,
//!   trace sinks, run metrics).
//!
//! Network simulations are configured exclusively through the `Session`
//! front doors (`qsim::Session`, `netsim::Session`) with links described
//! by the shared [`netsim::LinkSpec`]; there are no freestanding `run_*`
//! entry points.
//!
//! ## Quick start
//!
//! ```
//! use pdd::PddSystem;
//!
//! let report = PddSystem::builder()
//!     .classes(4)
//!     .spacing_ratio(2.0)                 // d̄_i = 2 · d̄_{i+1}
//!     .scheduler(pdd::sched::SchedulerKind::Wtp)
//!     .utilization(0.95)
//!     .horizon_punits(5_000)
//!     .seeds(vec![1])
//!     .build()
//!     .expect("valid configuration");
//! let result = report.run();
//! // At 95% load WTP approximates the proportional model.
//! assert!((result.ratios[0] - 2.0).abs() < 0.6);
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod design;
pub mod model;
mod system;

pub use analytic::{Mg1, Mg1Error};
pub use model::{Ddp, DdpError, ProportionalModel};
pub use system::{PddSystem, PddSystemBuilder, SystemError};

pub use netsim;
pub use qsim;
pub use scenario;
pub use sched;
pub use simcore;
pub use stats;
pub use telemetry;
pub use traffic;

/// Commonly used types in one import.
pub mod prelude {
    pub use crate::model::{Ddp, ProportionalModel};
    pub use crate::system::PddSystem;
    pub use netsim::{
        analyze, LinkSpec, MeshWorkload, Session as NetSession, StudyBConfig, Topology,
        TopologyConfig,
    };
    pub use qsim::{Experiment, Microscope, ShortTimescale};
    pub use scenario::{DownPolicy, Scenario};
    pub use sched::{Scheduler, SchedulerKind, Sdp};
    pub use simcore::{Dur, Time};
    pub use stats::{check_feasibility, Percentiles, Summary, Table};
    pub use traffic::{ClassSource, IatDist, LoadPlan, SizeDist, Trace};
}
