//! Analytic M/G/1 results for the schedulers the paper builds on.
//!
//! The paper evaluates with *non-Poisson* traffic precisely because no
//! analytic tools exist there (§1), but under Poisson arrivals the mean
//! waits of FCFS, strict priority, and WTP are classical results — and
//! they make razor-sharp validation oracles for the simulator:
//!
//! * [`Mg1::fcfs_wait`] — Pollaczek–Khinchine: `W = W₀/(1−ρ)`.
//! * [`Mg1::strict_priority_waits`] — Cobham's non-preemptive priority
//!   formula.
//! * [`Mg1::tdp_waits`] — Kleinrock's Time-Dependent Priorities (the WTP
//!   discipline, §4.2 of the paper; Kleinrock 1964 / *Queueing Systems*
//!   vol. II), solved by the upward recursion
//!
//!   ```text
//!   W_p = [ W₀/(1−ρ) − Σ_{i<p} ρ_i W_i (1 − b_i/b_p) ]
//!         / [ 1 − Σ_{i>p} ρ_i (1 − b_p/b_i) ]
//!   ```
//!
//!   with slopes `b_1 ≤ … ≤ b_P` (the SDPs). The recursion reduces to
//!   P–K when all slopes are equal, to Cobham as slope ratios diverge,
//!   satisfies the conservation law `Σ ρ_p W_p = ρ·W₀/(1−ρ)` exactly, and
//!   its heavy-traffic wait ratios tend to the inverse slope ratios —
//!   Eq. (10)/(13) of the paper. All four properties are unit-tested, and
//!   the integration tests check the simulator against these formulas.

use std::fmt;

/// Errors from [`Mg1`] construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Mg1Error(String);

impl fmt::Display for Mg1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid M/G/1 parameters: {}", self.0)
    }
}

impl std::error::Error for Mg1Error {}

/// A multi-class M/G/1 queue: Poisson arrivals per class, a common service
/// distribution given by its first two moments.
/// # Example
///
/// ```
/// use pdd::analytic::Mg1;
///
/// // M/D/1 at ρ = 0.8 split over two classes of 100-byte packets.
/// let q = Mg1::new(&[0.004, 0.004], 100.0, 10_000.0).unwrap();
/// assert!((q.fcfs_wait() - 200.0).abs() < 1e-9);        // Pollaczek–Khinchine
/// let w = q.tdp_waits(&[1.0, 2.0]);                     // Kleinrock TDP (WTP)
/// assert!(q.conservation_residual(&w).abs() < 1e-9);    // conservation law
/// assert!(w[0] > w[1]);                                 // class ordering
/// ```
#[derive(Debug, Clone)]
pub struct Mg1 {
    /// Per-class arrival rates λ_p (packets per tick).
    lambda: Vec<f64>,
    /// Mean service time E[S] (ticks).
    es: f64,
    /// Second moment of service time E[S²] (ticks²).
    es2: f64,
}

impl Mg1 {
    /// Creates a queue; requires stability (ρ < 1).
    pub fn new(lambda: &[f64], es: f64, es2: f64) -> Result<Self, Mg1Error> {
        if lambda.is_empty()
            || lambda
                .iter()
                .any(|&l| l.is_nan() || l < 0.0 || !l.is_finite())
        {
            return Err(Mg1Error("rates must be finite and nonnegative".into()));
        }
        if !(es > 0.0 && es2 >= es * es && es2.is_finite()) {
            return Err(Mg1Error(format!(
                "service moments must satisfy E[S] > 0 and E[S²] ≥ E[S]², got {es}, {es2}"
            )));
        }
        let rho: f64 = lambda.iter().sum::<f64>() * es;
        if rho >= 1.0 {
            return Err(Mg1Error(format!("unstable: ρ = {rho} ≥ 1")));
        }
        Ok(Mg1 {
            lambda: lambda.to_vec(),
            es,
            es2,
        })
    }

    /// Builds the queue from the paper's trimodal packet sizes at a given
    /// utilization and class byte-shares (link rate 1 byte/tick).
    pub fn paper_sizes(utilization: f64, fractions: &[f64]) -> Result<Self, Mg1Error> {
        // Sizes 40/550/1500 B at 40/50/10 %: E[S] = 441, E[S²].
        let es = 441.0;
        let es2 = 0.4 * 40.0f64.powi(2) + 0.5 * 550.0f64.powi(2) + 0.1 * 1500.0f64.powi(2);
        let lambda: Vec<f64> = fractions.iter().map(|f| utilization * f / es).collect();
        Mg1::new(&lambda, es, es2)
    }

    /// Per-class utilization `ρ_p = λ_p·E[S]`.
    pub fn rho_p(&self, p: usize) -> f64 {
        self.lambda[p] * self.es
    }

    /// Total utilization ρ.
    pub fn rho(&self) -> f64 {
        self.lambda.iter().sum::<f64>() * self.es
    }

    /// Mean residual work seen by an arrival: `W₀ = λ·E[S²]/2`.
    pub fn w0(&self) -> f64 {
        self.lambda.iter().sum::<f64>() * self.es2 / 2.0
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.lambda.len()
    }

    /// Pollaczek–Khinchine mean wait of the FCFS aggregate.
    pub fn fcfs_wait(&self) -> f64 {
        self.w0() / (1.0 - self.rho())
    }

    /// Cobham's non-preemptive static-priority waits; class P−1 (highest
    /// index) has the highest priority, matching this crate's convention.
    ///
    /// `W_p = W₀ / ((1 − σ_{p+1})(1 − σ_p))` with `σ_p = Σ_{i≥p} ρ_i`.
    pub fn strict_priority_waits(&self) -> Vec<f64> {
        let n = self.num_classes();
        let w0 = self.w0();
        // σ_p = sum of utilizations of classes with priority ≥ p.
        let sigma = |p: usize| -> f64 { (p..n).map(|i| self.rho_p(i)).sum() };
        (0..n)
            .map(|p| w0 / ((1.0 - sigma(p + 1)) * (1.0 - sigma(p))))
            .collect()
    }

    /// Kleinrock's Time-Dependent Priority mean waits for slopes
    /// `b[0] ≤ b[1] ≤ … ≤ b[P−1]` — the analytic model of WTP.
    ///
    /// # Panics
    /// Panics if the slope vector length mismatches, or slopes are not
    /// positive and nondecreasing.
    pub fn tdp_waits(&self, slopes: &[f64]) -> Vec<f64> {
        assert_eq!(slopes.len(), self.num_classes(), "one slope per class");
        assert!(
            slopes.iter().all(|&b| b > 0.0) && slopes.windows(2).all(|w| w[1] >= w[0]),
            "slopes must be positive and nondecreasing"
        );
        let n = self.num_classes();
        let base = self.w0() / (1.0 - self.rho());
        let mut w = vec![0.0; n];
        for p in 0..n {
            let num = base
                - (0..p)
                    .map(|i| self.rho_p(i) * w[i] * (1.0 - slopes[i] / slopes[p]))
                    .sum::<f64>();
            let den = 1.0
                - (p + 1..n)
                    .map(|i| self.rho_p(i) * (1.0 - slopes[p] / slopes[i]))
                    .sum::<f64>();
            w[p] = num / den;
        }
        w
    }

    /// The conservation-law residual of a wait vector:
    /// `Σ ρ_p W_p − ρ·W₀/(1−ρ)` (0 for any work-conserving discipline).
    pub fn conservation_residual(&self, waits: &[f64]) -> f64 {
        let lhs: f64 = waits
            .iter()
            .enumerate()
            .map(|(p, &w)| self.rho_p(p) * w)
            .sum();
        lhs - self.rho() * self.fcfs_wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class(rho: f64) -> Mg1 {
        // Fixed 100-byte packets (M/D/1): E[S] = 100, E[S²] = 10⁴.
        let l = rho / 2.0 / 100.0;
        Mg1::new(&[l, l], 100.0, 10_000.0).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Mg1::new(&[], 1.0, 1.0).is_err());
        assert!(Mg1::new(&[1.0], 0.0, 1.0).is_err());
        assert!(Mg1::new(&[1.0], 2.0, 1.0).is_err()); // E[S²] < E[S]²
        assert!(Mg1::new(&[0.02], 100.0, 10_000.0).is_err()); // ρ = 2
        assert!(Mg1::new(&[0.004], 100.0, 10_000.0).is_ok());
    }

    #[test]
    fn pk_formula_md1() {
        // M/D/1 at ρ = 0.8: W = ρ·S/(2(1−ρ)) = 200.
        let q = two_class(0.8);
        assert!((q.fcfs_wait() - 200.0).abs() < 1e-9);
        assert!((q.w0() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn equal_slopes_reduce_to_fcfs() {
        let q = two_class(0.9);
        let w = q.tdp_waits(&[3.0, 3.0]);
        for x in &w {
            assert!((x - q.fcfs_wait()).abs() < 1e-9);
        }
    }

    #[test]
    fn extreme_slope_ratio_approaches_cobham() {
        let q = two_class(0.8);
        let cobham = q.strict_priority_waits();
        let tdp = q.tdp_waits(&[1.0, 1e9]);
        for (a, b) in tdp.iter().zip(&cobham) {
            assert!((a - b).abs() / b < 1e-6, "tdp {a} vs cobham {b}");
        }
    }

    #[test]
    fn cobham_two_class_hand_check() {
        // ρ1 = ρ2 = 0.4, W0 = 40: low = 40/(0.6·0.2) = 333.3, high = 40/0.6.
        let q = two_class(0.8);
        let w = q.strict_priority_waits();
        assert!((w[0] - 40.0 / (0.6 * 0.2)).abs() < 1e-9);
        assert!((w[1] - 40.0 / 0.6).abs() < 1e-9);
    }

    #[test]
    fn tdp_satisfies_conservation_exactly() {
        for rho in [0.5, 0.8, 0.95] {
            let q = two_class(rho);
            let w = q.tdp_waits(&[1.0, 2.0]);
            assert!(
                q.conservation_residual(&w).abs() < 1e-9,
                "residual {} at rho {rho}",
                q.conservation_residual(&w)
            );
        }
        // And for four unevenly loaded classes.
        let q = Mg1::paper_sizes(0.9, &[0.4, 0.3, 0.2, 0.1]).unwrap();
        let w = q.tdp_waits(&[1.0, 2.0, 4.0, 8.0]);
        let scale = q.rho() * q.fcfs_wait();
        assert!(q.conservation_residual(&w).abs() < 1e-9 * scale);
    }

    #[test]
    fn tdp_heavy_traffic_ratios_tend_to_slope_ratios() {
        // Eq. (10)/(13): as ρ → 1, W_i/W_j → b_j/b_i.
        let q = two_class(0.999);
        let w = q.tdp_waits(&[1.0, 2.0]);
        let ratio = w[0] / w[1];
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // At moderate load the ratio undershoots — the same qualitative
        // behaviour the paper's Fig. 1 shows for bursty traffic.
        let q = two_class(0.7);
        let w = q.tdp_waits(&[1.0, 2.0]);
        let ratio = w[0] / w[1];
        assert!(ratio < 1.9 && ratio > 1.0, "ratio {ratio}");
    }

    #[test]
    fn tdp_waits_are_class_ordered() {
        let q = Mg1::paper_sizes(0.95, &[0.4, 0.3, 0.2, 0.1]).unwrap();
        let w = q.tdp_waits(&[1.0, 2.0, 4.0, 8.0]);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "waits not ordered: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn tdp_rejects_decreasing_slopes() {
        two_class(0.5).tdp_waits(&[2.0, 1.0]);
    }

    #[test]
    fn paper_sizes_moments() {
        let q = Mg1::paper_sizes(0.95, &[0.4, 0.3, 0.2, 0.1]).unwrap();
        assert!((q.rho() - 0.95).abs() < 1e-9);
        // E[S²] = 0.4·1600 + 0.5·302500 + 0.1·2250000 = 376890.
        assert!((q.es2 - 376_890.0).abs() < 1e-9);
    }
}
