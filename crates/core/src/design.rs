//! Choosing the class differentiation parameters — the §7 network-design
//! question.
//!
//! "A major question from a network operator's point of view is how to
//! choose the class differentiation parameters" (§7). Given a recorded
//! trace of a link's traffic, these helpers answer the two practical forms
//! of that question for geometric DDP ladders (`δ_i ∝ r^{−i}`):
//!
//! * [`max_feasible_spacing`] — the widest spacing r the link can honor at
//!   all (the boundary of the Eq. 7 feasible region).
//! * [`spacing_for_top_class_target`] — the narrowest spacing that brings
//!   the top class's Eq. (6) delay under a target, if any feasible spacing
//!   does. Narrowest-first keeps the lower classes as well-off as the
//!   top-class SLO allows (the delays are zero-sum by the conservation
//!   law).

use crate::model::{Ddp, ProportionalModel};

/// A recorded packet arrival: `(time_ticks, class, size_bytes)`.
pub type Arrival = (u64, u8, u32);

/// Measured per-class packet rates and the FCFS aggregate delay of a trace.
fn measure(arrivals: &[Arrival], n: usize, rate: f64) -> (Vec<f64>, f64) {
    let span = match (arrivals.first(), arrivals.last()) {
        (Some(&(t0, _, _)), Some(&(t1, _, _))) if t1 > t0 => (t1 - t0) as f64,
        _ => 1.0,
    };
    let mut counts = vec![0u64; n];
    for &(_, c, _) in arrivals {
        counts[c as usize] += 1;
    }
    let lambda = counts.iter().map(|&c| c as f64 / span).collect();
    let agg = stats::fcfs_mean_wait(arrivals, None, rate);
    (lambda, agg)
}

fn feasible(arrivals: &[Arrival], n: usize, rate: f64, spacing: f64) -> bool {
    let Ok(ddp) = Ddp::geometric(n, spacing) else {
        return false;
    };
    ProportionalModel::new(ddp)
        .check_feasibility(arrivals, rate)
        .feasible()
}

/// The widest geometric DDP spacing r that is Eq.-(7)-feasible for the
/// recorded traffic, found by bisection to relative precision `tol`
/// (e.g. 0.01). Returns `None` if even r = 1 (no differentiation) fails —
/// which cannot happen for a consistent trace — or the trace is empty.
///
/// # Panics
/// Panics if `n_classes < 2`, `rate ≤ 0`, or `tol ≤ 0`.
pub fn max_feasible_spacing(
    arrivals: &[Arrival],
    n_classes: usize,
    rate: f64,
    tol: f64,
) -> Option<f64> {
    assert!(n_classes >= 2, "need at least two classes");
    assert!(rate > 0.0 && tol > 0.0, "rate and tol must be positive");
    if arrivals.is_empty() || !feasible(arrivals, n_classes, rate, 1.0) {
        return None;
    }
    // Exponential search for an infeasible upper bound.
    let mut lo = 1.0f64;
    let mut hi = 2.0f64;
    let mut expansions = 0;
    while feasible(arrivals, n_classes, rate, hi) {
        lo = hi;
        hi *= 2.0;
        expansions += 1;
        if expansions > 40 {
            // Practically unbounded (e.g. one class carries no traffic).
            return Some(lo);
        }
    }
    // Bisection on the boundary.
    while (hi - lo) / lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(arrivals, n_classes, rate, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// The narrowest geometric spacing whose Eq. (6) top-class delay is at most
/// `target_delay_ticks`, if such a spacing is feasible per Eq. (7).
///
/// Returns `Err(best_achievable)` when the target is unreachable: even the
/// widest feasible spacing leaves the top class above the target.
///
/// # Panics
/// Panics if `n_classes < 2`, `rate ≤ 0`, or the target is not positive.
pub fn spacing_for_top_class_target(
    arrivals: &[Arrival],
    n_classes: usize,
    rate: f64,
    target_delay_ticks: f64,
) -> Result<f64, f64> {
    assert!(n_classes >= 2, "need at least two classes");
    assert!(rate > 0.0, "rate must be positive");
    assert!(target_delay_ticks > 0.0, "target must be positive");
    let (lambda, agg) = measure(arrivals, n_classes, rate);
    let top_delay = |spacing: f64| -> f64 {
        let ddp = Ddp::geometric(n_classes, spacing).expect("spacing >= 1");
        let d = ProportionalModel::new(ddp).predicted_delays(&lambda, agg);
        d[n_classes - 1]
    };
    let max_spacing = max_feasible_spacing(arrivals, n_classes, rate, 1e-3).unwrap_or(1.0);
    if top_delay(max_spacing) > target_delay_ticks {
        return Err(top_delay(max_spacing));
    }
    // Top-class delay decreases monotonically with spacing: bisect for the
    // narrowest spacing meeting the target.
    let (mut lo, mut hi) = (1.0f64, max_spacing);
    if top_delay(lo) <= target_delay_ticks {
        return Ok(lo);
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if top_delay(mid) <= target_delay_ticks {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trace(seed: u64, rho: f64, n: usize) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let gap = 100.0 / rho * n as f64 / n as f64;
        (0..200_000)
            .map(|_| {
                t += -(gap) * (1.0 - rng.random::<f64>()).ln();
                let c = ((rng.random::<f64>() * n as f64) as u8).min(n as u8 - 1);
                (t.round() as u64, c, 100u32)
            })
            .collect()
    }

    #[test]
    fn max_spacing_is_on_the_feasibility_boundary() {
        let tr = trace(1, 0.9, 4);
        let r = max_feasible_spacing(&tr, 4, 1.0, 0.01).expect("some spacing feasible");
        assert!(r > 1.0, "boundary {r}");
        assert!(feasible(&tr, 4, 1.0, r));
        assert!(!feasible(&tr, 4, 1.0, r * 1.1), "r = {r} not maximal");
    }

    #[test]
    fn higher_load_admits_wider_spacing() {
        // At higher utilization the aggregate backlog is larger relative to
        // each class's FCFS-alone bound, so wider spacings stay feasible.
        let lo = max_feasible_spacing(&trace(2, 0.75, 4), 4, 1.0, 0.01).unwrap();
        let hi = max_feasible_spacing(&trace(2, 0.95, 4), 4, 1.0, 0.01).unwrap();
        assert!(hi > lo, "0.95-load max {hi} vs 0.75-load max {lo}");
    }

    #[test]
    fn top_class_target_is_met_by_narrowest_spacing() {
        let tr = trace(3, 0.9, 4);
        let (lambda, agg) = measure(&tr, 4, 1.0);
        // Ask for 60% of the undifferentiated delay for the top class.
        let target = agg * 0.6;
        let spacing = spacing_for_top_class_target(&tr, 4, 1.0, target).expect("reachable");
        let d = ProportionalModel::new(Ddp::geometric(4, spacing).unwrap())
            .predicted_delays(&lambda, agg);
        assert!(
            d[3] <= target * 1.01,
            "top delay {} vs target {target}",
            d[3]
        );
        // Narrowest: a slightly smaller spacing misses the target.
        if spacing > 1.001 {
            let d2 = ProportionalModel::new(Ddp::geometric(4, spacing * 0.98).unwrap())
                .predicted_delays(&lambda, agg);
            assert!(d2[3] > target, "spacing {spacing} not minimal");
        }
    }

    #[test]
    fn unreachable_target_reports_best_achievable() {
        let tr = trace(4, 0.85, 4);
        // Essentially zero delay for the top class is impossible.
        let err = spacing_for_top_class_target(&tr, 4, 1.0, 1e-6).unwrap_err();
        assert!(err > 1e-6, "best achievable {err}");
    }

    #[test]
    fn trivial_target_needs_no_differentiation() {
        let tr = trace(5, 0.9, 2);
        let agg = stats::fcfs_mean_wait(&tr, None, 1.0);
        // Target above the FCFS level: spacing 1 suffices.
        let spacing = spacing_for_top_class_target(&tr, 2, 1.0, agg * 2.0).unwrap();
        assert!((spacing - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_feasible_spacing() {
        assert!(max_feasible_spacing(&[], 4, 1.0, 0.01).is_none());
    }
}
