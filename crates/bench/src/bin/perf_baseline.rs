//! `perf_baseline` — one-shot performance snapshot for the repo.
//!
//! Runs the three hot paths the perf work targets and writes the numbers to
//! `BENCH_propdiff.json` (current directory by default, `--out PATH` to
//! override) so regressions show up in review as a diff of the tracked
//! baseline:
//!
//! * **engine** — events/second through the `simcore` event loop (a
//!   self-rescheduling ticker model, pure queue+dispatch overhead) and
//!   packets/second through the single-link replay loop, both the `dyn`
//!   path (`Session::trace(..).run`) and the monomorphized path
//!   (`run_trace_on` via `SchedulerKind::build_and_visit`).
//! * **schedulers** — packets/second per scheduler under the saturated
//!   4-class workload of [`pdd_bench::saturate`].
//! * **experiments** — wall milliseconds to regenerate Fig. 1 and Table 1
//!   at bench scale.
//! * **mesh** — packet-hops/second through the link-level decomposition
//!   engine at bench scale, plus the paper-scale acceptance run: the
//!   1500-link, million-probe-flow mesh suite cold through the process
//!   farm, with its aggregate simulation throughput.
//!
//! Every measurement is best-of-`REPS` after one warmup run, which is the
//! cheapest defensible protocol on a noisy shared box. Run it release-mode:
//!
//! ```text
//! cargo run --release -p pdd-bench --bin perf_baseline
//! ```

use std::time::Instant;

use experiments::{fig1, mesh, table1, Scale};
use pdd::qsim::{run_trace_on, run_trace_probed, Departure, Experiment, Session};
use pdd::sched::{Packet, RankKind, Scheduler, SchedulerKind, SchedulerVisitor, Sdp, Wtp};
use pdd::simcore::{Context, Dur, Model, Simulation, Time};
use pdd::telemetry::MetricsRegistry;
use pdd::traffic::{ClassSource, LoadPlan, SizeDist, TraceEntry, PAPER_MEAN_PACKET_BYTES};
use pdd_bench::saturate;

/// Timed repetitions per measurement (after one warmup).
const REPS: u32 = 3;
/// Events pushed through the bare engine loop.
const ENGINE_EVENTS: u64 = 2_000_000;
/// Packets pushed through each scheduler's saturation run.
const SATURATE_PACKETS: u64 = 200_000;
/// Replay-trace horizon in p-units (packet transmission times).
const REPLAY_PUNITS: u64 = 10_000;

/// Best-of-`REPS` wall seconds for `f`, with one warmup call first.
/// The closure returns a value so the optimizer cannot discard the work.
fn best_of<T>(mut f: impl FnMut() -> T) -> f64 {
    let _warmup = f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    best
}

/// Four independent tickers, each rescheduling itself one tick later:
/// exercises the heap and the dispatch path with nothing else attached.
struct Ticker;

impl Model for Ticker {
    type Event = u8;
    fn handle(&mut self, lane: u8, ctx: &mut Context<u8>) {
        ctx.schedule_in(Dur::from_ticks(1 + lane as u64), lane);
    }
}

fn engine_events_per_sec() -> f64 {
    let secs = best_of(|| {
        let mut sim = Simulation::new(Ticker);
        for lane in 0..4u8 {
            sim.schedule(Time::from_ticks(lane as u64), lane);
        }
        sim.run_for_events(ENGINE_EVENTS);
        sim.events_handled()
    });
    ENGINE_EVENTS as f64 / secs
}

fn replay_packets_per_sec() -> (f64, f64, u64) {
    let e = Experiment::paper(0.95, Sdp::paper_default(), REPLAY_PUNITS, vec![1]);
    let trace = e.trace_for_seed(1);
    let n = trace.len() as u64;

    let dyn_secs = best_of(|| {
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut n = 0u64;
        Session::trace(&trace, 1.0).run(s.as_mut(), |_| n += 1);
        n
    });

    struct Replay<'a> {
        trace: &'a pdd::traffic::Trace,
    }
    impl SchedulerVisitor for Replay<'_> {
        type Out = u64;
        fn visit<S: Scheduler>(self, mut s: S) -> u64 {
            let mut n = 0u64;
            run_trace_on(&mut s, self.trace.entries().iter().copied(), 1.0, |_| {
                n += 1
            });
            n
        }
    }
    let mono_secs = best_of(|| {
        SchedulerKind::Wtp.build_and_visit(&Sdp::paper_default(), 1.0, Replay { trace: &trace })
    });

    (n as f64 / dyn_secs, n as f64 / mono_secs, n)
}

/// Maximum tolerated slowdown of an instrumented replay loop relative to
/// the frozen pre-probe loop, in percent. Gates both A/B arms: the
/// NoopProbe loop (which must fold away entirely) and the live
/// [`MetricsRegistry`] loop (whose per-packet counter/histogram work must
/// stay within the same budget for metered runs to be usable by default).
///
/// The limit must sit above the box's code-placement noise floor: the two
/// arms compile to instruction-identical loops (verified by diffing their
/// disassembly), yet unrelated code elsewhere in the binary shifts where
/// each loop lands relative to 32-byte fetch boundaries, and that alone
/// has measured anywhere from −1% to +6% here. A probe that genuinely
/// fails to fold away adds branches and calls per packet event — tens of
/// percent — so 10% keeps full detection power without tripping on
/// alignment luck.
const MAX_OVERHEAD_PCT: f64 = 10.0;
/// Budget for the live [`MetricsRegistry`] on the *replay microloop*. The
/// frozen loop retires a packet in ~45–50 ns, so the 10% seam gate would
/// allow the registry under 5 ns/packet — no real per-event accounting
/// (4 probe calls, ~20 counters, two histogram records, gauge high-water
/// marks) fits that, and pretending otherwise would force the gate onto a
/// vacuous registry. The microloop arm is therefore tracked against its
/// own measured budget: ~26% after the hot path was tuned (inlined probe
/// bodies, branchless `touch`, derived `probe_events`, decision-audit
/// opt-out), with headroom for code-placement noise. Regressions like the
/// pre-tuning 80% state still fail loudly. The *production* gate — the
/// discrete-event session loop below, where the registry runs in real
/// experiments — has its own budget, `MAX_REGISTRY_SESSION_OVERHEAD_PCT`.
const MAX_REGISTRY_REPLAY_OVERHEAD_PCT: f64 = 40.0;
/// Budget for the live [`MetricsRegistry`] on the *production session
/// loop*. Measured at ~9.5% when the loop was tuned, which left the
/// general 10% gate with no headroom at all: adding unrelated cold code
/// elsewhere in the workspace (doc parsers, CLI plumbing) shifts code
/// placement enough to swing the ratio by 1–2% and trip the gate with no
/// real regression (the same placement noise documented for the replay
/// arms above). A genuine regression in the per-event accounting shows up
/// as tens of percent, so a 15% budget keeps full detection power.
const MAX_REGISTRY_SESSION_OVERHEAD_PCT: f64 = 15.0;
/// Timed repetitions for the overhead A/B (tighter than `REPS` because the
/// verdict gates the build).
const OVERHEAD_REPS: u32 = 9;
/// Replays per timed repetition: one replay of the bench trace lasts well
/// under a millisecond, so a single pass is all timer jitter. Batching
/// stretches each sample past ~20 ms, which is what makes a tight gate
/// meaningful on a shared box.
const OVERHEAD_ITERS: u32 = 50;

/// Frozen copy of the replay loop as it was before the telemetry layer
/// (`run_trace_on` without probe plumbing). This is the reference side of
/// the observability-overhead A/B: `run_trace_on` now monomorphizes
/// `run_trace_probed::<NoopProbe>`, and the baseline asserts that this
/// compiles to the same loop. Keep this in sync with the *semantics* of
/// `qsim::run_trace_probed`, never with its probe lines.
#[inline(never)]
fn replay_pre_probe<S, I, F>(scheduler: &mut S, arrivals: I, rate: f64, mut on_depart: F)
where
    S: Scheduler + ?Sized,
    I: IntoIterator<Item = TraceEntry>,
    F: FnMut(&Departure),
{
    let mut arrivals = arrivals.into_iter().peekable();
    let mut free = Time::ZERO;
    let mut seq = 0u64;
    loop {
        if scheduler.is_empty() {
            let Some(e) = arrivals.next() else { break };
            scheduler.enqueue(Packet::new(seq, e.class, e.size, e.at));
            seq += 1;
            free = free.max(e.at);
        }
        while let Some(e) = arrivals.next_if(|e| e.at <= free) {
            scheduler.enqueue(Packet::new(seq, e.class, e.size, e.at));
            seq += 1;
        }
        let pkt = scheduler
            .dequeue(free)
            .expect("work-conserving scheduler with backlog must dequeue");
        let finish = free + Dur::from_ticks(((pkt.size as f64 / rate).round() as u64).max(1));
        on_depart(&Departure {
            packet: pkt,
            start: free,
            finish,
        });
        free = finish;
    }
}

/// One observability-overhead A/B verdict: the reference loop's rate, the
/// instrumented loop's rate, and the median paired slowdown in percent.
struct Overhead {
    pre_pps: f64,
    instrumented_pps: f64,
    overhead_pct: f64,
}

/// Best-of-`OVERHEAD_REPS` for pre-probe, NoopProbe-instrumented, and
/// live-[`MetricsRegistry`] replay, interleaved so thermal / scheduler
/// drift hits all arms equally. Returns `(noop, registry)` verdicts, both
/// measured against the same frozen pre-probe loop.
fn observability_overhead() -> (Overhead, Overhead) {
    let e = Experiment::paper(0.95, Sdp::paper_default(), REPLAY_PUNITS, vec![1]);
    let trace = e.trace_for_seed(1);
    let n = trace.len() as u64;

    // Both arms run the concrete `Wtp` scheduler through an outlined
    // (`#[inline(never)]`) call, so the two monomorphized loops sit in
    // identical inlining contexts and the A/B isolates the probe plumbing
    // instead of instantiation luck.
    #[inline(never)]
    fn noop_arm(s: &mut Wtp, trace: &pdd::traffic::Trace, k: &mut u64) {
        run_trace_on(s, trace.entries().iter().copied(), 1.0, |_| *k += 1);
    }
    #[inline(never)]
    fn registry_arm(
        s: &mut Wtp,
        trace: &pdd::traffic::Trace,
        reg: &mut MetricsRegistry,
        k: &mut u64,
    ) {
        run_trace_probed(s, trace.entries().iter().copied(), 1.0, |_| *k += 1, reg);
    }
    let sdp = Sdp::paper_default();
    let time_pre = || {
        let t0 = Instant::now();
        for _ in 0..OVERHEAD_ITERS {
            let mut s = Wtp::new(sdp.clone());
            let mut k = 0u64;
            replay_pre_probe(&mut s, trace.entries().iter().copied(), 1.0, |_| k += 1);
            std::hint::black_box(k);
        }
        t0.elapsed().as_secs_f64()
    };
    let time_noop = || {
        let t0 = Instant::now();
        for _ in 0..OVERHEAD_ITERS {
            let mut s = Wtp::new(sdp.clone());
            let mut k = 0u64;
            noop_arm(&mut s, &trace, &mut k);
            std::hint::black_box(k);
        }
        t0.elapsed().as_secs_f64()
    };
    let time_registry = || {
        let t0 = Instant::now();
        for _ in 0..OVERHEAD_ITERS {
            let mut s = Wtp::new(sdp.clone());
            let mut reg = MetricsRegistry::with_shape(1, sdp.num_classes());
            let mut k = 0u64;
            registry_arm(&mut s, &trace, &mut reg, &mut k);
            std::hint::black_box((k, reg.num_links()));
        }
        t0.elapsed().as_secs_f64()
    };

    let _ = (time_pre(), time_noop(), time_registry()); // warmup all arms

    // Each rep times the arms back to back, ~tens of ms apart, so any
    // transient load on the box hits all sides of the tuple roughly
    // equally and cancels in the ratios. The median pair then shrugs off
    // the reps where it didn't.
    let (mut pre_best, mut noop_best, mut reg_best) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut noop_ratios = Vec::with_capacity(OVERHEAD_REPS as usize);
    let mut reg_ratios = Vec::with_capacity(OVERHEAD_REPS as usize);
    for _ in 0..OVERHEAD_REPS {
        let pre = time_pre();
        let noop = time_noop();
        let reg = time_registry();
        pre_best = pre_best.min(pre);
        noop_best = noop_best.min(noop);
        reg_best = reg_best.min(reg);
        noop_ratios.push((noop - pre) / pre * 100.0);
        reg_ratios.push((reg - pre) / pre * 100.0);
    }
    let median = |ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    };

    let batch = (n * OVERHEAD_ITERS as u64) as f64;
    (
        Overhead {
            pre_pps: batch / pre_best,
            instrumented_pps: batch / noop_best,
            overhead_pct: median(&mut noop_ratios),
        },
        Overhead {
            pre_pps: batch / pre_best,
            instrumented_pps: batch / reg_best,
            overhead_pct: median(&mut reg_ratios),
        },
    )
}

/// Session horizon for the registry production A/B, in p-units. Long
/// enough that one run takes a few milliseconds of steady-state streaming.
const SESSION_PUNITS: u64 = 20_000;
/// Session runs per timed repetition (same batching rationale as
/// `OVERHEAD_ITERS`).
const SESSION_ITERS: u32 = 8;

/// The registry's *production* A/B: the frozen no-metrics session loop
/// (`Session::sources(..).run` under `NoopProbe`) against the same loop
/// with a live [`MetricsRegistry`] attached (`run_metered`). This is the
/// loop every orchestrated experiment runs — online source generation,
/// scenario runtime, scheduler, departure sink — so its packet cost is the
/// denominator that decides whether metrics are affordable in practice.
/// Gated at [`MAX_REGISTRY_SESSION_OVERHEAD_PCT`].
fn registry_session_overhead() -> Overhead {
    let sdp = Sdp::paper_default();
    let n = sdp.num_classes();
    let fractions = vec![1.0 / n as f64; n];
    let sources = LoadPlan::new(1.0, 0.95, &fractions, SizeDist::paper())
        .expect("valid load plan")
        .pareto_sources()
        .expect("valid pareto sources");
    let horizon = Time::from_ticks(SESSION_PUNITS * PAPER_MEAN_PACKET_BYTES as u64);

    #[inline(never)]
    fn pre_arm(sources: &[ClassSource], horizon: Time, sdp: &Sdp, k: &mut u64) {
        let mut s = Wtp::new(sdp.clone());
        Session::sources(sources, horizon, 1, 1.0).run(&mut s, |_| *k += 1);
    }
    #[inline(never)]
    fn metered_arm(sources: &[ClassSource], horizon: Time, sdp: &Sdp, k: &mut u64) -> u64 {
        let mut s = Wtp::new(sdp.clone());
        let reg = Session::sources(sources, horizon, 1, 1.0).run_metered(&mut s, |_| *k += 1);
        reg.num_links() as u64
    }
    let time_pre = || {
        let t0 = Instant::now();
        let mut k = 0u64;
        for _ in 0..SESSION_ITERS {
            pre_arm(&sources, horizon, &sdp, &mut k);
        }
        std::hint::black_box(k);
        (t0.elapsed().as_secs_f64(), k)
    };
    let time_metered = || {
        let t0 = Instant::now();
        let mut k = 0u64;
        for _ in 0..SESSION_ITERS {
            std::hint::black_box(metered_arm(&sources, horizon, &sdp, &mut k));
        }
        std::hint::black_box(k);
        (t0.elapsed().as_secs_f64(), k)
    };

    let (_, packets) = time_pre();
    let _ = time_metered(); // warmup

    let (mut pre_best, mut met_best) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(OVERHEAD_REPS as usize);
    for _ in 0..OVERHEAD_REPS {
        let (pre, _) = time_pre();
        let (met, _) = time_metered();
        pre_best = pre_best.min(pre);
        met_best = met_best.min(met);
        ratios.push((met - pre) / pre * 100.0);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    Overhead {
        pre_pps: packets as f64 / pre_best,
        instrumented_pps: packets as f64 / met_best,
        overhead_pct: ratios[ratios.len() / 2],
    }
}

fn scheduler_packets_per_sec() -> Vec<(&'static str, f64)> {
    // The bespoke kinds, plus the rank-core WTP twin as an informational
    // overhead track against bespoke WTP (no gate; the two are proved
    // decision-identical by `conformance::rank_diff`, so any gap is pure
    // core overhead).
    SchedulerKind::ALL
        .iter()
        .copied()
        .chain([SchedulerKind::Pifo(RankKind::Wtp)])
        .map(|kind| {
            let secs = best_of(|| {
                let mut s = kind.build(&Sdp::paper_default(), 1.0);
                saturate(s.as_mut(), SATURATE_PACKETS)
            });
            (kind.name(), SATURATE_PACKETS as f64 / secs)
        })
        .collect()
}

/// Suite the farm speedup is measured on: seed-sharded, enough shards
/// (140 at paper scale) to keep 4 workers busy.
const FARM_SUITE: &str = "fig1";

/// Locates the sibling `propdiff-run` binary, building the orchestrator
/// first if it is not already next to this executable.
fn propdiff_run_exe() -> std::path::PathBuf {
    let exe = std::env::current_exe()
        .expect("current exe")
        .with_file_name("propdiff-run");
    if !exe.exists() {
        let built = std::process::Command::new("cargo")
            .args(["build", "--release", "-q", "-p", "orchestrator"])
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        assert!(
            built && exe.exists(),
            "farm measurement needs the propdiff-run binary (cargo build --release -p orchestrator)"
        );
    }
    exe
}

/// One cold `propdiff-run run` against a private temp cache: wall seconds
/// plus the merged output document. The temp tree is removed before the
/// status check so a failed run leaves nothing behind.
fn cold_farm_run(exe: &std::path::Path, suite: &str, workers: usize) -> (f64, String) {
    let dir = std::env::temp_dir().join(format!(
        "propdiff_bench_{suite}_w{workers}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = Instant::now();
    let status = std::process::Command::new(exe)
        .args([
            "run",
            "--suite",
            suite,
            "--paper",
            "--quiet",
            "--workers",
            &workers.to_string(),
            "--cache-dir",
        ])
        .arg(dir.join("cache"))
        .arg("--out")
        .arg(dir.join("out.json"))
        .arg("--csv-dir")
        .arg(dir.join("csv"))
        .status()
        .expect("spawn propdiff-run");
    let secs = t0.elapsed().as_secs_f64();
    let merged = std::fs::read_to_string(dir.join("out.json")).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        status.success(),
        "farm run failed ({suite}, {workers} workers)"
    );
    (secs, merged)
}

/// Cold wall seconds of `propdiff-run run --suite fig1 --paper
/// --workers N` with a private cache, for N = 1 and N = 4 — the tracked
/// evidence that the multi-process farm actually buys wall-clock time
/// (the merged output is byte-identical either way, so this is the only
/// number the farm can move). The speedup saturates at the box's core
/// count: on a single-core container it is honestly ~1.0×.
fn farm_wall_secs() -> (f64, f64) {
    let exe = propdiff_run_exe();
    (
        cold_farm_run(&exe, FARM_SUITE, 1).0,
        cold_farm_run(&exe, FARM_SUITE, 4).0,
    )
}

/// Threads the bench-scale mesh decomposition fans link jobs across.
const MESH_WORKERS: usize = 4;
/// Farm worker processes for the paper-scale mesh acceptance run.
const MESH_FARM_WORKERS: usize = 4;

/// Packet-hops per second through the link-level decomposition engine at
/// bench scale (`mesh::run_decomposed`, k = 4 fat-tree, [`MESH_WORKERS`]
/// threads): the in-process cost of one simulated packet transmission
/// including routing, cross-traffic generation, and composition.
fn mesh_decomposed_pps() -> (f64, u64) {
    let cfg = mesh::cell_config(SchedulerKind::Wtp, Scale::Bench);
    let mut hops = 0u64;
    let secs = best_of(|| {
        let out = mesh::run_decomposed(&cfg, MESH_WORKERS).expect("bench mesh is valid");
        hops = out.link_departures.iter().sum();
        hops
    });
    (hops as f64 / secs, hops)
}

/// Sums every `"key":<int>` occurrence in a compact JSON document (the
/// exact shape `orchestrator::Json` serializes — no spaces around `:`).
fn sum_json_ints(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let mut total = 0u64;
    let mut rest = text;
    while let Some(i) = rest.find(&needle) {
        rest = &rest[i + needle.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        total += digits.parse::<u64>().unwrap_or(0);
    }
    total
}

/// The mesh acceptance run: one cold `propdiff-run run --suite mesh
/// --paper --workers 4` (k = 10 fat-tree, 1500 links, 10⁶ probe flows
/// per cell, three schedulers, 12 shard processes), timed once — it runs
/// for tens of seconds, so a best-of protocol would triple the baseline's
/// runtime for a number that is already an aggregate over millions of
/// packet-hops. Returns wall seconds and total packet-hops summed from
/// the merged document, whose ratio is the farm's aggregate simulation
/// throughput.
fn mesh_farm_paper() -> (f64, u64) {
    let exe = propdiff_run_exe();
    let (secs, merged) = cold_farm_run(&exe, "mesh", MESH_FARM_WORKERS);
    let hops = sum_json_ints(&merged, "packet_hops");
    assert!(hops > 0, "mesh farm document carries no packet_hops");
    (secs, hops)
}

/// Short hash of the repo's current HEAD. Anchored to the bench crate's
/// own source directory (`-C`), not the process working directory, so the
/// stamp is the workspace HEAD even when the binary runs from elsewhere
/// (`--out /tmp/...`, CI checkout subdirectories) instead of silently
/// recording `unknown` or some other repository's rev.
fn git_rev() -> String {
    let git = |args: &[&str]| -> Option<String> {
        std::process::Command::new("git")
            .args(["-C", env!("CARGO_MANIFEST_DIR")])
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let rev = git(&["rev-parse", "--short", "HEAD"])
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    // `-dirty` when the worktree has uncommitted changes, so a baseline
    // number can never masquerade as having been measured at `rev`.
    let dirty = git(&["status", "--porcelain"]).is_some_and(|s| !s.trim().is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// Formats a float with enough digits to diff meaningfully, no more.
fn num(x: f64) -> String {
    if x >= 1000.0 {
        format!("{:.0}", x)
    } else {
        format!("{:.2}", x)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_propdiff.json".to_string());

    eprintln!("perf_baseline: engine event loop ({ENGINE_EVENTS} events)...");
    let engine_eps = engine_events_per_sec();

    eprintln!("perf_baseline: single-link replay ({REPLAY_PUNITS} p-units)...");
    let (dyn_pps, mono_pps, replay_packets) = replay_packets_per_sec();

    eprintln!("perf_baseline: observability overhead A/B ({OVERHEAD_REPS} reps)...");
    let (noop, registry) = observability_overhead();

    eprintln!("perf_baseline: registry session A/B ({OVERHEAD_REPS} reps)...");
    let session = registry_session_overhead();

    eprintln!("perf_baseline: scheduler saturation ({SATURATE_PACKETS} packets each)...");
    let sched_pps = scheduler_packets_per_sec();

    eprintln!("perf_baseline: Fig. 1 at bench scale...");
    let fig1_ms = best_of(|| fig1::run(Scale::Bench)) * 1000.0;

    eprintln!("perf_baseline: Table 1 at bench scale...");
    let table1_ms = best_of(|| table1::run(Scale::Bench)) * 1000.0;

    eprintln!("perf_baseline: mesh decomposition at bench scale ({MESH_WORKERS} threads)...");
    let (mesh_pps, mesh_hops) = mesh_decomposed_pps();

    eprintln!("perf_baseline: farm speedup (cold `{FARM_SUITE}` paper, 1 vs 4 workers)...");
    let (farm_w1_s, farm_w4_s) = farm_wall_secs();

    eprintln!("perf_baseline: mesh paper acceptance (cold farm, {MESH_FARM_WORKERS} workers)...");
    let (mesh_farm_s, mesh_farm_hops) = mesh_farm_paper();

    // Hand-rolled JSON: stable key order, one line per scalar, so the file
    // diffs cleanly under version control. No serde dependency needed.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    json.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    json.push_str("  \"engine\": {\n");
    json.push_str(&format!(
        "    \"simcore_events_per_sec\": {},\n",
        num(engine_eps)
    ));
    json.push_str(&format!(
        "    \"replay_dyn_packets_per_sec\": {},\n",
        num(dyn_pps)
    ));
    json.push_str(&format!(
        "    \"replay_mono_packets_per_sec\": {},\n",
        num(mono_pps)
    ));
    json.push_str(&format!("    \"replay_trace_packets\": {replay_packets}\n"));
    json.push_str("  },\n");
    json.push_str("  \"observability\": {\n");
    json.push_str(&format!(
        "    \"replay_pre_probe_packets_per_sec\": {},\n",
        num(noop.pre_pps)
    ));
    json.push_str(&format!(
        "    \"replay_noop_probe_packets_per_sec\": {},\n",
        num(noop.instrumented_pps)
    ));
    json.push_str(&format!(
        "    \"observability_overhead_pct\": {:.2},\n",
        noop.overhead_pct
    ));
    json.push_str(&format!(
        "    \"replay_registry_packets_per_sec\": {},\n",
        num(registry.instrumented_pps)
    ));
    json.push_str(&format!(
        "    \"registry_replay_overhead_pct\": {:.2},\n",
        registry.overhead_pct
    ));
    json.push_str(&format!(
        "    \"session_no_metrics_packets_per_sec\": {},\n",
        num(session.pre_pps)
    ));
    json.push_str(&format!(
        "    \"session_registry_packets_per_sec\": {},\n",
        num(session.instrumented_pps)
    ));
    json.push_str(&format!(
        "    \"registry_session_overhead_pct\": {:.2}\n",
        session.overhead_pct
    ));
    json.push_str("  },\n");
    json.push_str("  \"schedulers_packets_per_sec\": {\n");
    for (i, (name, pps)) in sched_pps.iter().enumerate() {
        let comma = if i + 1 < sched_pps.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {}{comma}\n", num(*pps)));
    }
    json.push_str("  },\n");
    json.push_str("  \"experiments_wall_ms\": {\n");
    json.push_str(&format!("    \"fig1_bench\": {},\n", num(fig1_ms)));
    json.push_str(&format!("    \"table1_bench\": {}\n", num(table1_ms)));
    json.push_str("  },\n");
    json.push_str("  \"farm\": {\n");
    json.push_str(&format!("    \"suite\": \"{FARM_SUITE}\",\n"));
    json.push_str("    \"scale\": \"paper\",\n");
    json.push_str(&format!("    \"workers1_wall_s\": {},\n", num(farm_w1_s)));
    json.push_str(&format!("    \"workers4_wall_s\": {},\n", num(farm_w4_s)));
    json.push_str(&format!(
        "    \"speedup_x\": {:.2}\n",
        farm_w1_s / farm_w4_s
    ));
    json.push_str("  },\n");
    json.push_str("  \"mesh\": {\n");
    json.push_str(&format!(
        "    \"decompose_bench_threads\": {MESH_WORKERS},\n"
    ));
    json.push_str(&format!(
        "    \"decompose_bench_packet_hops\": {mesh_hops},\n"
    ));
    json.push_str(&format!(
        "    \"decompose_bench_packet_hops_per_sec\": {},\n",
        num(mesh_pps)
    ));
    json.push_str(&format!(
        "    \"farm_paper_workers\": {MESH_FARM_WORKERS},\n"
    ));
    json.push_str(&format!(
        "    \"farm_paper_wall_s\": {},\n",
        num(mesh_farm_s)
    ));
    json.push_str(&format!(
        "    \"farm_paper_packet_hops\": {mesh_farm_hops},\n"
    ));
    json.push_str(&format!(
        "    \"farm_paper_packet_hops_per_sec\": {}\n",
        num(mesh_farm_hops as f64 / mesh_farm_s)
    ));
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write baseline json");
    eprintln!("perf_baseline: wrote {out_path}");
    print!("{json}");

    let mut failed = false;
    if noop.overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "perf_baseline: FAIL — NoopProbe replay is {:.2}% slower than the \
             pre-probe loop (limit {MAX_OVERHEAD_PCT}%)",
            noop.overhead_pct
        );
        failed = true;
    }
    if registry.overhead_pct > MAX_REGISTRY_REPLAY_OVERHEAD_PCT {
        eprintln!(
            "perf_baseline: FAIL — live MetricsRegistry replay is {:.2}% slower than \
             the pre-probe loop (microloop budget {MAX_REGISTRY_REPLAY_OVERHEAD_PCT}%)",
            registry.overhead_pct
        );
        failed = true;
    }
    if session.overhead_pct > MAX_REGISTRY_SESSION_OVERHEAD_PCT {
        eprintln!(
            "perf_baseline: FAIL — metered session loop is {:.2}% slower than the \
             frozen no-metrics session loop (budget {MAX_REGISTRY_SESSION_OVERHEAD_PCT}%)",
            session.overhead_pct
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "perf_baseline: observability overhead noop {:.2}% (limit {MAX_OVERHEAD_PCT}%), \
         registry replay {:.2}% (budget {MAX_REGISTRY_REPLAY_OVERHEAD_PCT}%), \
         registry session {:.2}% (budget {MAX_REGISTRY_SESSION_OVERHEAD_PCT}%)",
        noop.overhead_pct, registry.overhead_pct, session.overhead_pct
    );
}
