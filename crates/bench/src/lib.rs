//! # pdd-bench — benchmark support
//!
//! The actual benches live in `benches/`:
//!
//! * `schedulers` — enqueue/dequeue throughput of every scheduler under a
//!   saturated 4-class workload.
//! * `figures` — regenerates Fig. 1, Fig. 2, Fig. 3, and Figs. 4–5 at
//!   bench scale, timing the full pipeline (traffic generation →
//!   scheduling → statistics).
//! * `table1` — regenerates the Table-1 multi-hop study at bench scale.
//!
//! This library exposes the small shared helpers those benches use.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use pdd::sched::{Packet, Scheduler};
use pdd::simcore::{Dur, Time};

/// Pushes `n` packets (round-robin over 4 classes, mixed sizes) through a
/// scheduler under sustained overload and returns the number of departures
/// (always `n`; returned so the optimizer cannot discard the work).
///
/// Arrivals land every 100 ticks while the mean packet takes 660 ticks to
/// transmit at link rate 1, so the backlog grows throughout the run:
/// every dequeue is a real multi-class decision at its own instant, with
/// arrivals interleaved mid-run exactly as the replay loop interleaves
/// them — not a single drain at one far-future `now`, which lets
/// waiting-time schedulers skip all the interesting arithmetic.
pub fn saturate(s: &mut dyn Scheduler, n: u64) -> u64 {
    const GAP: u64 = 100;
    let sizes = [40u32, 550, 550, 1500];
    let pkt = |i: u64| {
        Packet::new(
            i,
            (i % 4) as u8,
            sizes[(i % 4) as usize],
            Time::from_ticks(i * GAP),
        )
    };
    let mut next = 0u64;
    let mut free = Time::ZERO;
    let mut count = 0u64;
    loop {
        if s.is_empty() {
            if next >= n {
                break;
            }
            free = free.max(Time::from_ticks(next * GAP));
            s.enqueue(pkt(next));
            next += 1;
        }
        while next < n && next * GAP <= free.ticks() {
            s.enqueue(pkt(next));
            next += 1;
        }
        let p = s
            .dequeue(free)
            .expect("backlogged work-conserving scheduler must dequeue");
        free += Dur::from_ticks(p.size as u64);
        count += 1;
    }
    assert!(
        s.is_empty(),
        "{}: backlog left after the saturation run drained",
        s.name()
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdd::sched::{SchedulerKind, Sdp};

    #[test]
    fn saturate_drains_everything() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(&Sdp::paper_default(), 1.0);
            assert_eq!(saturate(s.as_mut(), 1000), 1000, "{}", kind.name());
            assert!(s.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn saturate_decisions_span_distinct_instants() {
        // Under overload the class queues must actually build up: if every
        // packet were served the instant it arrived the bench would be
        // measuring the empty-queue fast path, not scheduling decisions.
        struct Spy {
            inner: Box<dyn pdd::sched::Scheduler>,
            max_backlog: usize,
        }
        impl pdd::sched::Scheduler for Spy {
            fn num_classes(&self) -> usize {
                self.inner.num_classes()
            }
            fn enqueue(&mut self, p: Packet) {
                self.inner.enqueue(p);
                self.max_backlog = self.max_backlog.max(self.inner.total_backlog_packets());
            }
            fn dequeue(&mut self, now: Time) -> Option<Packet> {
                self.inner.dequeue(now)
            }
            fn backlog_packets(&self, c: usize) -> usize {
                self.inner.backlog_packets(c)
            }
            fn backlog_bytes(&self, c: usize) -> u64 {
                self.inner.backlog_bytes(c)
            }
            fn name(&self) -> &'static str {
                self.inner.name()
            }
        }
        let mut spy = Spy {
            inner: SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0),
            max_backlog: 0,
        };
        assert_eq!(saturate(&mut spy, 500), 500);
        assert!(
            spy.max_backlog > 100,
            "overload never built a backlog (max {})",
            spy.max_backlog
        );
    }
}
