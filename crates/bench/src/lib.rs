//! # pdd-bench — benchmark support
//!
//! The actual benches live in `benches/`:
//!
//! * `schedulers` — enqueue/dequeue throughput of every scheduler under a
//!   saturated 4-class workload.
//! * `figures` — regenerates Fig. 1, Fig. 2, Fig. 3, and Figs. 4–5 at
//!   bench scale, timing the full pipeline (traffic generation →
//!   scheduling → statistics).
//! * `table1` — regenerates the Table-1 multi-hop study at bench scale.
//!
//! This library exposes the small shared helpers those benches use.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use pdd::sched::{Packet, Scheduler};
use pdd::simcore::{Dur, Time};

/// Pushes `n` packets (round-robin over 4 classes, mixed sizes) through a
/// scheduler at full link speed and returns the number of departures
/// (always `n`; returned so the optimizer cannot discard the work).
pub fn saturate(s: &mut dyn Scheduler, n: u64) -> u64 {
    let sizes = [40u32, 550, 550, 1500];
    for i in 0..n {
        s.enqueue(Packet::new(
            i,
            (i % 4) as u8,
            sizes[(i % 4) as usize],
            Time::from_ticks(i),
        ));
    }
    let mut now = Time::from_ticks(n);
    let mut count = 0;
    while let Some(p) = s.dequeue(now) {
        now += Dur::from_ticks(p.size as u64);
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdd::sched::{SchedulerKind, Sdp};

    #[test]
    fn saturate_drains_everything() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(&Sdp::paper_default(), 1.0);
            assert_eq!(saturate(s.as_mut(), 1000), 1000, "{}", kind.name());
        }
    }
}
