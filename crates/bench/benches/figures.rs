//! Regeneration benches for the single-link figures: each bench runs the
//! full pipeline (traffic generation → scheduling → statistics) that
//! produces the corresponding figure, at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{ablations, fig1, fig2, fig3, fig45, Scale};

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_delay_ratio_vs_utilization", |b| {
        b.iter(|| fig1::run(Scale::Bench))
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_delay_ratio_vs_load_split", |b| {
        b.iter(|| fig2::run(Scale::Bench))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_rd_percentiles_vs_timescale", |b| {
        b.iter(|| fig3::run(Scale::Bench))
    });
}

fn bench_fig45(c: &mut Criterion) {
    c.bench_function("fig45_microscopic_views", |b| {
        b.iter(|| fig45::run(Scale::Bench))
    });
}

fn bench_ablation_schedulers(c: &mut Criterion) {
    c.bench_function("ablation_scheduler_shootout", |b| {
        b.iter(|| ablations::schedulers(Scale::Bench))
    });
}

fn bench_ablation_feasibility(c: &mut Criterion) {
    c.bench_function("ablation_feasibility_region", |b| {
        b.iter(|| ablations::feasibility(Scale::Bench))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig3, bench_fig45,
              bench_ablation_schedulers, bench_ablation_feasibility
}
criterion_main!(benches);
