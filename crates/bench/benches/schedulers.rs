//! Scheduler micro-benchmarks: enqueue/dequeue throughput under a
//! saturated 4-class workload (the O(N)-per-decision claim of §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdd::sched::{SchedulerKind, Sdp};
use pdd_bench::saturate;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_throughput");
    const N: u64 = 10_000;
    group.throughput(Throughput::Elements(N));
    for kind in SchedulerKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut s = kind.build(&Sdp::paper_default(), 1.0);
                    saturate(s.as_mut(), N)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
