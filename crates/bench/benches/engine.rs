//! Engine throughput benches: packets/second through the single-link
//! replay loop and events/second through the multi-hop simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdd::netsim::{Session as NetSession, StudyBConfig};
use pdd::qsim::{Experiment, Session};
use pdd::sched::{SchedulerKind, Sdp};

fn bench_qsim_throughput(c: &mut Criterion) {
    let e = Experiment::paper(0.95, Sdp::paper_default(), 10_000, vec![1]);
    let trace = e.trace_for_seed(1);
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("qsim_replay_packets", |b| {
        b.iter(|| {
            let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
            let mut n = 0u64;
            Session::trace(&trace, 1.0).run(s.as_mut(), |_| n += 1);
            n
        });
    });
    group.finish();
}

fn bench_netsim_throughput(c: &mut Criterion) {
    c.bench_function("netsim_4hop_second_of_traffic", |b| {
        b.iter(|| {
            let mut cfg = StudyBConfig::paper(4, 0.95, 10, 200.0);
            cfg.experiments = 1;
            cfg.warmup_secs = 1.0;
            NetSession::study_b(&cfg).run().0
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_qsim_throughput, bench_netsim_throughput
}
criterion_main!(benches);
