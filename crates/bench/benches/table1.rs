//! Regeneration bench for Table 1: the multi-hop Study-B pipeline
//! (Figure-6 topology, WTP at every hop, user experiments + analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{table1, Scale};
use pdd::netsim::{analyze, packet_time_tolerance, Session, StudyBConfig};

/// One representative cell (K=4, ρ=0.95, F=10, R_u=200) at bench scale.
fn bench_table1_cell(c: &mut Criterion) {
    c.bench_function("table1_single_cell", |b| {
        b.iter(|| {
            let mut cfg = StudyBConfig::paper(4, 0.95, 10, 200.0);
            cfg.experiments = 4;
            cfg.warmup_secs = 2.0;
            let (records, _) = Session::study_b(&cfg).run();
            analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg))
        })
    });
}

/// The full sixteen-cell grid at bench scale.
fn bench_table1_grid(c: &mut Criterion) {
    c.bench_function("table1_full_grid", |b| b.iter(|| table1::run(Scale::Bench)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1_cell, bench_table1_grid
}
criterion_main!(benches);
