//! The shared per-link description.
//!
//! Every network simulator in this crate — the Study-B chain, the
//! arbitrary [`mesh`](crate::mesh), and the [`topology`](crate::topology)
//! generators — describes a link the same way: a capacity, a scheduler, a
//! propagation delay, and an optional cross-traffic model. [`LinkSpec`] is
//! that description, and [`LinkSpec::validate`] is the single place the
//! per-link invariants are checked, so the config builders cannot drift
//! apart.

use sched::SchedulerKind;

use crate::config::CrossModel;
use crate::TICKS_PER_SEC;

/// One unidirectional link: capacity, scheduler, propagation, and an
/// optional cross-traffic model loading it.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bps: f64,
    /// The scheduler at this link's queue.
    pub scheduler: SchedulerKind,
    /// Propagation delay in ns. Common to all classes and excluded from
    /// the queueing-delay metric, exactly as the paper measures.
    pub propagation_ns: u64,
    /// Single-hop background traffic loading this link, if any. The chain
    /// engine simulates it live; the mesh engine materializes it into
    /// explicit flows via [`crate::mesh::MeshConfig::materialize_cross`]
    /// (crate::mesh::MeshConfig::materialize_cross).
    pub cross: Option<CrossTraffic>,
}

/// A background (cross) traffic model: C sources injecting single-hop
/// packets that consume `utilization` of the link's capacity, split across
/// classes by `class_fractions`.
///
/// `utilization` here is the share the cross traffic itself occupies —
/// unlike [`StudyBConfig::utilization`](crate::StudyBConfig), which is the
/// *total* target including pass-through user traffic. The Study-B config
/// derives its per-link [`CrossTraffic`] by subtracting the user share
/// first ([`StudyBConfig::link_spec`](crate::StudyBConfig::link_spec)).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTraffic {
    /// How the sources generate load (open-loop Pareto or ECN-adaptive).
    pub model: CrossModel,
    /// Fraction of the link's capacity the cross traffic consumes, in
    /// (0, 1).
    pub utilization: f64,
    /// Number of independent sources.
    pub sources: usize,
    /// Per-class share of the cross load (one entry per class, sums to 1).
    pub class_fractions: Vec<f64>,
    /// Cross-packet size in bytes.
    pub packet_bytes: u32,
}

impl CrossTraffic {
    /// The paper's §6 mix: 8 Pareto sources, 40/30/20/10 % across four
    /// classes, 500-byte packets, at the given cross utilization.
    pub fn paper(utilization: f64) -> CrossTraffic {
        CrossTraffic {
            model: CrossModel::Pareto,
            utilization,
            sources: 8,
            class_fractions: vec![0.4, 0.3, 0.2, 0.1],
            packet_bytes: 500,
        }
    }

    /// Validates the model against a class count.
    pub fn validate(&self, num_classes: usize) -> Result<(), String> {
        if !(self.utilization > 0.0 && self.utilization < 1.0) {
            return Err(format!(
                "cross utilization must be in (0,1), got {}",
                self.utilization
            ));
        }
        if self.sources == 0 {
            return Err("cross traffic needs at least one source".into());
        }
        let sum: f64 = self.class_fractions.iter().sum();
        if self.class_fractions.len() != num_classes || (sum - 1.0).abs() > 1e-6 {
            return Err("cross-class fractions must sum to 1, one per class".into());
        }
        if self
            .class_fractions
            .iter()
            .any(|&f| !(0.0..=1.0).contains(&f))
        {
            return Err("cross-class fractions must lie in [0,1]".into());
        }
        if self.packet_bytes == 0 {
            return Err("cross packets must be at least one byte".into());
        }
        Ok(())
    }
}

impl LinkSpec {
    /// A plain link: no propagation delay, no cross traffic.
    pub fn new(bps: f64, scheduler: SchedulerKind) -> LinkSpec {
        LinkSpec {
            bps,
            scheduler,
            propagation_ns: 0,
            cross: None,
        }
    }

    /// Sets the propagation delay (builder-style).
    pub fn with_propagation(mut self, ns: u64) -> LinkSpec {
        self.propagation_ns = ns;
        self
    }

    /// Attaches a cross-traffic model (builder-style).
    pub fn with_cross(mut self, cross: CrossTraffic) -> LinkSpec {
        self.cross = Some(cross);
        self
    }

    /// Link rate in bytes per tick (bytes per ns).
    pub fn bytes_per_tick(&self) -> f64 {
        self.bps / 8.0 / TICKS_PER_SEC as f64
    }

    /// Validates the link against a class count. The one checkpoint every
    /// config surface (chain, mesh, topology) funnels through.
    pub fn validate(&self, num_classes: usize) -> Result<(), String> {
        // `partial_cmp` so NaN capacities are rejected along with ≤ 0.
        if !(self.bps.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
            && self.bps.is_finite())
        {
            return Err(format!("link capacity must be positive, got {}", self.bps));
        }
        if let Some(cross) = &self.cross {
            cross.validate(num_classes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_link_validates() {
        let l = LinkSpec::new(25_000_000.0, SchedulerKind::Wtp);
        assert!(l.validate(4).is_ok());
        assert!((l.bytes_per_tick() - 0.003125).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_capacities() {
        for bps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let l = LinkSpec::new(bps, SchedulerKind::Wtp);
            assert!(l.validate(4).is_err(), "accepted bps={bps}");
        }
    }

    #[test]
    fn rejects_bad_cross_models() {
        let base = |cross| LinkSpec::new(1e6, SchedulerKind::Wtp).with_cross(cross);
        assert!(base(CrossTraffic::paper(0.9)).validate(4).is_ok());
        assert!(base(CrossTraffic::paper(0.0)).validate(4).is_err());
        assert!(base(CrossTraffic::paper(1.0)).validate(4).is_err());
        let mut c = CrossTraffic::paper(0.9);
        c.sources = 0;
        assert!(base(c).validate(4).is_err());
        let mut c = CrossTraffic::paper(0.9);
        c.class_fractions = vec![0.5, 0.5];
        assert!(base(c).validate(4).is_err(), "wrong class count");
        let mut c = CrossTraffic::paper(0.9);
        c.packet_bytes = 0;
        assert!(base(c).validate(4).is_err());
        // Fractions must cover exactly the class count.
        let c = CrossTraffic::paper(0.9);
        assert!(base(c).validate(2).is_err());
    }

    #[test]
    fn builder_style_knobs_compose() {
        let l = LinkSpec::new(1e9, SchedulerKind::Fcfs)
            .with_propagation(5_000)
            .with_cross(CrossTraffic::paper(0.5));
        assert_eq!(l.propagation_ns, 5_000);
        assert!(l.cross.is_some());
        assert!(l.validate(4).is_ok());
    }
}
