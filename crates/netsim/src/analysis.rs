//! Table-1 analysis: end-to-end delay percentiles, consistency, R_D.

use stats::Percentiles;

/// The end-to-end queueing waits of one user experiment, per class, in
/// ticks (ns).
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Experiment index (0-based).
    pub experiment: u32,
    /// `per_class_waits[c]` holds one wait per delivered packet of the
    /// class-c flow.
    pub per_class_waits: Vec<Vec<u64>>,
}

impl ExperimentRecord {
    /// The Study-B percentile ladder (10 %, …, 90 %, 99 %) of each class's
    /// flow, or `None` for classes with no delivered packets.
    pub fn ladders(&self) -> Vec<Option<[f64; 10]>> {
        self.per_class_waits
            .iter()
            .map(|w| Percentiles::new(w.iter().map(|&x| x as f64).collect()).study_b_ladder())
            .collect()
    }
}

/// Aggregated Study-B outcome — one Table-1 cell.
#[derive(Debug, Clone)]
pub struct StudyBResult {
    /// Number of user experiments analyzed.
    pub experiments: usize,
    /// Experiments in which some higher class saw a larger delay than a
    /// lower class in any percentile *by more than one packet transmission
    /// time per hop* (the paper reports zero). Differences below that
    /// granularity amount to a single packet's queue position and are not
    /// a differentiation failure.
    pub inconsistent_experiments: usize,
    /// Strict-inequality count at full ns resolution (no tolerance); the
    /// conservative upper bound.
    pub inconsistent_strict: usize,
    /// The Table-1 figure of merit: mean over successive class pairs, user
    /// experiments, and the ten percentiles of
    /// `lower_class_delay / higher_class_delay`.
    pub rd: f64,
    /// Ratios that had a zero higher-class delay and were skipped.
    pub skipped_ratios: usize,
    /// Per-class median end-to-end delay, in ticks, pooled over all
    /// experiments (for context in reports).
    pub class_median_ticks: Vec<f64>,
}

/// Analyzes a set of experiment records into a [`StudyBResult`].
///
/// Consistency follows §6: relative differentiation is *consistent* if a
/// higher class is "better, or at least no worse". Two counts are kept:
/// a strict one (any ns-level inversion) and the headline one that allows
/// differences up to `tolerance_ticks` (pass one packet transmission time
/// per hop: an inversion smaller than a single packet's slot is a tie at
/// the granularity the system can control).
pub fn analyze(
    records: &[ExperimentRecord],
    num_classes: usize,
    tolerance_ticks: f64,
) -> StudyBResult {
    let mut inconsistent = 0usize;
    let mut inconsistent_strict = 0usize;
    let mut ratio_sum = 0.0f64;
    let mut ratio_n = 0usize;
    let mut skipped = 0usize;
    let mut pooled: Vec<Vec<f64>> = vec![Vec::new(); num_classes];

    for rec in records {
        let ladders = rec.ladders();
        let mut bad = false;
        let mut bad_strict = false;
        for c in 0..num_classes.saturating_sub(1) {
            let (Some(lo), Some(hi)) = (&ladders[c], &ladders[c + 1]) else {
                continue;
            };
            for (dl, dh) in lo.iter().zip(hi.iter()) {
                // Higher class worse => inconsistent.
                if *dh > *dl {
                    bad_strict = true;
                }
                if *dh > *dl + tolerance_ticks {
                    bad = true;
                }
                if *dh > 0.0 {
                    ratio_sum += dl / dh;
                    ratio_n += 1;
                } else {
                    skipped += 1;
                }
            }
        }
        if bad {
            inconsistent += 1;
        }
        if bad_strict {
            inconsistent_strict += 1;
        }
        for (c, w) in rec.per_class_waits.iter().enumerate() {
            pooled[c].extend(w.iter().map(|&x| x as f64));
        }
    }

    let class_median_ticks = pooled
        .into_iter()
        .map(|v| Percentiles::new(v).quantile(0.5).unwrap_or(0.0))
        .collect();

    StudyBResult {
        experiments: records.len(),
        inconsistent_experiments: inconsistent,
        inconsistent_strict,
        rd: if ratio_n == 0 {
            0.0
        } else {
            ratio_sum / ratio_n as f64
        },
        skipped_ratios: skipped,
        class_median_ticks,
    }
}

/// One packet transmission time per hop, in ticks — the natural
/// consistency tolerance for [`analyze`] on a given configuration.
pub fn packet_time_tolerance(cfg: &crate::StudyBConfig) -> f64 {
    cfg.k_hops as f64 * cfg.packet_bytes as f64 / cfg.link_bytes_per_tick()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(exp: u32, per_class: Vec<Vec<u64>>) -> ExperimentRecord {
        ExperimentRecord {
            experiment: exp,
            per_class_waits: per_class,
        }
    }

    #[test]
    fn perfect_halving_gives_rd_two() {
        // Class c+1 delays are exactly half of class c at every rank.
        let base: Vec<u64> = (1..=20).map(|i| i * 1000).collect();
        let half: Vec<u64> = base.iter().map(|&x| x / 2).collect();
        let quarter: Vec<u64> = base.iter().map(|&x| x / 4).collect();
        let recs = vec![record(0, vec![base, half, quarter])];
        let r = analyze(&recs, 3, 0.0);
        assert_eq!(r.experiments, 1);
        assert_eq!(r.inconsistent_experiments, 0);
        assert!((r.rd - 2.0).abs() < 1e-9, "rd {}", r.rd);
        assert_eq!(r.skipped_ratios, 0);
    }

    #[test]
    fn inversion_is_flagged_inconsistent() {
        let lo: Vec<u64> = vec![100; 10];
        let hi: Vec<u64> = vec![500; 10]; // higher class much worse
        let r = analyze(&[record(0, vec![lo, hi])], 2, 0.0);
        assert_eq!(r.inconsistent_experiments, 1);
    }

    #[test]
    fn equal_delays_are_consistent_no_worse() {
        let w: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        let r = analyze(&[record(0, vec![w.clone(), w])], 2, 0.0);
        assert_eq!(r.inconsistent_experiments, 0);
        assert!((r.rd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_skipped() {
        let lo: Vec<u64> = vec![100; 10];
        let hi: Vec<u64> = vec![0; 10];
        let r = analyze(&[record(0, vec![lo, hi])], 2, 0.0);
        assert_eq!(r.skipped_ratios, 10);
        assert_eq!(r.rd, 0.0);
    }

    #[test]
    fn medians_are_pooled_across_experiments() {
        let r = analyze(
            &[
                record(0, vec![vec![10, 20, 30], vec![1, 2, 3]]),
                record(1, vec![vec![40, 50, 60], vec![4, 5, 6]]),
            ],
            2,
            0.0,
        );
        assert!((r.class_median_ticks[0] - 35.0).abs() < 1e-9);
        assert!((r.class_median_ticks[1] - 3.5).abs() < 1e-9);
    }
}
