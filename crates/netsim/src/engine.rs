//! The event-driven multi-hop engine.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use scenario::{Command, DownPolicy, Scenario, ScenarioRuntime};
use sched::{Packet, ReconfigureError, Scheduler};
use simcore::{Context, Dur, Model, RunOutcome, Simulation, Time};
use telemetry::{PacketId, Probe};
use traffic::IatDist;

use crate::analysis::ExperimentRecord;
use crate::config::{CrossModel, StudyBConfig};
use crate::TICKS_PER_SEC;

/// Sentinel tag for cross-traffic packets (no per-packet bookkeeping).
const CROSS_TAG: u64 = u64::MAX;

/// High bit marking cross-traffic span ids in probe events, so single-hop
/// cross packets (span = hop-local seq) can never collide with user-packet
/// spans (span = the small dense `metas` index).
const CROSS_SPAN_BIT: u64 = 1 << 63;

/// Events handled between probe heartbeats when a probe is attached.
const HEARTBEAT_EVERY: u64 = 65_536;

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Cross-traffic source `src` at node `node` emits a packet.
    Cross { node: u16, src: u16 },
    /// Packet `idx` of the flow (experiment `exp`, class `class`) enters
    /// the first link.
    UserPacket { exp: u32, class: u8, idx: u32 },
    /// The link finished transmitting its in-flight packet.
    TxDone { link: u16 },
    /// A user packet finished propagating to its next hop.
    Propagated { link: u16, class: u8, tag: u64 },
    /// The next scenario event is due: apply every perturbation at or
    /// before now, then reschedule for the following one.
    ScenarioTick,
}

/// Per-link measurement summary returned alongside the experiment records.
#[derive(Debug, Clone)]
pub struct LinkStats {
    /// Packets transmitted by this link.
    pub departures: u64,
    /// Bytes transmitted by this link.
    pub bytes: u64,
    /// Ticks the link spent transmitting.
    pub busy_ticks: u64,
    /// Length of the observation window in ticks.
    pub span_ticks: u64,
    /// Per-class mean queueing wait at this hop, in ticks.
    pub class_mean_wait: Vec<f64>,
}

impl LinkStats {
    /// Achieved utilization: busy time over the observation window.
    pub fn utilization(&self) -> f64 {
        if self.span_ticks == 0 {
            0.0
        } else {
            self.busy_ticks as f64 / self.span_ticks as f64
        }
    }
}

/// Per-user-packet bookkeeping, indexed by `Packet::tag`.
struct UserMeta {
    exp: u32,
    class: u8,
    remaining_hops: u16,
    acc_wait: u64,
}

struct Link {
    scheduler: Box<dyn Scheduler>,
    /// Current transmission rate in bytes per tick (scenario-adjustable).
    rate: f64,
    in_flight: Option<Packet>,
    /// Start of the in-flight transmission (valid while `in_flight` is
    /// `Some`); transmissions keep the rate they started with.
    tx_start: Time,
    /// Accumulated transmitting time, ticks.
    busy_ticks: u64,
}

struct Net<'p, P: Probe> {
    cfg: StudyBConfig,
    rng: StdRng,
    links: Vec<Link>,
    metas: Vec<UserMeta>,
    probe: &'p mut P,
    /// Scratch for the scheduler decision audit, reused across decisions.
    audit_buf: Vec<(usize, f64)>,
    /// Delivered end-to-end waits: `records[exp][class]` in ticks.
    records: Vec<Vec<Vec<u64>>>,
    /// Per-node cross-source interarrival distribution (nodes can have
    /// different utilization targets).
    cross_iat: Vec<IatDist>,
    /// Per-(node, source) cumulative arrival clock, indexed
    /// `node * cross_sources + src`.
    cross_cum: Vec<f64>,
    /// Per-(node, source) current rate in bits/s (ECN model only).
    cross_rate: Vec<f64>,
    /// Last instant at which cross sources may emit.
    cross_end: Time,
    /// Perturbation timeline state (empty scenarios are all-pass).
    rt: ScenarioRuntime,
    /// Scratch for draining scenario commands, reused across ticks.
    cmd_buf: Vec<Command>,
    seq: u64,
    /// Per-link delivered packet count (cross + user), for sanity checks.
    link_departures: Vec<u64>,
    /// Per-link transmitted bytes.
    link_bytes: Vec<u64>,
    /// Per-link per-class wait accumulators: (sum_ticks, count).
    link_waits: Vec<Vec<(f64, u64)>>,
}

/// Probe identity of `pkt` as seen at hop `link`: user packets carry their
/// `metas` index as the end-to-end span (constant across hops, so one
/// journey is one trace track); cross packets get a high-bit-marked
/// hop-local span (they live for exactly one hop).
fn packet_id(pkt: &Packet, link: usize) -> PacketId {
    PacketId {
        span: if pkt.tag == CROSS_TAG {
            pkt.seq | CROSS_SPAN_BIT
        } else {
            pkt.tag
        },
        seq: pkt.seq,
        class: pkt.class,
        size: pkt.size,
        hop: link as u16,
    }
}

impl<P: Probe> Net<'_, P> {
    fn sample_cross_class(&mut self) -> u8 {
        let u: f64 = self.rng.random();
        let mut cum = 0.0;
        for (c, &f) in self.cfg.cross_class_fractions.iter().enumerate() {
            cum += f;
            if u < cum {
                return c as u8;
            }
        }
        (self.cfg.cross_class_fractions.len() - 1) as u8
    }

    /// Delivers a packet into a link's queue and starts transmission if the
    /// link is idle. A packet reaching a down link is dropped (fault drop)
    /// under [`DownPolicy::Drop`], buffered under [`DownPolicy::Hold`].
    fn arrive(&mut self, link: usize, class: u8, tag: u64, ctx: &mut Context<Ev>) {
        let pkt = Packet {
            seq: self.seq,
            class,
            size: self.cfg.packet_bytes,
            arrival: ctx.now(),
            tag,
        };
        self.seq += 1;
        if P::ENABLED {
            self.probe.on_arrival(pkt.arrival, packet_id(&pkt, link));
        }
        if !self.rt.link_up(link as u16) && self.rt.down_policy(link as u16) == DownPolicy::Drop {
            if P::ENABLED {
                self.probe.on_drop(
                    pkt.arrival,
                    packet_id(&pkt, link),
                    self.links[link].scheduler.total_backlog_bytes(),
                    0,
                );
            }
            return;
        }
        if P::ENABLED {
            self.probe.on_enqueue(pkt.arrival, packet_id(&pkt, link));
        }
        self.links[link].scheduler.enqueue(pkt);
        if self.links[link].in_flight.is_none() {
            self.start_tx(link, ctx);
        }
    }

    fn start_tx(&mut self, link: usize, ctx: &mut Context<Ev>) {
        if !self.rt.link_up(link as u16) {
            // Held packets wait; the LinkUp command restarts service.
            return;
        }
        let now = ctx.now();
        if P::ENABLED && P::WANTS_DECISION_VALUES {
            self.audit_buf.clear();
            self.links[link]
                .scheduler
                .decision_values(now, &mut self.audit_buf);
        }
        let Some(pkt) = self.links[link].scheduler.dequeue(now) else {
            return;
        };
        if P::ENABLED {
            self.probe.on_decision(
                now,
                self.links[link].scheduler.name(),
                packet_id(&pkt, link),
                &self.audit_buf,
            );
        }
        let wait = now.since(pkt.arrival).ticks();
        let acc = &mut self.link_waits[link][pkt.class as usize];
        acc.0 += wait as f64;
        acc.1 += 1;
        if pkt.tag != CROSS_TAG {
            self.metas[pkt.tag as usize].acc_wait += wait;
        }
        let tx = ((pkt.size as f64 / self.links[link].rate).round() as u64).max(1);
        self.links[link].in_flight = Some(pkt);
        self.links[link].tx_start = now;
        ctx.schedule_in(Dur::from_ticks(tx), Ev::TxDone { link: link as u16 });
    }

    /// Applies every scenario command due at `now` to the network.
    fn apply_scenario(&mut self, ctx: &mut Context<Ev>) {
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        self.rt
            .apply_due(ctx.now(), &mut *self.probe, |c| cmds.push(c));
        for c in cmds.drain(..) {
            match c {
                Command::Reconfigure(sdp) => {
                    // Every hop swaps its SDP; fixed-policy schedulers
                    // (FCFS hops) legitimately ignore the change.
                    for l in &mut self.links {
                        match l.scheduler.reconfigure(&sdp) {
                            Ok(()) | Err(ReconfigureError::Unsupported(_)) => {}
                            Err(e) => panic!("scenario set_sdp: {e}"),
                        }
                    }
                }
                Command::SetLinkRate { link, rate } => {
                    let l = &mut self.links[link as usize];
                    l.rate = rate;
                    l.scheduler.set_link_rate(rate);
                }
                Command::LinkDown { .. } => {
                    // Non-preemptive: an in-flight packet completes; the
                    // runtime state blocks the next start_tx.
                }
                Command::LinkUp { link } => {
                    let l = link as usize;
                    if self.links[l].in_flight.is_none() {
                        self.start_tx(l, ctx);
                    }
                }
            }
        }
        self.cmd_buf = cmds;
    }
}

impl<P: Probe> Model for Net<'_, P> {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Context<Ev>) {
        match ev {
            Ev::Cross { node, src } => {
                if ctx.now() <= self.cross_end {
                    let class = self.sample_cross_class();
                    if self.rt.admits(class) {
                        self.arrive(node as usize, class, CROSS_TAG, ctx);
                    }
                    let idx = node as usize * self.cfg.cross_sources + src as usize;
                    let gap = match self.cfg.cross_model.clone() {
                        // Fresh Pareto gap, accumulated in f64 to avoid
                        // rounding drift.
                        CrossModel::Pareto => self.cross_iat[node as usize].sample(&mut self.rng),
                        CrossModel::EcnAdaptive {
                            mark_threshold_bytes,
                            increase_bps,
                            min_rate_fraction,
                        } => {
                            // AIMD on the source's rate, driven by its own
                            // link's queue depth (the ECN signal).
                            let marked = self.links[node as usize].scheduler.total_backlog_bytes()
                                > mark_threshold_bytes;
                            let fair = self.cfg.cross_total_bps_for_link(node as usize)
                                / self.cfg.cross_sources as f64;
                            let rate = &mut self.cross_rate[idx];
                            if marked {
                                *rate = (*rate * 0.5).max(fair * min_rate_fraction);
                            } else {
                                *rate += increase_bps;
                            }
                            let bits = self.cfg.packet_bytes as f64 * 8.0;
                            bits / *rate * crate::TICKS_PER_SEC as f64
                        }
                    };
                    self.cross_cum[idx] += gap;
                    let next = Time::from_ticks(self.cross_cum[idx].round() as u64);
                    if next > ctx.now() && next <= self.cross_end {
                        ctx.schedule(next, Ev::Cross { node, src });
                    } else if next <= self.cross_end {
                        // Gap rounded to the past tick; nudge forward.
                        ctx.schedule_in(Dur::from_ticks(1), Ev::Cross { node, src });
                        self.cross_cum[idx] = ctx.now().ticks() as f64 + 1.0;
                    }
                }
            }
            Ev::UserPacket { exp, class, idx } => {
                let (entry, exit) = self.cfg.user_hops();
                if self.rt.admits(class) {
                    let tag = self.metas.len() as u64;
                    self.metas.push(UserMeta {
                        exp,
                        class,
                        remaining_hops: (exit - entry) as u16,
                        acc_wait: 0,
                    });
                    self.arrive(entry, class, tag, ctx);
                }
                if idx + 1 < self.cfg.flow_len {
                    ctx.schedule_in(
                        Dur::from_ticks(self.cfg.user_packet_gap_ticks()),
                        Ev::UserPacket {
                            exp,
                            class,
                            idx: idx + 1,
                        },
                    );
                }
            }
            Ev::Propagated { link, class, tag } => {
                self.arrive(link as usize, class, tag, ctx);
            }
            Ev::TxDone { link } => {
                let link = link as usize;
                let pkt = self.links[link]
                    .in_flight
                    .take()
                    .expect("TxDone without in-flight packet");
                let start = self.links[link].tx_start;
                self.links[link].busy_ticks += ctx.now().since(start).ticks();
                self.link_departures[link] += 1;
                self.link_bytes[link] += pkt.size as u64;
                if P::ENABLED {
                    // End-of-life when the packet leaves the system: always
                    // for cross traffic (one hop, next node is its sink),
                    // at the exit hop for user packets — so a span closes
                    // exactly once however many hops it crossed.
                    let eol =
                        pkt.tag == CROSS_TAG || self.metas[pkt.tag as usize].remaining_hops == 1;
                    self.probe
                        .on_depart(packet_id(&pkt, link), pkt.arrival, start, ctx.now(), eol);
                }
                if pkt.tag != CROSS_TAG {
                    let meta = &mut self.metas[pkt.tag as usize];
                    meta.remaining_hops -= 1;
                    if meta.remaining_hops == 0 {
                        let (exp, class, wait) = (meta.exp, meta.class, meta.acc_wait);
                        self.records[exp as usize][class as usize].push(wait);
                    } else {
                        let (class, tag) = (pkt.class, pkt.tag);
                        let prop = self.cfg.propagation_ns;
                        if prop == 0 {
                            self.arrive(link + 1, class, tag, ctx);
                        } else {
                            ctx.schedule_in(
                                Dur::from_ticks(prop),
                                Ev::Propagated {
                                    link: (link + 1) as u16,
                                    class,
                                    tag,
                                },
                            );
                        }
                    }
                }
                // Cross traffic exits at the next node's sink: nothing to do.
                self.start_tx(link, ctx);
            }
            Ev::ScenarioTick => {
                self.apply_scenario(ctx);
                if let Some(at) = self.rt.next_at() {
                    ctx.schedule(at, Ev::ScenarioTick);
                }
            }
        }
    }
}

/// Stationary (scenario-free) probed run.
///
/// Each *user* packet's events carry its end-to-end span id (its flow
/// bookkeeping index) across every hop, with `hop` identifying the link and
/// `seq`/times hop-local — so a multi-hop journey reconstructs as one
/// traceable span, closed (`eol`) exactly once at the exit hop. Cross
/// traffic gets single-hop spans with the top bit set. When the probe is
/// enabled the runner also emits an `on_heartbeat` every
/// 65 536 events (virtual time, events handled, event-queue depth).
pub fn run_study_b_probed<P: Probe>(
    cfg: &StudyBConfig,
    probe: &mut P,
) -> (Vec<ExperimentRecord>, Vec<LinkStats>) {
    run_study_b_scenario_probed(cfg, &Scenario::empty(), probe)
}

/// [`run_study_b_probed`] under a perturbation timeline: scenario events
/// (live SDP swaps, link-rate changes, link faults, class joins/leaves)
/// apply to the whole chain at their timestamps, and the probe hears an
/// `on_scenario_event` for each. With a non-empty scenario the
/// packets-delivered invariant is not asserted (faults may legitimately
/// drop or strand user packets).
///
/// # Panics
/// Panics if the scenario references a link `>= k_hops` or a class the SDP
/// does not define, if it contains a load surge (the chain engine's cross
/// traffic is rate-derived from the utilization target, not scalable
/// per-class), or if a scenario SDP's class count differs from the
/// configuration's.
pub fn run_study_b_scenario_probed<P: Probe>(
    cfg: &StudyBConfig,
    scenario: &Scenario,
    probe: &mut P,
) -> (Vec<ExperimentRecord>, Vec<LinkStats>) {
    cfg.validate().expect("invalid Study-B configuration");
    assert!(
        !scenario.has_load_surge(),
        "load_surge is not supported by the multi-hop engine"
    );
    let n_classes = cfg.num_classes();
    let rate = cfg.link_bytes_per_tick();
    let links: Vec<Link> = (0..cfg.k_hops)
        .map(|l| Link {
            scheduler: cfg.scheduler_for_link(l).build(&cfg.sdp, rate),
            rate,
            in_flight: None,
            tx_start: Time::ZERO,
            busy_ticks: 0,
        })
        .collect();
    // C independent Pareto streams per node — the superposition of C
    // heavy-tailed sources is *not* equivalent to one source at C× rate,
    // so each source keeps its own clock. Gaps are per node so links can
    // run at different utilizations.
    let cross_iat: Vec<IatDist> = (0..cfg.k_hops)
        .map(|l| IatDist::paper_pareto(cfg.cross_gap_ticks_for_link(l)).expect("positive gap"))
        .collect();

    let warmup_ticks = (cfg.warmup_secs * TICKS_PER_SEC as f64).round() as u64;
    let last_exp_start = warmup_ticks + (cfg.experiments as u64 - 1) * TICKS_PER_SEC;
    let flow_ticks = cfg.flow_len as u64 * cfg.user_packet_gap_ticks();
    // Cross traffic keeps the network loaded until well after the last user
    // packet enters.
    let cross_end = Time::from_ticks(last_exp_start + flow_ticks + 2 * TICKS_PER_SEC);

    let net = Net {
        cfg: cfg.clone(),
        rng: StdRng::seed_from_u64(cfg.seed),
        links,
        metas: Vec::new(),
        probe,
        audit_buf: Vec::new(),
        records: vec![vec![Vec::new(); n_classes]; cfg.experiments as usize],
        cross_iat,
        cross_cum: vec![0.0; cfg.k_hops * cfg.cross_sources],
        cross_rate: (0..cfg.k_hops * cfg.cross_sources)
            .map(|i| cfg.cross_total_bps_for_link(i / cfg.cross_sources) / cfg.cross_sources as f64)
            .collect(),
        cross_end,
        rt: ScenarioRuntime::new(scenario, cfg.k_hops, n_classes),
        cmd_buf: Vec::new(),
        seq: 0,
        link_departures: vec![0; cfg.k_hops],
        link_bytes: vec![0; cfg.k_hops],
        link_waits: vec![vec![(0.0, 0); n_classes]; cfg.k_hops],
    };

    let mut sim = Simulation::new(net);
    // Kick off every cross source with a staggered phase.
    for node in 0..cfg.k_hops {
        for src in 0..cfg.cross_sources {
            let phase = 1 + (node * cfg.cross_sources + src) as u64 * 131;
            sim.schedule(
                Time::from_ticks(phase),
                Ev::Cross {
                    node: node as u16,
                    src: src as u16,
                },
            );
            sim.model_mut().cross_cum[node * cfg.cross_sources + src] = phase as f64;
        }
    }
    // Launch user experiments: one per second, one flow per class.
    for exp in 0..cfg.experiments {
        let t = Time::from_ticks(warmup_ticks + exp as u64 * TICKS_PER_SEC);
        for class in 0..n_classes as u8 {
            sim.schedule(t, Ev::UserPacket { exp, class, idx: 0 });
        }
    }
    // Arm the perturbation timeline (no-op for empty scenarios).
    if let Some(at) = sim.model_mut().rt.next_at() {
        sim.schedule(at, Ev::ScenarioTick);
    }
    if P::ENABLED {
        // Chunked run so the model's probe (mutably borrowed by the sim)
        // can hear a progress heartbeat between chunks.
        while sim.run_for_events(HEARTBEAT_EVERY) == RunOutcome::EventBudgetSpent {
            let (now, handled, depth) = (sim.now(), sim.events_handled(), sim.queue_depth());
            sim.model_mut().probe.on_heartbeat(now, handled, depth);
        }
    } else {
        sim.run();
    }

    let span = sim.now().ticks();
    let net = sim.into_model();
    let link_stats: Vec<LinkStats> = (0..cfg.k_hops)
        .map(|l| LinkStats {
            departures: net.link_departures[l],
            bytes: net.link_bytes[l],
            busy_ticks: net.links[l].busy_ticks,
            span_ticks: span,
            class_mean_wait: net.link_waits[l]
                .iter()
                .map(|&(sum, n)| if n == 0 { 0.0 } else { sum / n as f64 })
                .collect(),
        })
        .collect();
    let records = net
        .records
        .into_iter()
        .enumerate()
        .map(|(exp, per_class)| {
            // Faults may drop or strand packets; the lossless-delivery
            // invariant only holds for stationary runs.
            if scenario.is_empty() {
                for (c, waits) in per_class.iter().enumerate() {
                    assert_eq!(
                        waits.len(),
                        cfg.flow_len as usize,
                        "experiment {exp} class {c} delivered {} of {} packets",
                        waits.len(),
                        cfg.flow_len
                    );
                }
            }
            ExperimentRecord {
                experiment: exp as u32,
                per_class_waits: per_class,
            }
        })
        .collect();
    (records, link_stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(k: usize, rho: f64) -> StudyBConfig {
        let mut c = StudyBConfig::paper(k, rho, 10, 200.0);
        c.experiments = 5;
        c.warmup_secs = 2.0;
        c.seed = 42;
        c
    }

    #[test]
    fn all_user_packets_are_delivered() {
        let cfg = tiny(2, 0.85);
        let recs = crate::Session::study_b(&cfg).run().0;
        assert_eq!(recs.len(), 5);
        for r in &recs {
            assert_eq!(r.per_class_waits.len(), 4);
            for waits in &r.per_class_waits {
                assert_eq!(waits.len(), 10);
            }
        }
    }

    #[test]
    fn higher_classes_see_lower_mean_e2e_delay() {
        let cfg = tiny(3, 0.9);
        let recs = crate::Session::study_b(&cfg).run().0;
        let mut mean = [0.0f64; 4];
        let mut n = 0.0;
        for r in &recs {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += r.per_class_waits[c].iter().sum::<u64>() as f64
                    / r.per_class_waits[c].len() as f64;
            }
            n += 1.0;
        }
        mean.iter_mut().for_each(|m| *m /= n);
        for c in 0..3 {
            assert!(
                mean[c] > mean[c + 1],
                "class {c} mean {} <= class {} mean {}",
                mean[c],
                c + 1,
                mean[c + 1]
            );
        }
    }

    /// Collects departure events per span for span-linking assertions.
    #[derive(Default)]
    struct SpanLog {
        /// span → (hops seen, eol count, last finish ticks)
        departs: std::collections::HashMap<u64, (Vec<u16>, u32, u64)>,
        decisions: u64,
        heartbeats: u64,
    }

    impl Probe for SpanLog {
        fn on_decision(
            &mut self,
            _at: Time,
            _scheduler: &'static str,
            winner: PacketId,
            values: &[(usize, f64)],
        ) {
            // The audit record must cover the winning class.
            assert!(
                values.iter().any(|&(c, _)| c == winner.class as usize),
                "decision record misses the winner"
            );
            self.decisions += 1;
        }
        fn on_depart(&mut self, id: PacketId, _a: Time, start: Time, finish: Time, eol: bool) {
            assert!(start <= finish);
            let e = self.departs.entry(id.span).or_default();
            assert!(
                finish.ticks() >= e.2,
                "span {} went backwards across hops",
                id.span
            );
            e.0.push(id.hop);
            e.1 += u32::from(eol);
            e.2 = finish.ticks();
        }
        fn on_heartbeat(&mut self, _at: Time, _events: u64, _depth: usize) {
            self.heartbeats += 1;
        }
    }

    #[test]
    fn probed_run_links_user_spans_across_hops() {
        let cfg = tiny(3, 0.85);
        let mut log = SpanLog::default();
        let (recs, _) = run_study_b_probed(&cfg, &mut log);
        assert_eq!(recs.len(), 5);
        let n_user = 5 * 4 * 10; // experiments × classes × flow_len
        let user: Vec<_> = log
            .departs
            .iter()
            .filter(|(span, _)| **span & CROSS_SPAN_BIT == 0)
            .collect();
        assert_eq!(user.len(), n_user);
        for (span, (hops, eols, _)) in user {
            // Full-path flows cross every hop in order, closing once.
            assert_eq!(hops, &vec![0, 1, 2], "span {span} hop sequence {hops:?}");
            assert_eq!(*eols, 1, "span {span} closed {eols} times");
        }
        // Cross traffic: single hop, closed immediately.
        for (span, (hops, eols, _)) in &log.departs {
            if span & CROSS_SPAN_BIT != 0 {
                assert_eq!(hops.len(), 1);
                assert_eq!(*eols, 1);
            }
        }
        assert!(log.decisions > 0);
        assert!(log.heartbeats > 0, "long run must emit heartbeats");
    }

    #[test]
    fn probed_run_equals_unprobed_run() {
        let cfg = tiny(2, 0.9);
        let plain = crate::Session::study_b(&cfg).run().0;
        let mut counter = telemetry::CountingProbe::new(4);
        let (probed, _) = run_study_b_probed(&cfg, &mut counter);
        for (x, y) in plain.iter().zip(&probed) {
            assert_eq!(x.per_class_waits, y.per_class_waits);
        }
        let report = counter.report();
        // Conservation across the whole network: everything enqueued at any
        // hop eventually departed that hop (lossless links, drained run).
        for c in &report.classes {
            assert_eq!(c.arrivals, c.enqueues, "lossless links admit everything");
            assert_eq!(c.depth, 0, "packets left in flight");
            assert_eq!(c.drops, 0);
            assert!(c.departures > 0);
        }
        assert!(report.heap_high_water > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = tiny(2, 0.85);
        let a = crate::Session::study_b(&cfg).run().0;
        let b = crate::Session::study_b(&cfg).run().0;
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.per_class_waits, y.per_class_waits);
        }
    }

    #[test]
    fn achieved_utilization_matches_target() {
        let mut cfg = tiny(3, 0.9);
        cfg.experiments = 8;
        let (_, links) = crate::Session::study_b(&cfg).run();
        assert_eq!(links.len(), 3);
        for (l, stats) in links.iter().enumerate() {
            let u = stats.utilization();
            // The run includes a drain tail after sources stop, so the
            // achieved utilization sits slightly below the target.
            assert!((u - 0.9).abs() < 0.12, "link {l}: achieved utilization {u}");
            assert!(stats.departures > 1000);
            assert_eq!(stats.bytes, stats.departures * 500);
        }
    }

    #[test]
    fn per_hop_class_waits_are_ordered() {
        let cfg = tiny(2, 0.95);
        let (_, links) = crate::Session::study_b(&cfg).run();
        for stats in &links {
            for w in stats.class_mean_wait.windows(2) {
                assert!(
                    w[0] > w[1],
                    "per-hop waits not ordered: {:?}",
                    stats.class_mean_wait
                );
            }
        }
    }

    #[test]
    fn partial_user_path_reduces_delay() {
        let mut full = tiny(4, 0.9);
        full.experiments = 6;
        let mut partial = full.clone();
        partial.user_path = Some((1, 3)); // 2 of the 4 hops
        let total = |recs: &[ExperimentRecord]| -> f64 {
            recs.iter()
                .flat_map(|r| r.per_class_waits.iter().flatten())
                .map(|&w| w as f64)
                .sum()
        };
        let t_full = total(&crate::Session::study_b(&full).run().0);
        let t_partial = total(&crate::Session::study_b(&partial).run().0);
        assert!(
            t_partial < 0.8 * t_full,
            "2-hop path total {t_partial} vs 4-hop {t_full}"
        );
    }

    #[test]
    fn fcfs_hop_dilutes_differentiation() {
        use sched::SchedulerKind;
        // All-WTP vs WTP with one FCFS hop: the mixed path still orders the
        // classes but with a smaller spread.
        let mut wtp = tiny(3, 0.95);
        wtp.experiments = 8;
        let mut mixed = wtp.clone();
        mixed.link_schedulers = Some(vec![
            SchedulerKind::Wtp,
            SchedulerKind::Fcfs,
            SchedulerKind::Wtp,
        ]);
        let spread = |recs: &[ExperimentRecord]| -> f64 {
            let mean = |c: usize| -> f64 {
                let (mut s, mut n) = (0.0, 0.0);
                for r in recs {
                    s += r.per_class_waits[c].iter().sum::<u64>() as f64;
                    n += r.per_class_waits[c].len() as f64;
                }
                s / n
            };
            mean(0) / mean(3)
        };
        let s_wtp = spread(&crate::Session::study_b(&wtp).run().0);
        let s_mixed = spread(&crate::Session::study_b(&mixed).run().0);
        assert!(s_wtp > s_mixed, "WTP spread {s_wtp} vs mixed {s_mixed}");
        assert!(
            s_mixed > 1.2,
            "mixed path lost all differentiation: {s_mixed}"
        );
    }

    #[test]
    fn rank_core_twin_is_exact_through_the_mesh() {
        use sched::{RankKind, SchedulerKind};
        // The rank-core WTP twin is bit-identical to bespoke WTP per
        // decision (see `conformance::rank_diff`), so swapping every hop's
        // scheduler must reproduce the exact same multi-hop waits.
        let mut wtp = tiny(3, 0.95);
        wtp.experiments = 4;
        let mut pifo = wtp.clone();
        pifo.link_schedulers = Some(vec![SchedulerKind::Pifo(RankKind::Wtp); 3]);
        let waits = |recs: &[ExperimentRecord]| -> Vec<Vec<Vec<u64>>> {
            recs.iter().map(|r| r.per_class_waits.clone()).collect()
        };
        let w_wtp = waits(&crate::Session::study_b(&wtp).run().0);
        let w_pifo = waits(&crate::Session::study_b(&pifo).run().0);
        assert_eq!(w_wtp, w_pifo, "rank-core twin diverged through the mesh");
    }

    #[test]
    fn lstf_hop_schedules_through_the_mesh() {
        use sched::{RankKind, SchedulerKind};
        // LSTF has no bespoke twin; this exercises the new kind through
        // the full multi-hop engine and checks it still delivers and
        // orders the classes.
        let mut cfg = tiny(2, 0.95);
        cfg.experiments = 6;
        cfg.link_schedulers = Some(vec![SchedulerKind::Pifo(RankKind::Lstf); 2]);
        let recs = crate::Session::study_b(&cfg).run().0;
        assert_eq!(recs.len(), 6);
        let mut mean = [0.0f64; 4];
        for r in &recs {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += r.per_class_waits[c].iter().sum::<u64>() as f64;
            }
        }
        // Smaller slack budgets for higher classes ⇒ lower waits.
        for c in 0..3 {
            assert!(mean[c] > mean[c + 1], "LSTF broke class ordering: {mean:?}");
        }
    }

    #[test]
    fn ecn_sources_self_regulate_queues() {
        use crate::config::CrossModel;
        // Open-loop Pareto at ρ=0.98 builds deep queues; the same target
        // with ECN-reacting sources keeps queues near the mark threshold.
        let mut cfg = tiny(2, 0.98);
        cfg.experiments = 6;
        cfg.cross_model = CrossModel::default_ecn();
        let (records, links) = crate::Session::study_b(&cfg).run();
        assert_eq!(records.len(), 6);
        // Utilization remains high (the sources probe upward)...
        for stats in &links {
            assert!(
                stats.utilization() > 0.5,
                "utilization {}",
                stats.utilization()
            );
        }
        // ...and per-hop waits stay modest: AIMD keeps queues around the
        // 64 kB mark point (~20 ms at 25 Mbps) instead of growing without
        // bound over the run.
        for stats in &links {
            for &w in &stats.class_mean_wait {
                assert!(
                    w < 60.0e6,
                    "per-hop mean wait {w} ns too large for ECN regime"
                );
            }
        }
    }

    #[test]
    fn ecn_network_still_differentiates() {
        use crate::config::CrossModel;
        let mut cfg = tiny(2, 0.95);
        cfg.cross_model = CrossModel::default_ecn();
        let recs = crate::Session::study_b(&cfg).run().0;
        let mut mean = [0.0f64; 4];
        for r in &recs {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += r.per_class_waits[c].iter().sum::<u64>() as f64;
            }
        }
        for c in 0..3 {
            assert!(mean[c] > mean[c + 1], "ECN regime broke class ordering");
        }
    }

    #[test]
    fn bottleneck_link_dominates_end_to_end_delay() {
        let mut cfg = tiny(3, 0.9);
        cfg.utilization_per_link = Some(vec![0.4, 0.95, 0.4]);
        let (recs, links) = crate::Session::study_b(&cfg).run();
        assert!(!recs.is_empty());
        // The hot middle link carries most of the queueing.
        let w = |l: usize| links[l].class_mean_wait[0];
        assert!(w(1) > 5.0 * w(0), "bottleneck {} vs edge {}", w(1), w(0));
        assert!(w(1) > 5.0 * w(2));
        // Achieved utilizations track the per-link targets.
        assert!((links[0].utilization() - 0.4).abs() < 0.1);
        assert!((links[1].utilization() - 0.95).abs() < 0.1);
    }

    #[test]
    fn propagation_delay_leaves_queueing_metric_comparable() {
        // Queueing delays exclude propagation; adding 1 ms per hop shifts
        // when packets arrive downstream but the queueing-delay spread
        // between classes survives intact.
        let base = tiny(3, 0.9);
        let mut prop = base.clone();
        prop.propagation_ns = 1_000_000;
        let mean_of = |recs: &[ExperimentRecord], c: usize| -> f64 {
            let (mut s, mut n) = (0.0, 0.0);
            for r in recs {
                s += r.per_class_waits[c].iter().sum::<u64>() as f64;
                n += r.per_class_waits[c].len() as f64;
            }
            s / n
        };
        let a = crate::Session::study_b(&base).run().0;
        let b = crate::Session::study_b(&prop).run().0;
        let spread_a = mean_of(&a, 0) / mean_of(&a, 3);
        let spread_b = mean_of(&b, 0) / mean_of(&b, 3);
        assert!(spread_a > 1.5 && spread_b > 1.5);
        assert!(
            (spread_a - spread_b).abs() / spread_a < 0.5,
            "spreads diverged: {spread_a} vs {spread_b}"
        );
    }

    #[test]
    fn scenario_sdp_step_flattens_differentiation() {
        use scenario::Scenario;
        use sched::Sdp;
        // Stepping the SDP to all-equal mid-run must pull the class means
        // closer together than the stationary paper SDP keeps them.
        let mut cfg = tiny(2, 0.9);
        cfg.experiments = 6;
        let spread = |recs: &[ExperimentRecord]| -> f64 {
            let mean = |c: usize| -> f64 {
                let (mut s, mut n) = (0.0, 0.0);
                for r in recs {
                    s += r.per_class_waits[c].iter().sum::<u64>() as f64;
                    n += r.per_class_waits[c].len() as f64;
                }
                s / (n.max(1.0))
            };
            mean(0) / mean(3).max(1.0)
        };
        let stationary = crate::Session::study_b(&cfg).run().0;
        let sc = Scenario::builder()
            .set_sdp(Time::ZERO, Sdp::new(&[1.0, 1.0, 1.0, 1.0]).unwrap())
            .build()
            .unwrap();
        let stepped = crate::Session::study_b(&cfg).scenario(sc).run().0;
        assert!(
            spread(&stationary) > 1.5 * spread(&stepped),
            "stationary spread {} vs flattened {}",
            spread(&stationary),
            spread(&stepped)
        );
    }

    #[test]
    fn scenario_link_flap_hold_delivers_everything() {
        use scenario::{DownPolicy, Scenario};
        // Holding packets across a mid-run outage delays but never loses
        // them: every user packet is still delivered.
        let cfg = tiny(2, 0.85);
        let down = Time::from_ticks(3 * TICKS_PER_SEC);
        let up = Time::from_ticks(3 * TICKS_PER_SEC + TICKS_PER_SEC / 2);
        let sc = Scenario::builder()
            .link_down(down, 1, DownPolicy::Hold)
            .link_up(up, 1)
            .build()
            .unwrap();
        let recs = crate::Session::study_b(&cfg).scenario(sc).run().0;
        let delivered: usize = recs
            .iter()
            .flat_map(|r| r.per_class_waits.iter())
            .map(|w| w.len())
            .sum();
        assert_eq!(delivered, 5 * 4 * 10, "Hold outage lost packets");
    }

    #[test]
    fn scenario_link_flap_drop_loses_packets_and_is_probed() {
        use scenario::{DownPolicy, Scenario};
        let cfg = tiny(2, 0.85);
        let down = Time::from_ticks(3 * TICKS_PER_SEC);
        let up = Time::from_ticks(5 * TICKS_PER_SEC);
        let sc = Scenario::builder()
            .link_down(down, 1, DownPolicy::Drop)
            .link_up(up, 1)
            .build()
            .unwrap();
        let mut counter = telemetry::CountingProbe::new(4);
        let (recs, _) = run_study_b_scenario_probed(&cfg, &sc, &mut counter);
        let delivered: usize = recs
            .iter()
            .flat_map(|r| r.per_class_waits.iter())
            .map(|w| w.len())
            .sum();
        assert!(
            delivered < 5 * 4 * 10,
            "a 2 s Drop outage across the experiment window must lose packets"
        );
        let report = counter.report();
        let drops: u64 = report.classes.iter().map(|c| c.drops).sum();
        assert!(drops > 0, "fault drops must be probed");
        assert_eq!(report.scenario_events, 2, "both flap edges recorded");
    }

    #[test]
    fn scenario_link_rate_change_shifts_utilization() {
        use scenario::Scenario;
        // Halving link 0's rate at t=0 doubles its busy time per byte.
        let cfg = tiny(1, 0.7);
        let rate = cfg.link_bytes_per_tick();
        let sc = Scenario::builder()
            .set_link_rate(Time::ZERO, 0, rate / 2.0)
            .build()
            .unwrap();
        let (_, base) = crate::Session::study_b(&cfg).run();
        let (_, slowed) = crate::Session::study_b(&cfg).scenario(sc).run();
        let per_byte = |l: &LinkStats| l.busy_ticks as f64 / l.bytes as f64;
        assert!(
            (per_byte(&slowed[0]) / per_byte(&base[0]) - 2.0).abs() < 0.05,
            "slowed {} vs base {}",
            per_byte(&slowed[0]),
            per_byte(&base[0])
        );
    }

    #[test]
    fn empty_scenario_run_is_identical_to_stationary() {
        use scenario::Scenario;
        let cfg = tiny(2, 0.9);
        let plain = crate::Session::study_b(&cfg).run().0;
        let via_scenario = crate::Session::study_b(&cfg)
            .scenario(Scenario::empty())
            .run()
            .0;
        for (x, y) in plain.iter().zip(&via_scenario) {
            assert_eq!(x.per_class_waits, y.per_class_waits);
        }
    }

    #[test]
    #[should_panic(expected = "load_surge is not supported")]
    fn load_surge_is_rejected_by_the_chain_engine() {
        use scenario::Scenario;
        let cfg = tiny(1, 0.8);
        let sc = Scenario::builder()
            .load_surge(Time::from_ticks(1), 0, 0.5)
            .build()
            .unwrap();
        let _ = crate::Session::study_b(&cfg).scenario(sc).run();
    }

    #[test]
    fn delays_scale_with_utilization() {
        let lo = crate::Session::study_b(&tiny(2, 0.7)).run().0;
        let hi = crate::Session::study_b(&tiny(2, 0.95)).run().0;
        let total = |recs: &[ExperimentRecord]| -> f64 {
            recs.iter()
                .flat_map(|r| r.per_class_waits.iter().flatten())
                .map(|&w| w as f64)
                .sum()
        };
        assert!(total(&hi) > 2.0 * total(&lo));
    }
}
