//! Link-level decomposition: the scalable approximation of a mesh.
//!
//! The exact [`mesh`](crate::mesh) event loop couples every link through
//! shared packet journeys, so its cost grows with the whole fabric. This
//! module instead simulates **each link independently** — the Parsimon
//! shape — and composes per-flow end-to-end delay from the per-hop
//! results:
//!
//! 1. Every flow's emission instants are precomputed exactly as the mesh
//!    engine would generate them (same per-flow RNG streams, same
//!    rounding), so the two engines agree on the offered load.
//! 2. A packet's arrival at hop *h* is its emission time shifted by the
//!    sum of upstream *transmission + propagation* times — upstream
//!    **queueing is ignored**. This is the decomposition approximation:
//!    each link sees its traffic as if upstream queues were empty.
//! 3. Each link then runs the single-server replay loop
//!    ([`qsim::run_trace_on`]) with its own scheduler, producing a
//!    [`LinkReport`] of per-class and per-flow waits.
//! 4. [`DecomposeInput::compose`] folds the reports **in link order** into
//!    a [`DecomposedOutcome`]: per-flow mean end-to-end waits (the
//!    composition law `E[e2e] = Σ_hops E[wait]` is exact given per-hop
//!    waits), per-class `stats::Histogram`s (lossless, associative
//!    merges), and per-class `stats::Summary`s over flow means.
//!
//! Because every [`LinkReport`] is a pure function of `(config, link)` and
//! composition always folds in ascending link order, the outcome is
//! **byte-identical** no matter how the per-link jobs are scheduled —
//! serial, work-stealing threads, or process shards (the
//! `experiments::mesh` driver and the orchestrator farm rely on this).
//!
//! The approximation error (upstream queueing shifts arrival phases) is
//! quantified by `crates/conformance` against the exact engine on small
//! topologies; the tolerance rationale lives in ARCHITECTURE.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::Time;
use stats::{Histogram, Summary};
use traffic::{IatDist, TraceEntry};

use crate::mesh::{FlowModel, MeshConfig};

/// Per-link simulation result: everything needed to compose end-to-end
/// delays, in mergeable form (plain sums and lossless histograms).
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// The link this report describes.
    pub link: usize,
    /// Packets transmitted.
    pub departures: u64,
    /// Per-class packet counts at this hop.
    pub class_packets: Vec<u64>,
    /// Per-class total queueing wait (ticks) at this hop.
    pub class_wait_sum: Vec<u64>,
    /// Per-class log-binned wait distribution at this hop.
    pub class_hist: Vec<Histogram>,
    /// `(flow, wait_sum, packets)` for every flow crossing this link,
    /// ascending by flow index.
    pub flow_wait: Vec<(u32, u64, u64)>,
}

/// The composed decomposition result.
#[derive(Debug, Clone)]
pub struct DecomposedOutcome {
    /// Mean end-to-end queueing wait per flow (ticks): the sum over the
    /// flow's hops of its per-hop mean waits.
    pub per_flow_mean_wait: Vec<f64>,
    /// Packets each flow pushed through every hop of its route.
    pub per_flow_packets: Vec<u64>,
    /// Per-class `(packet, hop)` sample counts.
    pub class_hop_packets: Vec<u64>,
    /// Per-class total per-hop wait (ticks).
    pub class_hop_wait_sum: Vec<u64>,
    /// Per-class per-hop wait distribution (merged across links in link
    /// order — lossless and order-independent).
    pub class_hop_hist: Vec<Histogram>,
    /// Per-class distribution of *flow mean* end-to-end waits (pushed in
    /// flow order).
    pub class_flow_e2e: Vec<Summary>,
    /// Packets transmitted per link.
    pub link_departures: Vec<u64>,
}

impl DecomposedOutcome {
    /// Mean per-hop wait of class `c` (ticks).
    pub fn class_mean_hop_wait(&self, c: usize) -> f64 {
        if self.class_hop_packets[c] == 0 {
            0.0
        } else {
            self.class_hop_wait_sum[c] as f64 / self.class_hop_packets[c] as f64
        }
    }

    /// Mean end-to-end wait of class `c`, averaged over its flows.
    pub fn class_mean_e2e(&self, c: usize) -> f64 {
        self.class_flow_e2e[c].mean()
    }
}

/// A mesh prepared for decomposition: per-flow emission schedules and
/// per-link flow assignments, precomputed once so each
/// [`link_report`](DecomposeInput::link_report) call is an independent,
/// pure job.
#[derive(Debug, Clone)]
pub struct DecomposeInput {
    cfg: MeshConfig,
    /// `emissions[f]` = flow f's packet emission instants, ascending.
    emissions: Vec<Vec<u64>>,
    /// `assignments[l]` = `(flow, arrival_offset)` for every flow whose
    /// route crosses link `l`, ascending by flow.
    assignments: Vec<Vec<(u32, u64)>>,
}

/// Flow `i`'s emission instants, generated exactly as the mesh engine
/// schedules its `Emit` events (same seed derivation, same f64 clock and
/// rounding), so both engines offer identical load.
fn flow_emissions(cfg: &MeshConfig, i: usize, f: &crate::mesh::MeshFlow) -> Vec<u64> {
    match f.model {
        FlowModel::Periodic { gap_ticks, count } => (0..count as u64)
            .map(|n| f.start_ticks + n * gap_ticks)
            .collect(),
        FlowModel::Pareto {
            mean_gap_ticks,
            until_ticks,
        } => {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let dist = IatDist::paper_pareto(mean_gap_ticks).expect("validated gap");
            let mut clock = f.start_ticks as f64;
            let mut prev = f.start_ticks;
            // The first packet goes out at the start instant unconditionally,
            // exactly like the engine's initial Emit event.
            let mut out = vec![f.start_ticks];
            loop {
                clock += dist.sample(&mut rng);
                let next = clock.round().max(prev as f64 + 1.0);
                if next as u64 > until_ticks {
                    break;
                }
                prev = next as u64;
                out.push(prev);
            }
            out
        }
    }
}

impl DecomposeInput {
    /// Validates the mesh and precomputes emissions and link assignments.
    /// The arrival offset of flow f at hop h is
    /// `Σ_{j<h} (tx_ticks(link_j) + propagation_ns(link_j))`.
    pub fn new(cfg: &MeshConfig) -> Result<DecomposeInput, String> {
        cfg.validate()?;
        let emissions: Vec<Vec<u64>> = cfg
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| flow_emissions(cfg, i, f))
            .collect();
        let mut assignments: Vec<Vec<(u32, u64)>> = vec![Vec::new(); cfg.links.len()];
        for (i, f) in cfg.flows.iter().enumerate() {
            let mut offset = 0u64;
            for &l in &f.route {
                assignments[l].push((i as u32, offset));
                let spec = &cfg.links[l];
                let tx = ((f.packet_bytes as f64 / spec.bytes_per_tick()).round() as u64).max(1);
                offset += tx + spec.propagation_ns;
            }
        }
        Ok(DecomposeInput {
            cfg: cfg.clone(),
            emissions,
            assignments,
        })
    }

    /// The prepared mesh.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Number of links (= number of independent jobs).
    pub fn num_links(&self) -> usize {
        self.cfg.links.len()
    }

    /// Simulates link `link` in isolation: merges the shifted emission
    /// schedules of every flow crossing it (ties broken by flow index,
    /// then emission index — fully deterministic), replays them through
    /// the link's scheduler, and accumulates waits.
    ///
    /// A pure function of `(self, link)`: safe to run in any order, on
    /// any thread or process.
    pub fn link_report(&self, link: usize) -> LinkReport {
        let spec = &self.cfg.links[link];
        let nc = self.cfg.sdp.num_classes();
        // (arrival, flow): sorting pairs gives the (time, flow) tiebreak;
        // per-flow emission order is preserved because each flow's shifted
        // schedule is already ascending.
        let mut arrivals: Vec<(u64, u32)> = Vec::new();
        for &(f, offset) in &self.assignments[link] {
            arrivals.extend(self.emissions[f as usize].iter().map(|&e| (e + offset, f)));
        }
        arrivals.sort_unstable();
        let mut scheduler = spec.scheduler.build(&self.cfg.sdp, spec.bytes_per_tick());
        let mut report = LinkReport {
            link,
            departures: 0,
            class_packets: vec![0; nc],
            class_wait_sum: vec![0; nc],
            class_hist: vec![Histogram::new(); nc],
            flow_wait: Vec::new(),
        };
        let mut flow_acc: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        let flows = &self.cfg.flows;
        qsim::run_trace_on(
            scheduler.as_mut(),
            arrivals.iter().map(|&(at, f)| TraceEntry {
                at: Time::from_ticks(at),
                class: flows[f as usize].class,
                size: flows[f as usize].packet_bytes,
            }),
            spec.bytes_per_tick(),
            |d| {
                let (_, f) = arrivals[d.packet.seq as usize];
                let wait = d.wait().ticks();
                let c = d.packet.class as usize;
                report.departures += 1;
                report.class_packets[c] += 1;
                report.class_wait_sum[c] += wait;
                report.class_hist[c].record_u64(wait);
                let acc = flow_acc.entry(f).or_insert((0, 0));
                acc.0 += wait;
                acc.1 += 1;
            },
        );
        report.flow_wait = flow_acc
            .into_iter()
            .map(|(f, (sum, n))| (f, sum, n))
            .collect();
        report.flow_wait.sort_unstable();
        report
    }

    /// Folds one report per link (ascending, complete) into the composed
    /// outcome. Always folds in link order regardless of how the reports
    /// were produced, so results are byte-identical across schedules.
    ///
    /// # Panics
    /// Panics if `reports` is not exactly one report per link, in order.
    pub fn compose(&self, reports: &[LinkReport]) -> DecomposedOutcome {
        assert_eq!(
            reports.len(),
            self.cfg.links.len(),
            "compose needs exactly one report per link"
        );
        let nc = self.cfg.sdp.num_classes();
        let nf = self.cfg.flows.len();
        let mut out = DecomposedOutcome {
            per_flow_mean_wait: vec![0.0; nf],
            per_flow_packets: vec![0; nf],
            class_hop_packets: vec![0; nc],
            class_hop_wait_sum: vec![0; nc],
            class_hop_hist: vec![Histogram::new(); nc],
            class_flow_e2e: vec![Summary::new(); nc],
            link_departures: vec![0; self.cfg.links.len()],
        };
        // Per-flow accumulation across hops: Σ wait_sum and the per-hop
        // packet count (identical at every hop of a flow's route).
        let mut flow_wait_sum = vec![0u64; nf];
        for (l, r) in reports.iter().enumerate() {
            assert_eq!(r.link, l, "reports must be in link order");
            out.link_departures[l] = r.departures;
            for c in 0..nc {
                out.class_hop_packets[c] += r.class_packets[c];
                out.class_hop_wait_sum[c] += r.class_wait_sum[c];
                out.class_hop_hist[c].merge(&r.class_hist[c]);
            }
            for &(f, sum, n) in &r.flow_wait {
                flow_wait_sum[f as usize] += sum;
                out.per_flow_packets[f as usize] = n;
            }
        }
        for (f, &wait_sum) in flow_wait_sum.iter().enumerate() {
            let n = out.per_flow_packets[f];
            if n > 0 {
                out.per_flow_mean_wait[f] = wait_sum as f64 / n as f64;
            }
            out.class_flow_e2e[self.cfg.flows[f].class as usize].push(out.per_flow_mean_wait[f]);
        }
        out
    }

    /// Serial convenience: every link in order, then compose. The parallel
    /// driver lives in `experiments::mesh::run_decomposed` (work-stealing
    /// over links) and produces byte-identical results.
    pub fn run(&self) -> DecomposedOutcome {
        let reports: Vec<LinkReport> = (0..self.num_links()).map(|l| self.link_report(l)).collect();
        self.compose(&reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::mesh::MeshFlow;
    use sched::{SchedulerKind, Sdp};

    const MBPS25: f64 = 25_000_000.0;

    fn periodic(route: Vec<usize>, class: u8, gap: u64, count: u32, start: u64) -> MeshFlow {
        MeshFlow {
            route,
            class,
            packet_bytes: 500,
            model: FlowModel::Periodic {
                gap_ticks: gap,
                count,
            },
            start_ticks: start,
        }
    }

    #[test]
    fn single_link_decomposition_is_exact() {
        // With one hop there is no upstream queueing to ignore, so the
        // decomposed waits must equal the exact mesh engine's. Starts are
        // staggered by a tick: at *simultaneous* arrivals on an idle link
        // the two engines order enqueue-vs-decision differently (that tie
        // gap is exactly what the conformance tolerance covers).
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![LinkSpec::new(MBPS25, SchedulerKind::Wtp)],
            flows: vec![
                periodic(vec![0], 0, 200_000, 40, 0),
                periodic(vec![0], 3, 200_000, 40, 1),
            ],
            seed: 3,
        };
        let exact = crate::Session::mesh(&cfg).run();
        let dec = DecomposeInput::new(&cfg).unwrap().run();
        for f in 0..2 {
            let exact_mean = exact.mean_wait(f);
            assert_eq!(
                exact.per_flow_waits[f].len() as u64,
                dec.per_flow_packets[f]
            );
            assert!(
                (exact_mean - dec.per_flow_mean_wait[f]).abs() < 1e-9,
                "flow {f}: exact {exact_mean} vs decomposed {}",
                dec.per_flow_mean_wait[f]
            );
        }
        assert_eq!(dec.link_departures, exact.link_departures);
    }

    #[test]
    fn pareto_emissions_match_the_mesh_engine_load() {
        // Same seed, same flow index => both engines must generate the
        // same packet count (departure totals agree on an uncongested
        // single link where order cannot differ).
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![LinkSpec::new(MBPS25, SchedulerKind::Fcfs)],
            flows: vec![MeshFlow {
                route: vec![0],
                class: 0,
                packet_bytes: 500,
                model: FlowModel::Pareto {
                    mean_gap_ticks: 1_000_000.0,
                    until_ticks: 100_000_000,
                },
                start_ticks: 1,
            }],
            seed: 99,
        };
        let exact = crate::Session::mesh(&cfg).run();
        let dec = DecomposeInput::new(&cfg).unwrap().run();
        assert_eq!(dec.link_departures, exact.link_departures);
        assert!(
            dec.link_departures[0] > 10,
            "horizon should fit many packets"
        );
    }

    #[test]
    fn composition_sums_per_hop_means() {
        // Two hops, no contention: all waits zero; three hops counted per
        // class; per-flow packet counts survive composition.
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![
                LinkSpec::new(MBPS25, SchedulerKind::Wtp),
                LinkSpec::new(MBPS25, SchedulerKind::Wtp),
            ],
            flows: vec![periodic(vec![0, 1], 2, 1_000_000, 5, 0)],
            seed: 0,
        };
        let dec = DecomposeInput::new(&cfg).unwrap().run();
        assert_eq!(dec.per_flow_packets[0], 5);
        assert_eq!(dec.per_flow_mean_wait[0], 0.0);
        assert_eq!(dec.class_hop_packets[2], 10, "5 packets x 2 hops");
        assert_eq!(dec.class_hop_hist[2].count(), 10);
        assert_eq!(dec.class_flow_e2e[2].count(), 1);
    }

    #[test]
    fn report_order_does_not_change_the_composition() {
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![
                LinkSpec::new(MBPS25, SchedulerKind::Wtp),
                LinkSpec::new(MBPS25, SchedulerKind::Hpd),
            ],
            flows: vec![
                periodic(vec![0, 1], 0, 150_000, 30, 0),
                periodic(vec![1], 3, 170_000, 30, 7),
            ],
            seed: 5,
        };
        let input = DecomposeInput::new(&cfg).unwrap();
        // Compute reports in reverse order; compose must not care.
        let mut reports: Vec<LinkReport> = (0..input.num_links())
            .rev()
            .map(|l| input.link_report(l))
            .collect();
        reports.reverse();
        let a = input.compose(&reports);
        let b = input.run();
        assert_eq!(
            a.per_flow_mean_wait
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            b.per_flow_mean_wait
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(a.class_hop_wait_sum, b.class_hop_wait_sum);
    }
}
