//! Datacenter topology generators and deterministic ECMP routing.
//!
//! A [`Topology`] is a set of nodes and unidirectional [`TopoLink`]s, each
//! link carrying the shared [`LinkSpec`]. The generators build the two
//! classic datacenter fabrics:
//!
//! * [`Topology::fat_tree`] — the k-ary fat-tree: k pods of k/2 edge and
//!   k/2 aggregation switches, (k/2)² cores, k³/4 hosts, 3k³/2
//!   unidirectional links (k = 4 → 96 links, k = 10 → 1500 links);
//! * [`Topology::leaf_spine`] — the two-tier Clos: every leaf connects to
//!   every spine, hosts hang off leaves.
//!
//! Routing is shortest-path ECMP with a *deterministic hash*: among the
//! equal-cost next hops at node `n` (ordered by ascending link index), a
//! flow keyed `(seed, flow_id)` picks
//!
//! ```text
//! candidates[splitmix64(splitmix64(seed ^ flow_id) ^ n) % candidates.len()]
//! ```
//!
//! so the route depends only on `(topology, seed, flow_id)` — never on
//! iteration order, thread count, or a stateful RNG. This is the
//! route-hash contract the decomposition engine and the conformance suite
//! rely on (see ARCHITECTURE.md).
//!
//! [`TopologyConfig`] bundles a topology with host-to-host [`HostFlow`]s
//! and lowers to a [`MeshConfig`] ([`TopologyConfig::to_mesh`]), which
//! [`Session::topology`](crate::Session::topology) runs exactly or the
//! [`decompose`](crate::decompose) engine approximates link-by-link.

use sched::Sdp;

use crate::link::LinkSpec;
use crate::mesh::{FlowModel, MeshConfig, MeshFlow};

/// The role of a node in a generated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A traffic end point.
    Host,
    /// Fat-tree edge (top-of-rack) switch.
    Edge,
    /// Fat-tree aggregation switch.
    Aggregation,
    /// Fat-tree core switch.
    Core,
    /// Leaf-spine leaf switch.
    Leaf,
    /// Leaf-spine spine switch.
    Spine,
}

/// One unidirectional link of a topology: an edge `src → dst` plus the
/// shared per-link description.
#[derive(Debug, Clone)]
pub struct TopoLink {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Capacity, scheduler, propagation, optional cross traffic.
    pub spec: LinkSpec,
}

/// A directed graph of [`TopoLink`]s over typed nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<TopoLink>,
    /// `adj[n]` = outgoing link indices of node `n`, ascending.
    adj: Vec<Vec<usize>>,
}

/// SplitMix64's finalizer: the route-hash primitive. Public so external
/// tooling can predict route choices.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Topology {
    /// Builds a topology from explicit nodes and links, rejecting
    /// self-loops, dangling endpoints, and duplicate `(src, dst)` pairs.
    pub fn new(nodes: Vec<NodeKind>, links: Vec<TopoLink>) -> Result<Topology, String> {
        let n = nodes.len();
        if n == 0 {
            return Err("topology needs at least one node".into());
        }
        let mut seen = std::collections::HashSet::new();
        for (i, l) in links.iter().enumerate() {
            if l.src >= n || l.dst >= n {
                return Err(format!(
                    "link {i} ({} -> {}) references a node outside the topology",
                    l.src, l.dst
                ));
            }
            if l.src == l.dst {
                return Err(format!("link {i} is a self-loop on node {}", l.src));
            }
            if !seen.insert((l.src, l.dst)) {
                return Err(format!(
                    "duplicate link {} -> {} (link ids must be unique per direction)",
                    l.src, l.dst
                ));
            }
        }
        let mut adj = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            adj[l.src].push(i);
        }
        Ok(Topology { nodes, links, adj })
    }

    /// The k-ary fat-tree (k even, ≥ 2): k pods × (k/2 edge + k/2 agg)
    /// switches, (k/2)² cores, (k/2)² hosts per pod. Node order: hosts,
    /// then edges, aggs, cores; every adjacency gets both directions with
    /// the same `spec`.
    pub fn fat_tree(k: usize, spec: &LinkSpec) -> Result<Topology, String> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(format!("fat-tree arity must be even and >= 2, got {k}"));
        }
        let half = k / 2;
        let hosts = k * half * half;
        let edges = k * half;
        let aggs = k * half;
        let cores = half * half;
        let mut nodes = Vec::with_capacity(hosts + edges + aggs + cores);
        nodes.extend(std::iter::repeat_n(NodeKind::Host, hosts));
        nodes.extend(std::iter::repeat_n(NodeKind::Edge, edges));
        nodes.extend(std::iter::repeat_n(NodeKind::Aggregation, aggs));
        nodes.extend(std::iter::repeat_n(NodeKind::Core, cores));
        let edge0 = hosts;
        let agg0 = hosts + edges;
        let core0 = hosts + edges + aggs;
        let mut links = Vec::new();
        let mut both = |a: usize, b: usize| {
            links.push(TopoLink {
                src: a,
                dst: b,
                spec: spec.clone(),
            });
            links.push(TopoLink {
                src: b,
                dst: a,
                spec: spec.clone(),
            });
        };
        for p in 0..k {
            for j in 0..half {
                let edge = edge0 + p * half + j;
                // Hosts under this edge switch.
                for m in 0..half {
                    both(p * half * half + j * half + m, edge);
                }
                // Full bipartite edge ↔ agg inside the pod.
                for a in 0..half {
                    both(edge, agg0 + p * half + a);
                }
            }
            // Agg j of every pod reaches cores [j·k/2, (j+1)·k/2).
            for j in 0..half {
                let agg = agg0 + p * half + j;
                for c in 0..half {
                    both(agg, core0 + j * half + c);
                }
            }
        }
        Topology::new(nodes, links)
    }

    /// A two-tier leaf-spine Clos: `hosts_per_leaf` hosts per leaf, every
    /// leaf connected to every spine. Node order: hosts, leaves, spines.
    pub fn leaf_spine(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        spec: &LinkSpec,
    ) -> Result<Topology, String> {
        if leaves == 0 || spines == 0 || hosts_per_leaf == 0 {
            return Err("leaf-spine needs at least one leaf, spine, and host per leaf".into());
        }
        let hosts = leaves * hosts_per_leaf;
        let mut nodes = Vec::with_capacity(hosts + leaves + spines);
        nodes.extend(std::iter::repeat_n(NodeKind::Host, hosts));
        nodes.extend(std::iter::repeat_n(NodeKind::Leaf, leaves));
        nodes.extend(std::iter::repeat_n(NodeKind::Spine, spines));
        let leaf0 = hosts;
        let spine0 = hosts + leaves;
        let mut links = Vec::new();
        let mut both = |a: usize, b: usize| {
            links.push(TopoLink {
                src: a,
                dst: b,
                spec: spec.clone(),
            });
            links.push(TopoLink {
                src: b,
                dst: a,
                spec: spec.clone(),
            });
        };
        for l in 0..leaves {
            for h in 0..hosts_per_leaf {
                both(l * hosts_per_leaf + h, leaf0 + l);
            }
            for s in 0..spines {
                both(leaf0 + l, spine0 + s);
            }
        }
        Topology::new(nodes, links)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node roles, indexed by node id.
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// The links, indexed by link id (= [`MeshConfig`] link index after
    /// lowering).
    pub fn links(&self) -> &[TopoLink] {
        &self.links
    }

    /// Node ids of every [`NodeKind::Host`], ascending.
    pub fn hosts(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| self.nodes[n] == NodeKind::Host)
            .collect()
    }

    /// All-destinations BFS distances for ECMP routing. O(V·(V+E)) — fine
    /// for fabrics of thousands of links.
    pub fn routes(&self) -> Routes {
        let n = self.nodes.len();
        // Incoming adjacency for the reverse BFS from each destination.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for l in &self.links {
            rev[l.dst].push(l.src);
        }
        let mut dist = vec![vec![u32::MAX; n]; n];
        let mut queue = std::collections::VecDeque::new();
        for d in 0..n {
            let dd = &mut dist[d];
            dd[d] = 0;
            queue.clear();
            queue.push_back(d);
            while let Some(v) = queue.pop_front() {
                for &u in &rev[v] {
                    if dd[u] == u32::MAX {
                        dd[u] = dd[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        Routes { dist }
    }

    /// The ECMP route for flow `flow_id` under `seed`, as a sequence of
    /// link ids from `src` to `dst`. `None` if `dst` is unreachable. Obeys
    /// the route-hash contract in the module docs.
    pub fn route(
        &self,
        routes: &Routes,
        src: usize,
        dst: usize,
        seed: u64,
        flow_id: u64,
    ) -> Option<Vec<usize>> {
        let dd = &routes.dist[dst];
        if src >= self.nodes.len() || dd[src] == u32::MAX {
            return None;
        }
        let key = splitmix64(seed ^ flow_id);
        let mut path = Vec::with_capacity(dd[src] as usize);
        let mut n = src;
        while n != dst {
            // Equal-cost next hops, in ascending link-id order (adjacency
            // lists are built in insertion order).
            let candidates: Vec<usize> = self.adj[n]
                .iter()
                .copied()
                .filter(|&l| {
                    let m = self.links[l].dst;
                    dd[m] != u32::MAX && dd[m] + 1 == dd[n]
                })
                .collect();
            let pick = candidates[(splitmix64(key ^ n as u64) % candidates.len() as u64) as usize];
            path.push(pick);
            n = self.links[pick].dst;
        }
        Some(path)
    }
}

/// Precomputed BFS distances (`dist[dst][node]`), produced by
/// [`Topology::routes`].
#[derive(Debug, Clone)]
pub struct Routes {
    dist: Vec<Vec<u32>>,
}

impl Routes {
    /// Hop count from `src` to `dst`, if reachable.
    pub fn hops(&self, src: usize, dst: usize) -> Option<u32> {
        match self.dist[dst][src] {
            u32::MAX => None,
            d => Some(d),
        }
    }
}

/// A host-to-host flow over a topology: routed by hashed ECMP when the
/// config lowers to a mesh.
#[derive(Debug, Clone)]
pub struct HostFlow {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Service class.
    pub class: u8,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// Emission model.
    pub model: FlowModel,
    /// Start of the first packet, ticks.
    pub start_ticks: u64,
}

/// A topology-level scenario: fabric + SDP + host flows. Lowers to a
/// [`MeshConfig`] via [`to_mesh`](TopologyConfig::to_mesh) — the single
/// code path both the exact engine and the decomposition consume.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// The fabric.
    pub topology: Topology,
    /// Scheduler Differentiation Parameters shared by all links.
    pub sdp: Sdp,
    /// Host-to-host flows.
    pub flows: Vec<HostFlow>,
    /// Seed for ECMP route hashing and Pareto emissions.
    pub seed: u64,
    /// Horizon for cross-traffic materialization (ticks). Required > 0 if
    /// any link carries a cross model.
    pub cross_horizon_ticks: u64,
}

impl TopologyConfig {
    /// Routes every flow (hashed ECMP, flow id = index), materializes
    /// link cross-traffic, and returns the validated [`MeshConfig`].
    pub fn to_mesh(&self) -> Result<MeshConfig, String> {
        let routes = self.topology.routes();
        let mut flows = Vec::with_capacity(self.flows.len());
        for (i, f) in self.flows.iter().enumerate() {
            if f.src >= self.topology.num_nodes() || f.dst >= self.topology.num_nodes() {
                return Err(format!("flow {i} references a node outside the topology"));
            }
            if f.src == f.dst {
                return Err(format!("flow {i} has identical src and dst ({})", f.src));
            }
            let route = self
                .topology
                .route(&routes, f.src, f.dst, self.seed, i as u64)
                .ok_or_else(|| format!("flow {i}: no route from {} to {}", f.src, f.dst))?;
            flows.push(MeshFlow {
                route,
                class: f.class,
                packet_bytes: f.packet_bytes,
                model: f.model.clone(),
                start_ticks: f.start_ticks,
            });
        }
        let cfg = MeshConfig {
            sdp: self.sdp.clone(),
            links: self
                .topology
                .links()
                .iter()
                .map(|l| l.spec.clone())
                .collect(),
            flows,
            seed: self.seed,
        };
        let has_cross = cfg.links.iter().any(|l| l.cross.is_some());
        if has_cross && self.cross_horizon_ticks == 0 {
            return Err(
                "cross_horizon_ticks must be positive when links carry cross traffic".into(),
            );
        }
        let cfg = cfg.materialize_cross(self.cross_horizon_ticks)?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::SchedulerKind;

    fn spec() -> LinkSpec {
        LinkSpec::new(25_000_000.0, SchedulerKind::Wtp)
    }

    #[test]
    fn fat_tree_arithmetic_matches_the_textbook() {
        for k in [2usize, 4, 6, 10] {
            let t = Topology::fat_tree(k, &spec()).unwrap();
            let hosts = k * k * k / 4;
            assert_eq!(t.hosts().len(), hosts, "k={k}");
            assert_eq!(t.links().len(), 3 * k * k * k / 2, "k={k}");
            assert_eq!(
                t.num_nodes(),
                hosts + k * k + k * k / 4,
                "k={k}: hosts + edge/agg + cores"
            );
        }
        assert!(Topology::fat_tree(3, &spec()).is_err());
        assert!(Topology::fat_tree(0, &spec()).is_err());
    }

    #[test]
    fn leaf_spine_wires_full_bipartite_core() {
        let t = Topology::leaf_spine(4, 2, 3, &spec()).unwrap();
        assert_eq!(t.hosts().len(), 12);
        // 12 host-leaf pairs + 8 leaf-spine pairs, both directions.
        assert_eq!(t.links().len(), 2 * (12 + 8));
    }

    #[test]
    fn builder_rejects_malformed_graphs() {
        let l = |src, dst| TopoLink {
            src,
            dst,
            spec: spec(),
        };
        let err = Topology::new(vec![NodeKind::Host; 2], vec![l(0, 5)]).unwrap_err();
        assert!(err.contains("outside the topology"), "{err}");
        let err = Topology::new(vec![NodeKind::Host; 2], vec![l(1, 1)]).unwrap_err();
        assert!(err.contains("self-loop"), "{err}");
        let err = Topology::new(vec![NodeKind::Host; 2], vec![l(0, 1), l(0, 1)]).unwrap_err();
        assert!(err.contains("duplicate link"), "{err}");
        assert!(Topology::new(vec![NodeKind::Host; 2], vec![l(0, 1), l(1, 0)]).is_ok());
    }

    #[test]
    fn routes_are_shortest_and_deterministic() {
        let t = Topology::fat_tree(4, &spec()).unwrap();
        let routes = t.routes();
        let hosts = t.hosts();
        let (a, b) = (hosts[0], *hosts.last().unwrap());
        // Different pods: host-edge-agg-core-agg-edge-host = 6 hops.
        assert_eq!(routes.hops(a, b), Some(6));
        let p1 = t.route(&routes, a, b, 42, 7).unwrap();
        let p2 = t.route(&routes, a, b, 42, 7).unwrap();
        assert_eq!(p1, p2, "same (seed, flow) must repeat the route");
        assert_eq!(p1.len(), 6);
        // The path is connected and ends at b.
        let mut n = a;
        for &l in &p1 {
            assert_eq!(t.links()[l].src, n);
            n = t.links()[l].dst;
        }
        assert_eq!(n, b);
        // Across many flow ids the hash must actually spread over ECMP
        // paths (4 core choices exist for inter-pod routes in k=4).
        let distinct: std::collections::HashSet<Vec<usize>> = (0..64)
            .map(|f| t.route(&routes, a, b, 42, f).unwrap())
            .collect();
        assert!(
            distinct.len() >= 3,
            "only {} distinct paths",
            distinct.len()
        );
    }

    #[test]
    fn same_leaf_routes_skip_the_spine() {
        let t = Topology::leaf_spine(2, 2, 2, &spec()).unwrap();
        let routes = t.routes();
        assert_eq!(routes.hops(0, 1), Some(2));
        let p = t.route(&routes, 0, 1, 0, 0).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn to_mesh_routes_and_validates() {
        let t = Topology::leaf_spine(2, 1, 1, &spec()).unwrap();
        let cfg = TopologyConfig {
            topology: t,
            sdp: Sdp::paper_default(),
            flows: vec![HostFlow {
                src: 0,
                dst: 1,
                class: 3,
                packet_bytes: 500,
                model: FlowModel::Periodic {
                    gap_ticks: 20_000_000,
                    count: 10,
                },
                start_ticks: 0,
            }],
            seed: 1,
            cross_horizon_ticks: 0,
        };
        let mesh = cfg.to_mesh().unwrap();
        assert_eq!(mesh.flows.len(), 1);
        // host0 -> leaf0 -> spine0 -> leaf1 -> host1 = 4 hops.
        assert_eq!(mesh.flows[0].route.len(), 4);
        let out = crate::Session::mesh(&mesh).run();
        assert_eq!(out.per_flow_waits[0].len(), 10);

        let mut bad = cfg.clone();
        bad.flows[0].dst = 0;
        assert!(bad.to_mesh().unwrap_err().contains("identical src and dst"));
        let mut bad = cfg.clone();
        bad.flows[0].dst = 99;
        assert!(bad.to_mesh().unwrap_err().contains("outside the topology"));
    }
}
