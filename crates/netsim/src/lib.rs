//! # netsim — multi-hop network simulator for Study B (§6)
//!
//! Models the Figure-6 configuration: a chain of K congested 25 Mbps links,
//! each running a WTP scheduler (or any other scheduler from `sched`).
//! *User flows* — N identical flows, one per class — enter at the first
//! node and traverse the whole path; *cross traffic* from C Pareto sources
//! enters at every node and exits after one hop. Propagation delay is zero
//! and only queueing delays are accumulated, exactly as the paper measures.
//!
//! Every second, a "user experiment" launches one flow per class; at the
//! end of the run, the per-flow end-to-end delay percentiles are compared
//! across classes to (a) count inconsistent-differentiation cases and
//! (b) compute the Table-1 figure of merit R_D.
//!
//! Beyond the paper's chain, the [`mesh`] module simulates arbitrary
//! topologies (flows routed over explicit link sequences) so crossing
//! paths and shared bottlenecks can be studied.
//!
//! [`Session`] is the unified entry point for both workloads: chain or
//! mesh, with optional probe and scenario axes (the legacy `run_*`
//! functions survive as deprecated one-line wrappers over it). Dynamic
//! scenarios ([`scenario::Scenario`]) perturb a run mid-flight: live SDP
//! reconfiguration, link-rate changes, link faults, class joins/leaves.
//!
//! Time unit: 1 tick = 1 ns.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod config;
mod engine;
pub mod mesh;
mod session;

pub use analysis::{analyze, packet_time_tolerance, ExperimentRecord, StudyBResult};
pub use config::{CrossModel, StudyBConfig, StudyBConfigBuilder};
#[allow(deprecated)]
pub use engine::{run_study_b, run_study_b_with_links};
pub use engine::{run_study_b_probed, run_study_b_scenario_probed, LinkStats};
pub use session::{MeshWorkload, Session, StudyBWorkload};

/// Ticks per second (1 tick = 1 ns).
pub const TICKS_PER_SEC: u64 = 1_000_000_000;
