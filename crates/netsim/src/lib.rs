//! # netsim — multi-hop network simulator for Study B (§6)
//!
//! Models the Figure-6 configuration: a chain of K congested 25 Mbps links,
//! each running a WTP scheduler (or any other scheduler from `sched`).
//! *User flows* — N identical flows, one per class — enter at the first
//! node and traverse the whole path; *cross traffic* from C Pareto sources
//! enters at every node and exits after one hop. Propagation delay is zero
//! and only queueing delays are accumulated, exactly as the paper measures.
//!
//! Every second, a "user experiment" launches one flow per class; at the
//! end of the run, the per-flow end-to-end delay percentiles are compared
//! across classes to (a) count inconsistent-differentiation cases and
//! (b) compute the Table-1 figure of merit R_D.
//!
//! Beyond the paper's chain, the [`mesh`] module simulates arbitrary
//! topologies (flows routed over explicit link sequences) so crossing
//! paths and shared bottlenecks can be studied.
//!
//! Beyond explicit meshes, the [`topology`] module generates datacenter
//! fabrics (fat-tree, leaf-spine) with deterministic hashed ECMP routing,
//! and the [`decompose`] module approximates such meshes as independent
//! per-link simulations whose per-hop delays compose into end-to-end
//! distributions — the shape that scales to thousands of links.
//!
//! [`Session`] is the single entry point for every workload: chain
//! ([`Session::study_b`]), mesh ([`Session::mesh`]), or generated topology
//! ([`Session::topology`]), with optional probe and scenario axes. Links
//! are described everywhere by the shared [`LinkSpec`]. Dynamic scenarios
//! ([`scenario::Scenario`]) perturb a run mid-flight: live SDP
//! reconfiguration, link-rate changes, link faults, class joins/leaves.
//!
//! Time unit: 1 tick = 1 ns.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod config;
pub mod decompose;
mod engine;
mod link;
pub mod mesh;
mod session;
pub mod topology;

pub use analysis::{analyze, packet_time_tolerance, ExperimentRecord, StudyBResult};
pub use config::{CrossModel, StudyBConfig, StudyBConfigBuilder};
pub use engine::{run_study_b_probed, run_study_b_scenario_probed, LinkStats};
pub use link::{CrossTraffic, LinkSpec};
pub use session::{MeshWorkload, Session, StudyBWorkload, TopologyWorkload};
pub use topology::{HostFlow, NodeKind, Routes, TopoLink, Topology, TopologyConfig};

/// Ticks per second (1 tick = 1 ns).
pub const TICKS_PER_SEC: u64 = 1_000_000_000;
