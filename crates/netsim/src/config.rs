//! Study-B configuration.

use sched::{SchedulerKind, Sdp};

use crate::link::{CrossTraffic, LinkSpec};
use crate::TICKS_PER_SEC;

/// How cross-traffic sources generate load.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossModel {
    /// Open-loop Pareto(α = 1.9) interarrivals at the rate that hits the
    /// target utilization — the paper's §6 setup.
    Pareto,
    /// Closed-loop ECN-reacting sources (§3's "sources that adjust their
    /// rate using the ECN bit"): each source sends periodically at its
    /// current rate, halves the rate when it sees its link's queue above
    /// `mark_threshold_bytes` (an ECN mark), and otherwise increases it
    /// additively — a crude AIMD that sustains high utilization without
    /// unbounded queues.
    EcnAdaptive {
        /// Queue depth that triggers a mark, in bytes.
        mark_threshold_bytes: u64,
        /// Additive increase per unmarked packet, in bits/s.
        increase_bps: f64,
        /// Lower bound on a source's rate as a fraction of its fair share.
        min_rate_fraction: f64,
    },
}

impl CrossModel {
    /// A reasonable ECN configuration: mark above 64 kB of queue,
    /// +50 kbit/s per unmarked packet, floor at 10 % of fair share.
    pub fn default_ecn() -> Self {
        CrossModel::EcnAdaptive {
            mark_threshold_bytes: 64 * 1024,
            increase_bps: 50_000.0,
            min_rate_fraction: 0.1,
        }
    }
}

/// Parameters of one Study-B run (defaults = the paper's Table-1 setup).
/// # Example
///
/// ```no_run
/// use netsim::{analyze, packet_time_tolerance, Session, StudyBConfig};
///
/// // One Table-1 cell, scaled down.
/// let cfg = StudyBConfig::builder(4, 0.95, 10, 200.0)
///     .experiments(10)
///     .warmup_secs(5.0)
///     .build()
///     .unwrap();
/// let (records, _links) = Session::study_b(&cfg).run();
/// let result = analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg));
/// assert!((result.rd - 2.0).abs() < 0.6); // ideal 2.00
/// ```
#[derive(Debug, Clone)]
pub struct StudyBConfig {
    /// Number of congested hops K on the user path (4 or 8 in Table 1).
    pub k_hops: usize,
    /// Link bandwidth in bits per second (25 Mbps in the paper).
    pub link_bps: f64,
    /// Scheduler at every link (WTP in the paper).
    pub scheduler: SchedulerKind,
    /// Scheduler Differentiation Parameters (1, 2, 4, 8 in the paper).
    pub sdp: Sdp,
    /// Target utilization ρ of every link (0.85 or 0.95).
    pub utilization: f64,
    /// Cross-traffic sources per node (C = 8).
    pub cross_sources: usize,
    /// Cross-traffic class mix (40/30/20/10 % in the paper).
    pub cross_class_fractions: Vec<f64>,
    /// Packet size for both cross and user traffic, bytes (500).
    pub packet_bytes: u32,
    /// User-flow length F in packets (10 or 100).
    pub flow_len: u32,
    /// User-flow rate R_u in kbit/s (50 or 200).
    pub flow_rate_kbps: f64,
    /// Number of user experiments M (100), launched one per second.
    pub experiments: u32,
    /// Warm-up before the first experiment, seconds (100 in the paper).
    pub warmup_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cross-traffic generation model.
    pub cross_model: CrossModel,
    /// Per-link scheduler override (one entry per hop); `None` = use
    /// `scheduler` everywhere. Lets experiments model partially deployed
    /// differentiation (e.g. one legacy FCFS hop on the path).
    pub link_schedulers: Option<Vec<SchedulerKind>>,
    /// The user flows' path as `(entry_hop, exit_hop)`: packets enter the
    /// queue of link `entry_hop` and leave the network after link
    /// `exit_hop − 1`. `None` = the full chain `(0, k_hops)`.
    pub user_path: Option<(usize, usize)>,
    /// Per-link utilization override (one entry per hop); `None` = the
    /// uniform `utilization` everywhere. Models a single bottleneck hop on
    /// an otherwise lightly loaded path.
    pub utilization_per_link: Option<Vec<f64>>,
    /// Propagation delay per link, in ns. The paper sets this to zero and
    /// excludes it from the delay metric (it is common to all classes);
    /// the knob exists to show that queueing-delay differentiation is
    /// unaffected by it.
    pub propagation_ns: u64,
}

impl StudyBConfig {
    /// The paper's Table-1 cell `(K, ρ, F, R_u)` with full-scale M and
    /// warm-up.
    pub fn paper(k_hops: usize, utilization: f64, flow_len: u32, flow_rate_kbps: f64) -> Self {
        StudyBConfig {
            k_hops,
            link_bps: 25_000_000.0,
            scheduler: SchedulerKind::Wtp,
            sdp: Sdp::paper_default(),
            utilization,
            cross_sources: 8,
            cross_class_fractions: vec![0.4, 0.3, 0.2, 0.1],
            packet_bytes: 500,
            flow_len,
            flow_rate_kbps,
            experiments: 100,
            warmup_secs: 100.0,
            seed: 1,
            cross_model: CrossModel::Pareto,
            link_schedulers: None,
            user_path: None,
            utilization_per_link: None,
            propagation_ns: 0,
        }
    }

    /// A validating builder seeded from the paper cell `(K, ρ, F, R_u)`:
    /// chain the optional knobs, then [`build`](StudyBConfigBuilder::build)
    /// returns `Err` instead of deferring to a panic inside the engine.
    pub fn builder(
        k_hops: usize,
        utilization: f64,
        flow_len: u32,
        flow_rate_kbps: f64,
    ) -> StudyBConfigBuilder {
        StudyBConfigBuilder {
            cfg: StudyBConfig::paper(k_hops, utilization, flow_len, flow_rate_kbps),
        }
    }

    /// Number of service classes (one user flow per class).
    pub fn num_classes(&self) -> usize {
        self.sdp.num_classes()
    }

    /// Link rate in bytes per tick (bytes per ns).
    pub fn link_bytes_per_tick(&self) -> f64 {
        self.link_bps / 8.0 / TICKS_PER_SEC as f64
    }

    /// Gap between packets of one user flow, in ticks: `L·8 / R_u`.
    pub fn user_packet_gap_ticks(&self) -> u64 {
        let bits = self.packet_bytes as f64 * 8.0;
        (bits / (self.flow_rate_kbps * 1000.0) * TICKS_PER_SEC as f64).round() as u64
    }

    /// Long-run average user-traffic rate in bits/s: one experiment per
    /// second, each sending `num_classes · F` packets.
    pub fn user_avg_bps(&self) -> f64 {
        self.num_classes() as f64 * self.flow_len as f64 * self.packet_bytes as f64 * 8.0
    }

    /// Aggregate cross-traffic rate per node (bits/s) needed to hit the
    /// target utilization given the user traffic on every link.
    pub fn cross_total_bps(&self) -> f64 {
        let cross = self.utilization * self.link_bps - self.user_avg_bps();
        assert!(
            cross > 0.0,
            "user traffic alone exceeds the utilization target"
        );
        cross
    }

    /// Mean interarrival gap of one cross source of class share `frac`, in
    /// ticks.
    pub fn cross_gap_ticks(&self) -> f64 {
        let per_source_bps = self.cross_total_bps() / self.cross_sources as f64;
        let bits = self.packet_bytes as f64 * 8.0;
        bits / per_source_bps * TICKS_PER_SEC as f64
    }

    /// The user flows' effective `(entry, exit)` hops.
    pub fn user_hops(&self) -> (usize, usize) {
        self.user_path.unwrap_or((0, self.k_hops))
    }

    /// The target utilization of link `l`.
    pub fn utilization_for_link(&self, l: usize) -> f64 {
        self.utilization_per_link
            .as_ref()
            .map(|v| v[l])
            .unwrap_or(self.utilization)
    }

    /// Aggregate cross-traffic rate (bits/s) needed at node `l` to hit that
    /// link's utilization target given the pass-through user traffic.
    pub fn cross_total_bps_for_link(&self, l: usize) -> f64 {
        let (entry, exit) = self.user_hops();
        let user = if l >= entry && l < exit {
            self.user_avg_bps()
        } else {
            0.0
        };
        let cross = self.utilization_for_link(l) * self.link_bps - user;
        assert!(
            cross > 0.0,
            "user traffic alone exceeds link {l}'s utilization target"
        );
        cross
    }

    /// Mean interarrival gap of one cross source at node `l`, in ticks.
    pub fn cross_gap_ticks_for_link(&self, l: usize) -> f64 {
        let per_source_bps = self.cross_total_bps_for_link(l) / self.cross_sources as f64;
        let bits = self.packet_bytes as f64 * 8.0;
        bits / per_source_bps * TICKS_PER_SEC as f64
    }

    /// The scheduler for link `l`.
    pub fn scheduler_for_link(&self, l: usize) -> SchedulerKind {
        self.link_schedulers
            .as_ref()
            .map(|v| v[l])
            .unwrap_or(self.scheduler)
    }

    /// Hop `l` as a [`LinkSpec`] — the shared per-link description every
    /// simulator in this crate consumes. The cross model's utilization is
    /// the *cross share alone*: the chain's total target minus the
    /// pass-through user traffic.
    pub fn link_spec(&self, l: usize) -> LinkSpec {
        LinkSpec {
            bps: self.link_bps,
            scheduler: self.scheduler_for_link(l),
            propagation_ns: self.propagation_ns,
            cross: Some(CrossTraffic {
                model: self.cross_model.clone(),
                utilization: self.cross_total_bps_for_link(l) / self.link_bps,
                sources: self.cross_sources,
                class_fractions: self.cross_class_fractions.clone(),
                packet_bytes: self.packet_bytes,
            }),
        }
    }

    /// Duration of one user flow in seconds.
    pub fn flow_duration_secs(&self) -> f64 {
        self.flow_len as f64 * self.user_packet_gap_ticks() as f64 / TICKS_PER_SEC as f64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.k_hops == 0 {
            return Err("need at least one hop".into());
        }
        if !(self.utilization > 0.0 && self.utilization < 1.0) {
            return Err(format!(
                "utilization must be in (0,1), got {}",
                self.utilization
            ));
        }
        if self.flow_len == 0 || self.experiments == 0 {
            return Err("flow_len and experiments must be positive".into());
        }
        if let Some(ls) = &self.link_schedulers {
            if ls.len() != self.k_hops {
                return Err(format!(
                    "link_schedulers has {} entries for {} hops",
                    ls.len(),
                    self.k_hops
                ));
            }
        }
        if let Some(us) = &self.utilization_per_link {
            if us.len() != self.k_hops {
                return Err(format!(
                    "utilization_per_link has {} entries for {} hops",
                    us.len(),
                    self.k_hops
                ));
            }
            if us.iter().any(|&u| !(u > 0.0 && u < 1.0)) {
                return Err("per-link utilizations must be in (0,1)".into());
            }
        }
        let (entry, exit) = self.user_hops();
        if entry >= exit || exit > self.k_hops {
            return Err(format!(
                "user_path ({entry}, {exit}) must satisfy entry < exit <= k_hops"
            ));
        }
        // Per-hop checks funnel through the shared LinkSpec validator. The
        // overload guard must run first: `link_spec` derives the cross
        // share as target − user, which asserts positivity.
        for l in 0..self.k_hops {
            let user = if l >= entry && l < exit {
                self.user_avg_bps()
            } else {
                0.0
            };
            if self.utilization_for_link(l) * self.link_bps <= user {
                return Err("user traffic alone exceeds the utilization target".into());
            }
            self.link_spec(l)
                .validate(self.num_classes())
                .map_err(|e| format!("hop {l}: {e}"))?;
        }
        Ok(())
    }
}

/// Builder for [`StudyBConfig`] whose [`build`](Self::build) validates the
/// whole configuration, returning `Err` for rejected combinations instead
/// of panicking mid-run. Created by [`StudyBConfig::builder`].
#[derive(Debug, Clone)]
pub struct StudyBConfigBuilder {
    cfg: StudyBConfig,
}

impl StudyBConfigBuilder {
    /// Scheduler used at every link (default WTP).
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// Scheduler Differentiation Parameters (default 1, 2, 4, 8).
    pub fn sdp(mut self, sdp: Sdp) -> Self {
        self.cfg.sdp = sdp;
        self
    }

    /// Link bandwidth in bits per second (default 25 Mbps).
    pub fn link_bps(mut self, bps: f64) -> Self {
        self.cfg.link_bps = bps;
        self
    }

    /// Number of user experiments M (default 100).
    pub fn experiments(mut self, m: u32) -> Self {
        self.cfg.experiments = m;
        self
    }

    /// Warm-up before the first experiment, seconds (default 100).
    pub fn warmup_secs(mut self, secs: f64) -> Self {
        self.cfg.warmup_secs = secs;
        self
    }

    /// RNG seed (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Cross-traffic generation model (default open-loop Pareto).
    pub fn cross_model(mut self, model: CrossModel) -> Self {
        self.cfg.cross_model = model;
        self
    }

    /// Per-link scheduler override, one entry per hop.
    pub fn link_schedulers(mut self, kinds: Vec<SchedulerKind>) -> Self {
        self.cfg.link_schedulers = Some(kinds);
        self
    }

    /// The user flows' path as `(entry_hop, exit_hop)`.
    pub fn user_path(mut self, entry: usize, exit: usize) -> Self {
        self.cfg.user_path = Some((entry, exit));
        self
    }

    /// Per-link utilization override, one entry per hop.
    pub fn utilization_per_link(mut self, targets: Vec<f64>) -> Self {
        self.cfg.utilization_per_link = Some(targets);
        self
    }

    /// Propagation delay per link, in ns (default 0).
    pub fn propagation_ns(mut self, ns: u64) -> Self {
        self.cfg.propagation_ns = ns;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<StudyBConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cell_derives_sane_parameters() {
        let c = StudyBConfig::paper(4, 0.95, 100, 50.0);
        assert!(c.validate().is_ok());
        // 500 B at 25 Mbps = 160 µs.
        assert!((c.link_bytes_per_tick() - 0.003125).abs() < 1e-12);
        // 4000 bits at 50 kbps = 80 ms.
        assert_eq!(c.user_packet_gap_ticks(), 80_000_000);
        // User average: 4 flows × 100 pkts × 4000 bits per second = 1.6 Mbps.
        assert!((c.user_avg_bps() - 1_600_000.0).abs() < 1e-6);
        // Cross total: 0.95·25M − 1.6M = 22.15 Mbps.
        assert!((c.cross_total_bps() - 22_150_000.0).abs() < 1.0);
        // Flow duration: 100 × 80 ms = 8 s.
        assert!((c.flow_duration_secs() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_overload_by_user_traffic() {
        let mut c = StudyBConfig::paper(4, 0.95, 100, 50.0);
        c.link_bps = 1_500_000.0; // user 1.6 Mbps alone exceeds 0.95×1.5M
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut c = StudyBConfig::paper(4, 0.9, 10, 50.0);
        c.cross_class_fractions = vec![0.5, 0.5];
        assert!(c.validate().is_err());
    }

    #[test]
    fn link_scheduler_overrides_validated() {
        let mut c = StudyBConfig::paper(4, 0.9, 10, 50.0);
        c.link_schedulers = Some(vec![SchedulerKind::Wtp; 3]);
        assert!(c.validate().is_err());
        c.link_schedulers = Some(vec![
            SchedulerKind::Wtp,
            SchedulerKind::Fcfs,
            SchedulerKind::Wtp,
            SchedulerKind::Wtp,
        ]);
        assert!(c.validate().is_ok());
        assert_eq!(c.scheduler_for_link(1), SchedulerKind::Fcfs);
        assert_eq!(c.scheduler_for_link(0), SchedulerKind::Wtp);
    }

    #[test]
    fn per_link_utilization_validated_and_applied() {
        let mut c = StudyBConfig::paper(3, 0.85, 10, 50.0);
        c.utilization_per_link = Some(vec![0.5, 0.95, 0.5]);
        assert!(c.validate().is_ok());
        assert!((c.utilization_for_link(1) - 0.95).abs() < 1e-12);
        assert!(c.cross_total_bps_for_link(1) > c.cross_total_bps_for_link(0));
        c.utilization_per_link = Some(vec![0.5, 0.95]);
        assert!(c.validate().is_err());
        c.utilization_per_link = Some(vec![0.5, 1.2, 0.5]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn user_path_validated() {
        let mut c = StudyBConfig::paper(4, 0.9, 10, 50.0);
        c.user_path = Some((1, 3));
        assert!(c.validate().is_ok());
        c.user_path = Some((3, 3));
        assert!(c.validate().is_err());
        c.user_path = Some((0, 5));
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_accepts_the_paper_cell() {
        let cfg = StudyBConfig::builder(4, 0.95, 10, 200.0)
            .experiments(10)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(cfg.experiments, 10);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_rejects_mismatched_link_schedulers() {
        let err = StudyBConfig::builder(4, 0.9, 10, 50.0)
            .link_schedulers(vec![SchedulerKind::Fcfs; 3])
            .build()
            .unwrap_err();
        assert!(err.contains("link_schedulers"), "{err}");
    }

    #[test]
    fn builder_rejects_overloaded_links() {
        let err = StudyBConfig::builder(4, 0.95, 100, 50.0)
            .link_bps(1_500_000.0)
            .build()
            .unwrap_err();
        assert!(err.contains("utilization target"), "{err}");
    }

    #[test]
    fn builder_rejects_bad_user_path() {
        let err = StudyBConfig::builder(4, 0.9, 10, 50.0)
            .user_path(3, 3)
            .build()
            .unwrap_err();
        assert!(err.contains("user_path"), "{err}");
    }

    #[test]
    fn builder_rejects_out_of_range_per_link_utilization() {
        let err = StudyBConfig::builder(3, 0.85, 10, 50.0)
            .utilization_per_link(vec![0.5, 1.2, 0.5])
            .build()
            .unwrap_err();
        assert!(err.contains("(0,1)"), "{err}");
    }

    #[test]
    fn cross_gap_scales_with_sources() {
        let c = StudyBConfig::paper(4, 0.95, 10, 50.0);
        let mut c2 = c.clone();
        c2.cross_sources = 4;
        assert!((c2.cross_gap_ticks() / c.cross_gap_ticks() - 0.5).abs() < 1e-9);
    }
}
