//! General-topology simulation: flows routed over arbitrary link sets.
//!
//! Study B's Figure-6 chain answers the paper's question for one path
//! shape; this module generalizes the engine so *crossing* paths can be
//! simulated — e.g. two user populations whose routes share a bottleneck
//! link — and the §6 question ("consistent end-to-end differentiation,
//! independent of the network path") can be probed on meshes.
//!
//! The model stays deliberately simple: unidirectional links described by
//! the shared [`LinkSpec`]; flows carry an explicit route (a sequence of
//! link indices); propagation delay shifts arrivals between hops but is
//! excluded from the queueing-wait metric; waits accumulate per hop
//! exactly as in the chain engine.
//!
//! Background load is expressed either as explicit Pareto [`MeshFlow`]s or
//! as a [`CrossTraffic`](crate::CrossTraffic) model on a [`LinkSpec`] —
//! the latter must be expanded into flows via
//! [`MeshConfig::materialize_cross`] before the engine will accept the
//! config, so the event loop only ever sees one kind of traffic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scenario::{Command, DownPolicy, Scenario, ScenarioRuntime};
use sched::{Packet, ReconfigureError, Scheduler, Sdp};
use simcore::{Context, Dur, Model, Simulation, Time};
use telemetry::{PacketId, Probe};
use traffic::IatDist;

use crate::config::CrossModel;
use crate::link::LinkSpec;

/// How a flow emits packets.
#[derive(Debug, Clone)]
pub enum FlowModel {
    /// `count` packets spaced `gap_ticks` apart (a Study-B user flow).
    Periodic {
        /// Inter-packet gap, ticks.
        gap_ticks: u64,
        /// Number of packets.
        count: u32,
    },
    /// Pareto(α = 1.9) arrivals with the given mean gap until the horizon
    /// (background/cross traffic).
    Pareto {
        /// Mean inter-packet gap, ticks.
        mean_gap_ticks: f64,
        /// Last instant at which the flow may emit.
        until_ticks: u64,
    },
}

/// One flow: a class, a route, and an emission model.
#[derive(Debug, Clone)]
pub struct MeshFlow {
    /// Ordered link indices the flow traverses.
    pub route: Vec<usize>,
    /// Service class.
    pub class: u8,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// Emission model.
    pub model: FlowModel,
    /// Start of the first packet, ticks.
    pub start_ticks: u64,
}

/// A mesh scenario.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Scheduler Differentiation Parameters shared by all links.
    pub sdp: Sdp,
    /// The links, described by the shared [`LinkSpec`].
    pub links: Vec<LinkSpec>,
    /// The flows.
    pub flows: Vec<MeshFlow>,
    /// RNG seed for the Pareto flows.
    pub seed: u64,
}

impl MeshConfig {
    /// A validating builder: add links and flows, then
    /// [`build`](MeshConfigBuilder::build) returns `Err` for rejected
    /// topologies instead of deferring to a panic inside the engine.
    pub fn builder(sdp: Sdp) -> MeshConfigBuilder {
        MeshConfigBuilder {
            cfg: MeshConfig {
                sdp,
                links: Vec::new(),
                flows: Vec::new(),
                seed: 0,
            },
        }
    }

    /// Validates routes, classes, and link parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.links.is_empty() {
            return Err("mesh needs at least one link".into());
        }
        for (l, spec) in self.links.iter().enumerate() {
            spec.validate(self.sdp.num_classes())
                .map_err(|e| format!("link {l}: {e}"))?;
            if spec.cross.is_some() {
                return Err(format!(
                    "link {l} has an unmaterialized cross-traffic model; \
                     call MeshConfig::materialize_cross(horizon) first"
                ));
            }
        }
        let positive = |x: f64| x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        for (i, f) in self.flows.iter().enumerate() {
            if f.route.is_empty() {
                return Err(format!("flow {i} has an empty route"));
            }
            if f.route.iter().any(|&l| l >= self.links.len()) {
                return Err(format!("flow {i} routes over an unknown link"));
            }
            // A route that revisits a link would let a packet race itself
            // through the same queue; the engine's per-packet hop counter
            // assumes loop-free routes.
            let mut seen = vec![false; self.links.len()];
            for &l in &f.route {
                if seen[l] {
                    return Err(format!("flow {i} visits link {l} twice"));
                }
                seen[l] = true;
            }
            if f.class as usize >= self.sdp.num_classes() {
                return Err(format!("flow {i} uses class {} without an SDP", f.class));
            }
            if f.packet_bytes == 0 {
                return Err(format!("flow {i} has zero-byte packets"));
            }
            match f.model {
                FlowModel::Periodic { count: 0, .. } => {
                    return Err(format!("flow {i} emits no packets"));
                }
                FlowModel::Pareto { mean_gap_ticks, .. } if !positive(mean_gap_ticks) => {
                    return Err(format!("flow {i} has a nonpositive mean gap"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Expands every link's [`CrossTraffic`](crate::CrossTraffic) model
    /// into explicit single-hop Pareto [`MeshFlow`]s emitting from tick 1
    /// until `until_ticks`, and clears the models. The engine only accepts
    /// configs without unmaterialized cross models, so this is the bridge
    /// from the declarative [`LinkSpec`] surface to the event loop.
    ///
    /// Expansion is deterministic: links in index order, classes in
    /// ascending order, then one flow per source, appended after the
    /// existing flows. Classes with a zero share produce no flows.
    ///
    /// Rejects `EcnAdaptive` cross models (closed-loop sources cannot be
    /// expressed as open-loop flows) and invalid cross parameters.
    pub fn materialize_cross(&self, until_ticks: u64) -> Result<MeshConfig, String> {
        let mut out = self.clone();
        for (l, spec) in self.links.iter().enumerate() {
            let Some(cross) = &spec.cross else { continue };
            cross
                .validate(self.sdp.num_classes())
                .map_err(|e| format!("link {l}: {e}"))?;
            if !matches!(cross.model, CrossModel::Pareto) {
                return Err(format!(
                    "link {l}: only Pareto cross traffic can be materialized \
                     into mesh flows"
                ));
            }
            for (c, &frac) in cross.class_fractions.iter().enumerate() {
                if frac <= 0.0 {
                    continue;
                }
                let per_source_bps = cross.utilization * spec.bps * frac / cross.sources as f64;
                let mean_gap_ticks =
                    cross.packet_bytes as f64 * 8.0 / per_source_bps * crate::TICKS_PER_SEC as f64;
                for _ in 0..cross.sources {
                    out.flows.push(MeshFlow {
                        route: vec![l],
                        class: c as u8,
                        packet_bytes: cross.packet_bytes,
                        model: FlowModel::Pareto {
                            mean_gap_ticks,
                            until_ticks,
                        },
                        start_ticks: 1,
                    });
                }
            }
            out.links[l].cross = None;
        }
        out.validate()?;
        Ok(out)
    }
}

/// Builder for [`MeshConfig`] whose [`build`](Self::build) validates the
/// whole topology. Created by [`MeshConfig::builder`].
#[derive(Debug, Clone)]
pub struct MeshConfigBuilder {
    cfg: MeshConfig,
}

impl MeshConfigBuilder {
    /// Adds a unidirectional link (index = insertion order).
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.cfg.links.push(link);
        self
    }

    /// Adds a flow routed over previously added links.
    pub fn flow(mut self, flow: MeshFlow) -> Self {
        self.cfg.flows.push(flow);
        self
    }

    /// RNG seed for the Pareto flows (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<MeshConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Per-flow outcome: one end-to-end queueing wait (ticks) per delivered
/// packet, in delivery order.
#[derive(Debug, Clone)]
pub struct MeshOutcome {
    /// `per_flow_waits[f]` = end-to-end waits of flow f's packets.
    pub per_flow_waits: Vec<Vec<u64>>,
    /// Packets transmitted per link.
    pub link_departures: Vec<u64>,
}

impl MeshOutcome {
    /// Mean end-to-end wait of flow `f` (0 if it delivered nothing).
    pub fn mean_wait(&self, f: usize) -> f64 {
        let w = &self.per_flow_waits[f];
        if w.is_empty() {
            0.0
        } else {
            w.iter().sum::<u64>() as f64 / w.len() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Flow `flow` emits packet `idx`.
    Emit { flow: u32, idx: u32 },
    /// Link finished its in-flight packet.
    TxDone { link: u16 },
    /// Packet `tag` finished propagating and arrives at its next hop.
    /// Only scheduled for links with a nonzero propagation delay — with
    /// zero propagation the engine hands the packet to the next hop
    /// synchronously, so existing zero-propagation results are unchanged.
    Arrive { tag: u64 },
    /// The next scenario event is due.
    ScenarioTick,
}

struct PacketMeta {
    flow: u32,
    hop: u16,
    acc_wait: u64,
}

struct LinkState {
    scheduler: Box<dyn Scheduler>,
    rate: f64,
    in_flight: Option<Packet>,
    /// Start of the in-flight transmission (valid while `in_flight` is
    /// `Some`).
    tx_start: Time,
    departures: u64,
}

struct Mesh<'p, P: Probe> {
    cfg: MeshConfig,
    links: Vec<LinkState>,
    metas: Vec<PacketMeta>,
    waits: Vec<Vec<u64>>,
    /// Per-Pareto-flow (rng, cumulative clock).
    pareto: Vec<Option<(StdRng, f64, IatDist)>>,
    probe: &'p mut P,
    rt: ScenarioRuntime,
    cmd_buf: Vec<Command>,
    audit_buf: Vec<(usize, f64)>,
}

/// Probe identity of mesh packet `pkt` at hop `link`: the per-packet tag
/// is the end-to-end span (one journey = one trace track).
fn packet_id(pkt: &Packet, link: usize) -> PacketId {
    PacketId {
        span: pkt.tag,
        seq: pkt.seq,
        class: pkt.class,
        size: pkt.size,
        hop: link as u16,
    }
}

impl<P: Probe> Mesh<'_, P> {
    fn arrive(&mut self, link: usize, class: u8, size: u32, tag: u64, ctx: &mut Context<Ev>) {
        let pkt = Packet {
            seq: tag,
            class,
            size,
            arrival: ctx.now(),
            tag,
        };
        if P::ENABLED {
            self.probe.on_arrival(pkt.arrival, packet_id(&pkt, link));
        }
        if !self.rt.link_up(link as u16) && self.rt.down_policy(link as u16) == DownPolicy::Drop {
            if P::ENABLED {
                self.probe.on_drop(
                    pkt.arrival,
                    packet_id(&pkt, link),
                    self.links[link].scheduler.total_backlog_bytes(),
                    0,
                );
            }
            return;
        }
        if P::ENABLED {
            self.probe.on_enqueue(pkt.arrival, packet_id(&pkt, link));
        }
        self.links[link].scheduler.enqueue(pkt);
        if self.links[link].in_flight.is_none() {
            self.start_tx(link, ctx);
        }
    }

    fn start_tx(&mut self, link: usize, ctx: &mut Context<Ev>) {
        if !self.rt.link_up(link as u16) {
            return;
        }
        let now = ctx.now();
        if P::ENABLED && P::WANTS_DECISION_VALUES {
            self.audit_buf.clear();
            self.links[link]
                .scheduler
                .decision_values(now, &mut self.audit_buf);
        }
        let Some(pkt) = self.links[link].scheduler.dequeue(now) else {
            return;
        };
        if P::ENABLED {
            self.probe.on_decision(
                now,
                self.links[link].scheduler.name(),
                packet_id(&pkt, link),
                &self.audit_buf,
            );
        }
        let wait = now.since(pkt.arrival).ticks();
        self.metas[pkt.tag as usize].acc_wait += wait;
        let tx = ((pkt.size as f64 / self.links[link].rate).round() as u64).max(1);
        self.links[link].in_flight = Some(pkt);
        self.links[link].tx_start = now;
        ctx.schedule_in(Dur::from_ticks(tx), Ev::TxDone { link: link as u16 });
    }

    /// Applies every scenario command due at `now` to the mesh.
    fn apply_scenario(&mut self, ctx: &mut Context<Ev>) {
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        self.rt
            .apply_due(ctx.now(), &mut *self.probe, |c| cmds.push(c));
        for c in cmds.drain(..) {
            match c {
                Command::Reconfigure(sdp) => {
                    for l in &mut self.links {
                        match l.scheduler.reconfigure(&sdp) {
                            Ok(()) | Err(ReconfigureError::Unsupported(_)) => {}
                            Err(e) => panic!("scenario set_sdp: {e}"),
                        }
                    }
                }
                Command::SetLinkRate { link, rate } => {
                    let l = &mut self.links[link as usize];
                    l.rate = rate;
                    l.scheduler.set_link_rate(rate);
                }
                Command::LinkDown { .. } => {}
                Command::LinkUp { link } => {
                    let l = link as usize;
                    if self.links[l].in_flight.is_none() {
                        self.start_tx(l, ctx);
                    }
                }
            }
        }
        self.cmd_buf = cmds;
    }
}

impl<P: Probe> Model for Mesh<'_, P> {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Context<Ev>) {
        match ev {
            Ev::Emit { flow, idx } => {
                let f = self.cfg.flows[flow as usize].clone();
                if self.rt.admits(f.class) {
                    let tag = self.metas.len() as u64;
                    self.metas.push(PacketMeta {
                        flow,
                        hop: 0,
                        acc_wait: 0,
                    });
                    self.arrive(f.route[0], f.class, f.packet_bytes, tag, ctx);
                }
                // Schedule the next emission.
                match f.model {
                    FlowModel::Periodic { gap_ticks, count } => {
                        if idx + 1 < count {
                            ctx.schedule_in(
                                Dur::from_ticks(gap_ticks),
                                Ev::Emit { flow, idx: idx + 1 },
                            );
                        }
                    }
                    FlowModel::Pareto { until_ticks, .. } => {
                        let slot = self.pareto[flow as usize]
                            .as_mut()
                            .expect("pareto state for pareto flow");
                        slot.1 += slot.2.sample(&mut slot.0);
                        let next = slot.1.round().max(ctx.now().ticks() as f64 + 1.0);
                        if next as u64 <= until_ticks {
                            ctx.schedule(
                                Time::from_ticks(next as u64),
                                Ev::Emit { flow, idx: idx + 1 },
                            );
                        }
                    }
                }
            }
            Ev::TxDone { link } => {
                let link = link as usize;
                let pkt = self.links[link]
                    .in_flight
                    .take()
                    .expect("TxDone without in-flight packet");
                self.links[link].departures += 1;
                let meta = &mut self.metas[pkt.tag as usize];
                meta.hop += 1;
                let route = &self.cfg.flows[meta.flow as usize].route;
                let delivered = meta.hop as usize >= route.len();
                if P::ENABLED {
                    let start = self.links[link].tx_start;
                    self.probe.on_depart(
                        packet_id(&pkt, link),
                        pkt.arrival,
                        start,
                        ctx.now(),
                        delivered,
                    );
                }
                if !delivered {
                    let prop = self.cfg.links[link].propagation_ns;
                    if prop > 0 {
                        ctx.schedule_in(Dur::from_ticks(prop), Ev::Arrive { tag: pkt.tag });
                    } else {
                        let next_link = route[meta.hop as usize];
                        let (class, size, tag) = (pkt.class, pkt.size, pkt.tag);
                        self.arrive(next_link, class, size, tag, ctx);
                    }
                } else {
                    let (flow, acc) = (meta.flow, meta.acc_wait);
                    self.waits[flow as usize].push(acc);
                }
                self.start_tx(link, ctx);
            }
            Ev::Arrive { tag } => {
                let meta = &self.metas[tag as usize];
                let f = &self.cfg.flows[meta.flow as usize];
                let (link, class, size) = (f.route[meta.hop as usize], f.class, f.packet_bytes);
                self.arrive(link, class, size, tag, ctx);
            }
            Ev::ScenarioTick => {
                self.apply_scenario(ctx);
                if let Some(at) = self.rt.next_at() {
                    ctx.schedule(at, Ev::ScenarioTick);
                }
            }
        }
    }
}

/// [`Session::mesh`](crate::Session::mesh) under a perturbation timeline with a
/// [`Probe`] observing every hop: scenario events (live SDP swaps,
/// link-rate changes, link faults, class joins/leaves) apply to the whole
/// mesh at their timestamps. With a non-empty scenario, flows may
/// legitimately deliver fewer packets than they emitted.
///
/// # Panics
/// Panics if the configuration fails [`MeshConfig::validate`], if the
/// scenario references a link or class the mesh does not define, or if it
/// contains a load surge (mesh flows carry explicit emission models).
pub fn run_mesh_scenario_probed<P: Probe>(
    cfg: &MeshConfig,
    scenario: &Scenario,
    probe: &mut P,
) -> MeshOutcome {
    cfg.validate().expect("invalid mesh configuration");
    assert!(
        !scenario.has_load_surge(),
        "load_surge is not supported by the mesh engine"
    );
    let links: Vec<LinkState> = cfg
        .links
        .iter()
        .map(|l| LinkState {
            scheduler: l.scheduler.build(&cfg.sdp, l.bytes_per_tick()),
            rate: l.bytes_per_tick(),
            in_flight: None,
            tx_start: Time::ZERO,
            departures: 0,
        })
        .collect();
    let pareto: Vec<Option<(StdRng, f64, IatDist)>> = cfg
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| match f.model {
            FlowModel::Pareto { mean_gap_ticks, .. } => Some((
                StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                f.start_ticks as f64,
                IatDist::paper_pareto(mean_gap_ticks).expect("validated gap"),
            )),
            FlowModel::Periodic { .. } => None,
        })
        .collect();
    let mesh = Mesh {
        links,
        metas: Vec::new(),
        waits: vec![Vec::new(); cfg.flows.len()],
        pareto,
        probe,
        rt: ScenarioRuntime::new(scenario, cfg.links.len(), cfg.sdp.num_classes()),
        cmd_buf: Vec::new(),
        audit_buf: Vec::new(),
        cfg: cfg.clone(),
    };
    let mut sim = Simulation::new(mesh);
    for (i, f) in cfg.flows.iter().enumerate() {
        sim.schedule(
            Time::from_ticks(f.start_ticks),
            Ev::Emit {
                flow: i as u32,
                idx: 0,
            },
        );
    }
    // Arm the perturbation timeline (no-op for empty scenarios).
    if let Some(at) = sim.model_mut().rt.next_at() {
        sim.schedule(at, Ev::ScenarioTick);
    }
    sim.run();
    let mesh = sim.into_model();
    MeshOutcome {
        per_flow_waits: mesh.waits,
        link_departures: mesh.links.iter().map(|l| l.departures).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::SchedulerKind;

    const MBPS25: f64 = 25_000_000.0;

    fn wtp_link() -> LinkSpec {
        LinkSpec::new(MBPS25, SchedulerKind::Wtp)
    }

    fn probe(route: Vec<usize>, class: u8, start: u64) -> MeshFlow {
        MeshFlow {
            route,
            class,
            packet_bytes: 500,
            model: FlowModel::Periodic {
                gap_ticks: 20_000_000, // 200 kbps
                count: 50,
            },
            start_ticks: start,
        }
    }

    fn background(route: Vec<usize>, class: u8, load_fraction: f64, horizon: u64) -> MeshFlow {
        // 500 B packets at `load_fraction` of 25 Mbps.
        let gap = 500.0 * 8.0 / (load_fraction * MBPS25) * 1e9;
        MeshFlow {
            route,
            class,
            packet_bytes: 500,
            model: FlowModel::Pareto {
                mean_gap_ticks: gap,
                until_ticks: horizon,
            },
            start_ticks: 1,
        }
    }

    /// Background mix loading `link` to ~92% across 4 classes.
    fn background_mix(link: usize, horizon: u64) -> Vec<MeshFlow> {
        [0.36, 0.27, 0.18, 0.09]
            .iter()
            .enumerate()
            .map(|(c, &frac)| background(vec![link], c as u8, frac, horizon))
            .collect()
    }

    #[test]
    fn unloaded_mesh_has_zero_waits() {
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link(), wtp_link()],
            flows: vec![probe(vec![0, 1], 3, 0)],
            seed: 1,
        };
        let out = crate::Session::mesh(&cfg).run();
        assert_eq!(out.per_flow_waits[0].len(), 50);
        assert!(out.per_flow_waits[0].iter().all(|&w| w == 0));
        assert_eq!(out.link_departures, vec![50, 50]);
    }

    #[test]
    fn crossing_paths_both_keep_differentiation() {
        // Y topology: path A = [0, 2], path B = [1, 2]; link 2 is the shared
        // bottleneck. Each path carries a low-class and a high-class probe.
        let horizon = 4 * crate::TICKS_PER_SEC;
        let mut flows = vec![
            probe(vec![0, 2], 0, 0),
            probe(vec![0, 2], 3, 0),
            probe(vec![1, 2], 0, 0),
            probe(vec![1, 2], 3, 0),
        ];
        flows.extend(background_mix(2, horizon));
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link(), wtp_link(), wtp_link()],
            flows,
            seed: 7,
        };
        let out = crate::Session::mesh(&cfg).run();
        for f in 0..4 {
            assert_eq!(out.per_flow_waits[f].len(), 50, "flow {f} incomplete");
        }
        // On each path the high class beats the low class end-to-end.
        assert!(
            out.mean_wait(0) > 1.5 * out.mean_wait(1),
            "path A: low {} vs high {}",
            out.mean_wait(0),
            out.mean_wait(1)
        );
        assert!(
            out.mean_wait(2) > 1.5 * out.mean_wait(3),
            "path B: low {} vs high {}",
            out.mean_wait(2),
            out.mean_wait(3)
        );
    }

    #[test]
    fn shared_bottleneck_couples_the_paths() {
        // Loading path A's private link should not change path B's delays
        // much; loading the shared link hurts both.
        let horizon = 3 * crate::TICKS_PER_SEC;
        let base_flows = |extra: Vec<MeshFlow>| {
            let mut flows = vec![probe(vec![0, 2], 0, 0), probe(vec![1, 2], 0, 0)];
            flows.extend(extra);
            flows
        };
        let mk = |extra| MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link(), wtp_link(), wtp_link()],
            flows: base_flows(extra),
            seed: 3,
        };
        let private_loaded = crate::Session::mesh(&mk(background_mix(0, horizon))).run();
        let shared_loaded = crate::Session::mesh(&mk(background_mix(2, horizon))).run();
        // Flow 1 (path B) barely notices path A's private congestion...
        assert!(
            private_loaded.mean_wait(1) < private_loaded.mean_wait(0) / 4.0,
            "B {} vs A {}",
            private_loaded.mean_wait(1),
            private_loaded.mean_wait(0)
        );
        // ...but suffers when the shared link is hot.
        assert!(
            shared_loaded.mean_wait(1) > 4.0 * private_loaded.mean_wait(1).max(1.0),
            "shared {} vs private {}",
            shared_loaded.mean_wait(1),
            private_loaded.mean_wait(1)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let horizon = crate::TICKS_PER_SEC;
        let mk = || {
            let mut flows = vec![probe(vec![0], 2, 0)];
            flows.extend(background_mix(0, horizon));
            MeshConfig {
                sdp: Sdp::paper_default(),
                links: vec![wtp_link()],
                flows,
                seed: 11,
            }
        };
        let a = crate::Session::mesh(&mk()).run();
        let b = crate::Session::mesh(&mk()).run();
        assert_eq!(a.per_flow_waits, b.per_flow_waits);
    }

    #[test]
    fn scenario_link_flap_holds_and_releases_the_shared_bottleneck() {
        use scenario::{DownPolicy, Scenario};
        // Flap the shared link of the Y topology with Hold: every probe
        // packet is still delivered, but the outage inflates the waits of
        // flows crossing it relative to the un-flapped run.
        let mk = || {
            MeshConfig::builder(Sdp::paper_default())
                .link(wtp_link())
                .link(wtp_link())
                .link(wtp_link())
                .flow(probe(vec![0, 2], 0, 0))
                .flow(probe(vec![1, 2], 3, 0))
                .seed(5)
                .build()
                .unwrap()
        };
        let base = crate::Session::mesh(&mk()).run();
        let sc = Scenario::builder()
            .link_down(Time::from_ticks(100_000_000), 2, DownPolicy::Hold)
            .link_up(Time::from_ticks(400_000_000), 2)
            .build()
            .unwrap();
        let flapped = crate::Session::mesh(&mk()).scenario(sc).run();
        for f in 0..2 {
            assert_eq!(flapped.per_flow_waits[f].len(), 50, "flow {f} lost packets");
        }
        assert!(
            flapped.mean_wait(0) > base.mean_wait(0) + 1_000_000.0,
            "outage must inflate path-A waits: {} vs {}",
            flapped.mean_wait(0),
            base.mean_wait(0)
        );
        assert!(
            flapped.mean_wait(1) > base.mean_wait(1) + 1_000_000.0,
            "outage must inflate path-B waits: {} vs {}",
            flapped.mean_wait(1),
            base.mean_wait(1)
        );
    }

    #[test]
    fn scenario_link_flap_drop_loses_mesh_packets() {
        use scenario::{DownPolicy, Scenario};
        let cfg = MeshConfig::builder(Sdp::paper_default())
            .link(wtp_link())
            .flow(probe(vec![0], 2, 0))
            .build()
            .unwrap();
        // The 50-packet probe spans 1 s; a 0.4 s Drop outage eats packets.
        let sc = Scenario::builder()
            .link_down(Time::from_ticks(100_000_000), 0, DownPolicy::Drop)
            .link_up(Time::from_ticks(500_000_000), 0)
            .build()
            .unwrap();
        let mut counter = telemetry::CountingProbe::new(4);
        let out = run_mesh_scenario_probed(&cfg, &sc, &mut counter);
        assert!(
            out.per_flow_waits[0].len() < 50,
            "Drop outage delivered all {} packets",
            out.per_flow_waits[0].len()
        );
        let report = counter.report();
        let drops: u64 = report.classes.iter().map(|c| c.drops).sum();
        assert_eq!(
            drops as usize + out.per_flow_waits[0].len(),
            50,
            "dropped + delivered must cover the flow"
        );
        assert_eq!(report.scenario_events, 2);
    }

    #[test]
    fn mesh_builder_rejects_bad_topologies() {
        let err = MeshConfig::builder(Sdp::paper_default())
            .flow(probe(vec![0], 0, 0))
            .build()
            .unwrap_err();
        assert!(err.contains("at least one link"), "{err}");
        let err = MeshConfig::builder(Sdp::paper_default())
            .link(wtp_link())
            .flow(probe(vec![0, 1], 0, 0))
            .build()
            .unwrap_err();
        assert!(err.contains("unknown link"), "{err}");
        let err = MeshConfig::builder(Sdp::paper_default())
            .link(wtp_link())
            .flow(probe(vec![0], 9, 0))
            .build()
            .unwrap_err();
        assert!(err.contains("without an SDP"), "{err}");
        assert!(MeshConfig::builder(Sdp::paper_default())
            .link(wtp_link())
            .flow(probe(vec![0], 0, 0))
            .build()
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_meshes() {
        let ok = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link()],
            flows: vec![probe(vec![0], 0, 0)],
            seed: 0,
        };
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.flows[0].route = vec![];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.flows[0].route = vec![5];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.flows[0].class = 9;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.flows[0].packet_bytes = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.links.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_rejects_looping_routes() {
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link(), wtp_link()],
            flows: vec![probe(vec![0, 1, 0], 0, 0)],
            seed: 0,
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("visits link 0 twice"), "{err}");
    }

    #[test]
    fn validation_rejects_unmaterialized_cross() {
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link().with_cross(crate::CrossTraffic::paper(0.5))],
            flows: vec![probe(vec![0], 0, 0)],
            seed: 0,
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("materialize_cross"), "{err}");
    }

    #[test]
    fn materialize_cross_expands_to_pareto_flows() {
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![
                wtp_link().with_cross(crate::CrossTraffic::paper(0.5)),
                wtp_link(),
            ],
            flows: vec![probe(vec![0, 1], 3, 0)],
            seed: 9,
        };
        let horizon = crate::TICKS_PER_SEC;
        let mat = cfg.materialize_cross(horizon).unwrap();
        // 8 sources × 4 classes with nonzero share, appended after the probe.
        assert_eq!(mat.flows.len(), 1 + 8 * 4);
        assert!(mat.links.iter().all(|l| l.cross.is_none()));
        for f in &mat.flows[1..] {
            assert_eq!(f.route, vec![0]);
            assert!(matches!(
                f.model,
                FlowModel::Pareto { until_ticks, .. } if until_ticks == horizon
            ));
        }
        // The expansion runs and congests the probe's first hop.
        let out = crate::Session::mesh(&mat).run();
        assert_eq!(out.per_flow_waits[0].len(), 50);
        assert!(out.link_departures[0] > out.link_departures[1]);
    }

    #[test]
    fn materialize_cross_rejects_closed_loop_models() {
        let mut cross = crate::CrossTraffic::paper(0.5);
        cross.model = CrossModel::EcnAdaptive {
            mark_threshold_bytes: 10_000,
            increase_bps: 1e6,
            min_rate_fraction: 0.1,
        };
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link().with_cross(cross)],
            flows: vec![probe(vec![0], 0, 0)],
            seed: 0,
        };
        let err = cfg.materialize_cross(crate::TICKS_PER_SEC).unwrap_err();
        assert!(err.contains("Pareto cross traffic"), "{err}");
    }

    #[test]
    fn propagation_shifts_arrivals_but_not_waits() {
        // An unloaded 2-hop route: propagation delays hop-2 arrivals but
        // queueing waits stay zero, and every packet still gets delivered.
        let cfg = MeshConfig {
            sdp: Sdp::paper_default(),
            links: vec![wtp_link().with_propagation(5_000_000), wtp_link()],
            flows: vec![probe(vec![0, 1], 3, 0)],
            seed: 1,
        };
        let out = crate::Session::mesh(&cfg).run();
        assert_eq!(out.per_flow_waits[0].len(), 50);
        assert!(out.per_flow_waits[0].iter().all(|&w| w == 0));
        assert_eq!(out.link_departures, vec![50, 50]);
    }
}
