//! The unified multi-hop entry point.
//!
//! Mirrors `qsim::Session` for the network simulators: pick a workload
//! (the Study-B chain or an arbitrary [`mesh`](crate::mesh)), then chain
//! the optional axes before `run`:
//!
//! * [`probe`](Session::probe) attaches any [`telemetry::Probe`] (pass
//!   `&mut sink` to keep ownership for `finish()`);
//! * [`scenario`](Session::scenario) attaches a perturbation timeline
//!   ([`scenario::Scenario`]) — live SDP swaps, link-rate changes, link
//!   faults, class joins/leaves — applied at every hop.
//!
//! ```no_run
//! use netsim::{Session, StudyBConfig};
//!
//! let mut cfg = StudyBConfig::paper(4, 0.95, 10, 200.0);
//! cfg.experiments = 10;
//! let (records, links) = Session::study_b(&cfg).run();
//! assert_eq!(records.len(), 10);
//! assert_eq!(links.len(), 4);
//! ```

use scenario::Scenario;
use telemetry::{MetricsRegistry, NoopProbe, Probe};

use crate::analysis::ExperimentRecord;
use crate::config::StudyBConfig;
use crate::decompose::{DecomposeInput, DecomposedOutcome};
use crate::engine::{run_study_b_scenario_probed, LinkStats};
use crate::mesh::{run_mesh_scenario_probed, MeshConfig, MeshOutcome};
use crate::topology::TopologyConfig;

/// The Figure-6 chain workload (a [`StudyBConfig`]).
#[derive(Debug)]
pub struct StudyBWorkload<'a> {
    cfg: &'a StudyBConfig,
}

/// An arbitrary-topology workload (a [`MeshConfig`]).
#[derive(Debug)]
pub struct MeshWorkload<'a> {
    cfg: &'a MeshConfig,
}

/// A generated-fabric workload: a [`TopologyConfig`] lowered to its mesh
/// (routes resolved, cross traffic materialized).
#[derive(Debug)]
pub struct TopologyWorkload {
    cfg: MeshConfig,
}

/// A composable network simulation run: workload × probe × scenario. See
/// the crate docs for the axes.
#[derive(Debug)]
pub struct Session<W, P = NoopProbe> {
    workload: W,
    scenario: Scenario,
    probe: P,
}

impl<'a> Session<StudyBWorkload<'a>> {
    /// Runs the Study-B chain described by `cfg`.
    pub fn study_b(cfg: &'a StudyBConfig) -> Self {
        Session {
            workload: StudyBWorkload { cfg },
            scenario: Scenario::empty(),
            probe: NoopProbe,
        }
    }
}

impl<'a> Session<MeshWorkload<'a>> {
    /// Runs the mesh described by `cfg`.
    pub fn mesh(cfg: &'a MeshConfig) -> Self {
        Session {
            workload: MeshWorkload { cfg },
            scenario: Scenario::empty(),
            probe: NoopProbe,
        }
    }
}

impl Session<TopologyWorkload> {
    /// Lowers a topology-level scenario (fabric + ECMP-routed host flows)
    /// to its mesh and wraps it in a session. Fails on invalid flows or
    /// unroutable host pairs; see [`TopologyConfig::to_mesh`].
    pub fn topology(cfg: &TopologyConfig) -> Result<Self, String> {
        Ok(Session {
            workload: TopologyWorkload {
                cfg: cfg.to_mesh()?,
            },
            scenario: Scenario::empty(),
            probe: NoopProbe,
        })
    }
}

impl<W, P: Probe> Session<W, P> {
    /// Attaches a probe observing every hop (and scenario events). Pass
    /// `&mut sink` to keep ownership of sinks that need a `finish()` call.
    pub fn probe<Q: Probe>(self, probe: Q) -> Session<W, Q> {
        Session {
            workload: self.workload,
            scenario: self.scenario,
            probe,
        }
    }

    /// Attaches a perturbation timeline. An empty scenario (the default)
    /// leaves the run stationary.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }
}

impl<'a, P: Probe> Session<StudyBWorkload<'a>, P> {
    /// Runs the chain to completion: per-experiment end-to-end class
    /// waits plus per-link statistics.
    ///
    /// # Panics
    /// Panics if the configuration fails [`StudyBConfig::validate`], if
    /// the scenario references links or classes outside the chain, or if
    /// it contains a load surge (unsupported on the chain engine).
    pub fn run(mut self) -> (Vec<ExperimentRecord>, Vec<LinkStats>) {
        run_study_b_scenario_probed(self.workload.cfg, &self.scenario, &mut self.probe)
    }
}

impl<'a, P: Probe> Session<MeshWorkload<'a>, P> {
    /// Runs the mesh to completion: per-flow end-to-end waits plus
    /// per-link departure counts.
    ///
    /// # Panics
    /// Panics if the configuration fails [`MeshConfig::validate`], if the
    /// scenario references links or classes outside the mesh, or if it
    /// contains a load surge (unsupported on the mesh engine).
    pub fn run(mut self) -> MeshOutcome {
        run_mesh_scenario_probed(self.workload.cfg, &self.scenario, &mut self.probe)
    }
}

impl<P: Probe> Session<TopologyWorkload, P> {
    /// The lowered mesh (resolved routes, materialized cross traffic).
    /// Useful for inspecting route choices or feeding the decomposition
    /// engine directly.
    pub fn mesh_config(&self) -> &MeshConfig {
        &self.workload.cfg
    }

    /// Runs the lowered mesh through the **exact** event loop — every
    /// link coupled, tractable for small fabrics.
    pub fn run(mut self) -> MeshOutcome {
        run_mesh_scenario_probed(&self.workload.cfg, &self.scenario, &mut self.probe)
    }

    /// Runs the **decomposed** approximation serially: independent
    /// per-link simulations composed in link order (see
    /// [`decompose`](crate::decompose)). The parallel driver is
    /// `experiments::mesh::run_decomposed`, which produces byte-identical
    /// results.
    ///
    /// # Panics
    /// Panics if a scenario is attached — the decomposition has no notion
    /// of mid-run perturbations.
    pub fn run_decomposed(self) -> DecomposedOutcome {
        assert!(
            self.scenario.is_empty(),
            "decomposition does not support scenarios"
        );
        DecomposeInput::new(&self.workload.cfg)
            .expect("lowered mesh is validated")
            .run()
    }
}

impl<'a> Session<StudyBWorkload<'a>> {
    /// Runs the chain with a [`MetricsRegistry`] attached — one
    /// [`telemetry::LinkMetrics`] instance per hop — and returns it next
    /// to the normal outputs.
    pub fn run_metered(self) -> (Vec<ExperimentRecord>, Vec<LinkStats>, MetricsRegistry) {
        let mut registry = MetricsRegistry::new();
        let (records, links) = self.probe(&mut registry).run();
        (records, links, registry)
    }
}

impl<'a> Session<MeshWorkload<'a>> {
    /// Runs the mesh with a [`MetricsRegistry`] attached — one
    /// [`telemetry::LinkMetrics`] instance per link — and returns it next
    /// to the outcome.
    pub fn run_metered(self) -> (MeshOutcome, MetricsRegistry) {
        let mut registry = MetricsRegistry::new();
        let outcome = self.probe(&mut registry).run();
        (outcome, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_chain_reports_per_hop_channels() {
        let mut cfg = StudyBConfig::paper(3, 0.9, 10, 200.0);
        cfg.experiments = 2;
        let (records, links, reg) = Session::study_b(&cfg).run_metered();
        assert_eq!(records.len(), 2);
        assert_eq!(links.len(), 3);
        assert_eq!(reg.num_links(), 3, "one LinkMetrics instance per hop");
        // Per-class packet conservation across the whole chain, modulo
        // the packets still in flight at the horizon cutoff (tracked by
        // the network-wide depth gauge).
        for c in 0..4 {
            let t = reg.class_total(c);
            assert!(t.arrivals > 0, "class {c} silent");
            assert!(t.arrivals >= t.departures + t.drops);
            let depth = reg.class_gauges()[c].depth;
            assert!(depth >= 0, "class {c} gauge went negative");
            assert_eq!(t.enqueues, t.hop_departures + depth as u64);
        }
        // Mid-chain hops transmit without ending packet lifetimes.
        let links = reg.links();
        let hop1 = &links[1].classes;
        assert!(hop1.iter().any(|ch| ch.hop_departures > ch.departures));
    }
}
