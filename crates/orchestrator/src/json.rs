//! A minimal JSON value with byte-stable serialization.
//!
//! The orchestrator's cache files and merged results must be *byte*-stable:
//! a warm re-run re-serializes parsed cache entries and has to reproduce
//! the cold run's output exactly, regardless of thread count. Two choices
//! make `serialize ∘ parse ∘ serialize` the identity on everything this
//! crate writes:
//!
//! * integers and floats are distinct variants, and [`Json::num`]
//!   normalizes every measured number the same way (whole finite values
//!   become [`Json::Int`], non-finite values become [`Json::Null`]), on
//!   construction *and* on parse;
//! * objects keep insertion order — no hash-map reordering.
//!
//! Floats print via Rust's `Display`, which emits the shortest decimal
//! string that round-trips, so re-parsing loses nothing.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite measurements).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (whole finite numbers normalize here).
    Int(i64),
    /// A non-whole finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and serialized as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Normalizes a measured `f64`: NaN/∞ → `Null`, whole values in the
    /// exactly-representable range → `Int`, anything else → `Float`.
    pub fn num(v: f64) -> Json {
        if !v.is_finite() {
            Json::Null
        } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
            Json::Int(v as i64)
        } else {
            Json::Float(v)
        }
    }

    /// An object from key/value pairs (order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of normalized numbers.
    pub fn nums(vs: &[f64]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::num(v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact, deterministic serialization.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                let _ = write!(out, "{f}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this crate writes, which is all
    /// of JSON minus exponent-notation floats in odd cases).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        let rest = &bytes[*pos..];
        let Some(&b) = rest.first() else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = rest.get(1).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(rest.get(2..6).ok_or("short \\u escape")?)
                            .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("unknown escape at byte {pos}")),
                }
                *pos += 2;
            }
            _ => {
                // Consume one UTF-8 character.
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    // Route through `num` so the parsed form re-serializes identically.
    text.parse::<f64>()
        .map(Json::num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_normalizes() {
        assert_eq!(Json::num(2.0), Json::Int(2));
        assert_eq!(Json::num(-3.0), Json::Int(-3));
        assert_eq!(Json::num(2.5), Json::Float(2.5));
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
    }

    #[test]
    fn roundtrip_is_identity() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig1 \"quoted\"\n".into())),
            ("utilization", Json::num(0.95)),
            ("count", Json::Int(42)),
            ("loss", Json::Null),
            ("ok", Json::Bool(true)),
            ("ratios", Json::nums(&[2.0, 1.97, 2.03])),
            ("nested", Json::obj(vec![("empty", Json::Arr(vec![]))])),
        ]);
        let s1 = v.serialize();
        let parsed = Json::parse(&s1).expect("parses");
        assert_eq!(parsed, v);
        assert_eq!(parsed.serialize(), s1);
    }

    #[test]
    fn whole_floats_parse_to_ints() {
        // "2.0" never appears in our own output, but a hand-edited cache
        // file must still normalize to the canonical form.
        let v = Json::parse("[2.0, 2.5, -7]").expect("parses");
        assert_eq!(
            v,
            Json::Arr(vec![Json::Int(2), Json::Float(2.5), Json::Int(-7)])
        );
        assert_eq!(v.serialize(), "[2,2.5,-7]");
    }

    #[test]
    fn accessors_work() {
        let v = Json::obj(vec![("a", Json::Int(1)), ("b", Json::Float(1.5))]);
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
