//! Worker processes and the parent-side process pool — the experiment
//! farm's execution engine.
//!
//! `propdiff-run run --workers N` spawns `N` copies of its own executable
//! as `propdiff-run worker` children and feeds them shard jobs over
//! stdin/stdout JSONL (see [`crate::protocol`]). Each parent thread owns
//! one child: it pops a job from the shared queue, writes the job line,
//! blocks on the reply line, and stores the shard in the cache the moment
//! it lands — so a crash at any point loses at most the in-flight shards.
//!
//! # Fault handling
//!
//! A child that exits, crashes, or writes garbage is respawned (without
//! the [`EXIT_AFTER_ENV`] crash hook, so an injected fault can't respawn
//! forever) and the job is requeued, up to a small per-job and per-pool
//! budget. A job the workers *deterministically* refuse (an error reply)
//! or that exhausts its retries falls back to in-process execution in the
//! parent, so `run` always completes with a full result set — the merge
//! step never sees a hole.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use experiments::Scale;

use crate::cache::Cache;
use crate::json::Json;
use crate::manifest::{self, Manifest};
use crate::protocol::{Job, Reply};

/// Environment variable holding a job count after which a worker exits
/// with [`CRASH_STATUS`] instead of reading the next job — the
/// deterministic crash hook the farm's resilience tests use.
pub const EXIT_AFTER_ENV: &str = "PROPDIFF_WORKER_EXIT_AFTER";

/// Exit status of a worker killed by the [`EXIT_AFTER_ENV`] crash hook.
pub const CRASH_STATUS: i32 = 17;

/// Per-job attempts (initial + retries) before the parent gives up on the
/// pool and runs the shard in-process.
const MAX_ATTEMPTS: u32 = 3;

/// The `propdiff-run worker` entry point: read one job per line from
/// stdin, write one reply per job to stdout, exit cleanly on EOF.
///
/// Never executed by hand — the parent spawns it. All diagnostics go to
/// stderr (inherited from the parent); stdout carries protocol lines
/// only.
pub fn worker_main() -> Result<(), String> {
    let exit_after: Option<u64> = std::env::var(EXIT_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    let stdin = std::io::stdin();
    let mut handled = 0u64;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("read job: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle(&line);
        let mut out = std::io::stdout().lock();
        writeln!(out, "{}", reply.to_line())
            .and_then(|()| out.flush())
            .map_err(|e| format!("write reply: {e}"))?;
        handled += 1;
        if exit_after == Some(handled) {
            std::process::exit(CRASH_STATUS);
        }
    }
    Ok(())
}

fn handle(line: &str) -> Reply {
    let job = match Job::parse(line) {
        Ok(job) => job,
        Err(error) => {
            return Reply::Err {
                cell: 0,
                shard: 0,
                error,
            }
        }
    };
    let (cell, shard) = (job.cell, job.shard);
    match execute_job(&job) {
        Ok((partial, registry)) => Reply::Ok {
            cell,
            shard,
            partial,
            registry,
        },
        Err(error) => Reply::Err { cell, shard, error },
    }
}

fn execute_job(job: &Job) -> Result<(Json, Option<String>), String> {
    let m = manifest::suite(&job.suite).ok_or_else(|| format!("unknown suite `{}`", job.suite))?;
    let cell = m
        .cells
        .get(job.cell)
        .ok_or_else(|| format!("cell {} out of range for `{}`", job.cell, job.suite))?;
    if cell.id() != job.id {
        return Err(format!(
            "cell id mismatch: manifest has `{}`, job names `{}`",
            cell.id(),
            job.id
        ));
    }
    if job.shards != cell.shard_count(job.scale) || job.shard >= job.shards {
        return Err(format!(
            "bad shard split {}/{} for `{}` (expected {} shards)",
            job.shard,
            job.shards,
            job.id,
            cell.shard_count(job.scale)
        ));
    }
    Ok(cell.execute_shard(job.scale, job.shard))
}

/// One shard-execution assignment the runner queues for the pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardJob {
    /// Cell index into the manifest.
    pub cell: usize,
    /// Shard to run.
    pub shard: usize,
    /// Total shards the cell splits into.
    pub shards: usize,
}

struct WorkerChild {
    proc: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerChild {
    fn spawn(exe: &Path, strip_crash_hook: bool) -> std::io::Result<WorkerChild> {
        let mut cmd = Command::new(exe);
        cmd.arg("worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if strip_crash_hook {
            cmd.env_remove(EXIT_AFTER_ENV);
        }
        let mut proc = cmd.spawn()?;
        let stdin = proc.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(proc.stdout.take().expect("piped stdout"));
        Ok(WorkerChild {
            proc,
            stdin,
            stdout,
        })
    }

    /// One job → one reply over the pipes.
    fn exchange(&mut self, job: &Job) -> Result<Reply, String> {
        writeln!(self.stdin, "{}", job.to_line())
            .and_then(|()| self.stdin.flush())
            .map_err(|e| format!("write to worker: {e}"))?;
        let mut line = String::new();
        match self.stdout.read_line(&mut line) {
            Ok(0) => Err("worker closed its stdout (crashed?)".into()),
            Ok(_) => Reply::parse(line.trim_end()),
            Err(e) => Err(format!("read from worker: {e}")),
        }
    }

    /// Clean shutdown: EOF on stdin, then reap.
    fn shutdown(self) {
        drop(self.stdin);
        let mut proc = self.proc;
        let _ = proc.wait();
    }

    /// A child presumed broken: kill and reap.
    fn discard(self) {
        let mut proc = self.proc;
        let _ = proc.kill();
        let _ = proc.wait();
    }
}

/// One finished shard: `(cell, shard, partial, registry, secs)`.
pub(crate) type ShardResult = (usize, usize, Json, Option<String>, f64);

/// Executes `jobs` across `workers` child processes, returning one
/// [`ShardResult`] per job (order unspecified — the runner merges by
/// slot). Shards are stored into `cache` as they complete; `on_done`
/// fires per finished shard for progress reporting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pool(
    manifest: &Manifest,
    scale: Scale,
    jobs: &[ShardJob],
    workers: usize,
    worker_exe: Option<&Path>,
    cache: &Cache,
    on_done: &(dyn Fn(usize, usize, usize, f64) + Sync),
) -> Vec<ShardResult> {
    let exe: PathBuf = worker_exe.map(Path::to_path_buf).unwrap_or_else(|| {
        std::env::current_exe().expect("current executable path for worker respawn")
    });
    let queue: Mutex<VecDeque<(ShardJob, u32)>> =
        Mutex::new(jobs.iter().map(|&j| (j, 1)).collect());
    let results: Mutex<Vec<ShardResult>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let respawns = AtomicUsize::new(0);
    let respawn_budget = 2 * workers + 4;

    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| {
                let mut child: Option<WorkerChild> = None;
                let mut ever_spawned = false;
                loop {
                    let Some((job, attempt)) = queue.lock().expect("queue lock").pop_front() else {
                        break;
                    };
                    let spec = &manifest.cells[job.cell];
                    let wire = Job {
                        suite: manifest.suite.clone(),
                        cell: job.cell,
                        id: spec.id(),
                        scale,
                        shard: job.shard,
                        shards: job.shards,
                    };
                    let started = std::time::Instant::now();
                    if child.is_none() {
                        // Respawned children run without the crash hook, so
                        // an injected fault fires once per original worker.
                        match WorkerChild::spawn(&exe, ever_spawned) {
                            Ok(c) => {
                                child = Some(c);
                                ever_spawned = true;
                            }
                            Err(e) => {
                                eprintln!(
                                    "warning: could not spawn worker ({e}); \
                                     running shards in-process"
                                );
                            }
                        }
                    }
                    let outcome = match child.as_mut() {
                        Some(c) => c.exchange(&wire),
                        None => Err("no worker process".into()),
                    };
                    match outcome {
                        Ok(Reply::Ok {
                            cell,
                            shard,
                            partial,
                            registry,
                        }) if cell == job.cell && shard == job.shard => {
                            finish(
                                spec, scale, job, partial, registry, started, cache, on_done,
                                &results,
                            );
                        }
                        Ok(Reply::Err { error, .. }) => {
                            // The worker is healthy but refuses the job;
                            // retrying elsewhere would refuse identically.
                            eprintln!(
                                "warning: worker refused shard {}/{} of {} ({error}); \
                                 running it in-process",
                                job.shard + 1,
                                job.shards,
                                spec.id()
                            );
                            let (partial, registry) = spec.execute_shard(scale, job.shard);
                            finish(
                                spec, scale, job, partial, registry, started, cache, on_done,
                                &results,
                            );
                        }
                        other => {
                            // Crashed child or protocol corruption: replace
                            // the child, retry the job a bounded number of
                            // times, then run it in-process.
                            if let Some(c) = child.take() {
                                c.discard();
                            }
                            let error = match other {
                                Err(e) => e,
                                _ => "worker answered for the wrong shard".into(),
                            };
                            let can_retry = attempt < MAX_ATTEMPTS
                                && respawns.fetch_add(1, Ordering::Relaxed) < respawn_budget;
                            if can_retry {
                                eprintln!(
                                    "warning: worker lost shard {}/{} of {} ({error}); \
                                     respawning (attempt {attempt})",
                                    job.shard + 1,
                                    job.shards,
                                    spec.id()
                                );
                                queue
                                    .lock()
                                    .expect("queue lock")
                                    .push_back((job, attempt + 1));
                            } else {
                                eprintln!(
                                    "warning: giving up on workers for shard {}/{} of {} \
                                     ({error}); running it in-process",
                                    job.shard + 1,
                                    job.shards,
                                    spec.id()
                                );
                                let (partial, registry) = spec.execute_shard(scale, job.shard);
                                finish(
                                    spec, scale, job, partial, registry, started, cache, on_done,
                                    &results,
                                );
                            }
                        }
                    }
                }
                if let Some(c) = child.take() {
                    c.shutdown();
                }
            });
        }
    });
    results.into_inner().expect("results lock")
}

/// Stores a finished shard, reports progress, and records the result.
#[allow(clippy::too_many_arguments)]
fn finish(
    spec: &crate::cell::CellSpec,
    scale: Scale,
    job: ShardJob,
    partial: Json,
    registry: Option<String>,
    started: std::time::Instant,
    cache: &Cache,
    on_done: &(dyn Fn(usize, usize, usize, f64) + Sync),
    results: &Mutex<Vec<ShardResult>>,
) {
    let secs = started.elapsed().as_secs_f64();
    if let Err(e) = cache.store_shard(
        spec,
        scale,
        job.shard,
        job.shards,
        &partial,
        registry.as_deref(),
    ) {
        eprintln!(
            "warning: could not cache shard {} of {}: {e}",
            job.shard,
            spec.id()
        );
    }
    on_done(job.cell, job.shard, job.shards, secs);
    results
        .lock()
        .expect("results lock")
        .push((job.cell, job.shard, partial, registry, secs));
}
