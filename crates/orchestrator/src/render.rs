//! The generated-docs pipeline: measured-number tables in EXPERIMENTS.md
//! live between `<!-- generated:NAME -->` / `<!-- /generated:NAME -->`
//! markers and are rewritten from merged results, so the document can
//! never silently drift from the code (CI regenerates and diffs).

use crate::json::Json;
use crate::manifest;

/// Renders every generated block derivable from a merged results document
/// as `(name, markdown body)` pairs.
pub fn generated_blocks(merged: &Json) -> Vec<(String, String)> {
    let mut blocks = Vec::new();
    let push = |blocks: &mut Vec<(String, String)>, name: &str, body: Option<String>| {
        if let Some(body) = body {
            blocks.push((name.to_string(), body));
        }
    };
    push(&mut blocks, "fig1a", fig1_table(merged, 2.0));
    push(&mut blocks, "fig1b", fig1_table(merged, 4.0));
    push(&mut blocks, "fig2a", fig2_table(merged, 2.0));
    push(&mut blocks, "fig3", fig3_table(merged));
    push(&mut blocks, "fig45", fig45_table(merged));
    push(&mut blocks, "table1", table1_grid(merged));
    push(
        &mut blocks,
        "table1-consistency",
        table1_consistency(merged),
    );
    push(&mut blocks, "shootout", shootout_table(merged));
    push(&mut blocks, "feasibility", feasibility_table(merged));
    push(&mut blocks, "starvation", starvation_table(merged));
    push(&mut blocks, "moderate-load", moderate_load_table(merged));
    push(&mut blocks, "plr", plr_table(merged));
    push(&mut blocks, "additive", additive_table(merged));
    push(&mut blocks, "analytic", analytic_table(merged));
    push(&mut blocks, "mixed-path", mixed_path_table(merged));
    push(&mut blocks, "dynamics", dynamics_table(merged));
    push(&mut blocks, "rank", rank_table(merged));
    push(&mut blocks, "monitor", monitor_table(merged));
    push(&mut blocks, "mesh", mesh_table(merged));
    push(&mut blocks, "suite-catalog", suite_catalog());
    blocks
}

/// The suite catalog, derived from the manifest itself (not from results),
/// so hand-written cell totals in the docs can never drift from the code.
fn suite_catalog() -> Option<String> {
    let rows = manifest::SUITES
        .iter()
        .map(|name| {
            let m = manifest::suite(name).expect("known suite");
            let shards: usize = m
                .cells
                .iter()
                .map(|c| c.shard_count(experiments::Scale::Quick))
                .sum();
            vec![
                format!("`{name}`"),
                format!("{}", m.cells.len()),
                format!("{shards}"),
            ]
        })
        .collect();
    Some(markdown_table(
        &["suite", "cells", "shards (quick scale)"],
        rows,
    ))
}

/// Rewrites every generated block that appears in `doc`.
///
/// Returns the new document, or an error naming markers present in the
/// document that no renderer produced (a drift bug in itself) or
/// malformed marker pairs.
pub fn render_doc(doc: &str, merged: &Json) -> Result<String, String> {
    let blocks = generated_blocks(merged);
    let mut out = doc.to_string();
    for name in marker_names(doc)? {
        let Some((_, body)) = blocks.iter().find(|(n, _)| *n == name) else {
            return Err(format!("no renderer for generated block `{name}`"));
        };
        out = substitute(&out, &name, body)?;
    }
    Ok(out)
}

/// Lists the generated-block names appearing in a document, in order.
pub fn marker_names(doc: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("<!-- generated:") {
            let name = rest
                .strip_suffix("-->")
                .ok_or_else(|| format!("malformed marker line `{line}`"))?
                .trim();
            names.push(name.to_string());
        }
    }
    Ok(names)
}

/// Replaces the contents between `<!-- generated:name -->` and
/// `<!-- /generated:name -->` with `body`.
pub fn substitute(doc: &str, name: &str, body: &str) -> Result<String, String> {
    let open = format!("<!-- generated:{name} -->");
    let close = format!("<!-- /generated:{name} -->");
    let start = doc
        .find(&open)
        .ok_or_else(|| format!("missing marker {open}"))?
        + open.len();
    let end = doc[start..]
        .find(&close)
        .ok_or_else(|| format!("missing closing marker {close}"))?
        + start;
    Ok(format!(
        "{}\n{}\n{}",
        &doc[..start],
        body.trim_end(),
        &doc[end..]
    ))
}

/// The result objects (with params) of every complete cell in a group.
fn group_cells<'a>(merged: &'a Json, group: &str) -> Vec<&'a Json> {
    merged
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or_default()
        .iter()
        .filter(|c| c.get("group").and_then(Json::as_str) == Some(group))
        .filter(|c| c.get("result").is_some_and(|r| *r != Json::Null))
        .collect()
}

fn param_f64(cell: &Json, key: &str) -> Option<f64> {
    cell.get("params")?.get(key)?.as_f64()
}

fn result(cell: &Json) -> &Json {
    cell.get("result").expect("complete cell")
}

fn fmt_row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

fn markdown_table(header: &[&str], rows: Vec<Vec<String>>) -> String {
    let mut out = fmt_row(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    out.push('\n');
    out.push_str(&fmt_row(
        &header.iter().map(|_| "---".to_string()).collect::<Vec<_>>(),
    ));
    for row in rows {
        out.push('\n');
        out.push_str(&fmt_row(&row));
    }
    out
}

fn ratio_cells(result: &Json, key: &str) -> Vec<String> {
    result
        .get(key)
        .and_then(Json::as_arr)
        .unwrap_or_default()
        .iter()
        .map(|r| format!("{:.2}", r.as_f64().unwrap_or(f64::NAN)))
        .collect()
}

fn fig1_table(merged: &Json, sdp_ratio: f64) -> Option<String> {
    let cells: Vec<_> = group_cells(merged, "fig1")
        .into_iter()
        .filter(|c| param_f64(c, "sdp_ratio") == Some(sdp_ratio))
        .collect();
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let mut row = vec![format!(
                "{:.1}%",
                r.get("utilization").and_then(Json::as_f64).unwrap_or(0.0) * 100.0
            )];
            row.extend(ratio_cells(r, "wtp"));
            row.extend(ratio_cells(r, "bpr"));
            row
        })
        .collect();
    Some(markdown_table(
        &[
            "util", "WTP 1/2", "WTP 2/3", "WTP 3/4", "BPR 1/2", "BPR 2/3", "BPR 3/4",
        ],
        rows,
    ))
}

fn fig2_table(merged: &Json, sdp_ratio: f64) -> Option<String> {
    let cells: Vec<_> = group_cells(merged, "fig2")
        .into_iter()
        .filter(|c| param_f64(c, "sdp_ratio") == Some(sdp_ratio))
        .collect();
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let label = r
                .get("fractions")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(|f| format!("{}", (f.as_f64().unwrap_or(0.0) * 100.0).round() as u64))
                .collect::<Vec<_>>()
                .join("/");
            let mut row = vec![label];
            row.extend(ratio_cells(r, "wtp"));
            row.extend(ratio_cells(r, "bpr"));
            row
        })
        .collect();
    Some(markdown_table(
        &[
            "loads %", "WTP 1/2", "WTP 2/3", "WTP 3/4", "BPR 1/2", "BPR 2/3", "BPR 3/4",
        ],
        rows,
    ))
}

fn fig3_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "fig3");
    if cells.is_empty() {
        return None;
    }
    let mut rows = Vec::new();
    for c in cells {
        let r = result(c);
        let sched = r.get("scheduler").and_then(Json::as_str).unwrap_or("?");
        for tau in r.get("taus").and_then(Json::as_arr).unwrap_or_default() {
            let five: Vec<String> = tau
                .get("five_number")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(|v| format!("{:.2}", v.as_f64().unwrap_or(f64::NAN)))
                .collect();
            let mut row = vec![
                sched.to_string(),
                format!(
                    "{}",
                    tau.get("tau_punits").and_then(Json::as_i64).unwrap_or(0)
                ),
            ];
            row.extend(five);
            rows.push(row);
        }
    }
    Some(markdown_table(
        &["sched", "τ (p-units)", "p5", "p25", "median", "p75", "p95"],
        rows,
    ))
}

fn fig45_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "fig45");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let mut row = vec![r
                .get("scheduler")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()];
            for v in r
                .get("roughness")
                .and_then(Json::as_arr)
                .unwrap_or_default()
            {
                row.push(format!("{:.3}", v.as_f64().unwrap_or(f64::NAN)));
            }
            row.push(format!(
                "**{:.3}**",
                r.get("mean_roughness")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN)
            ));
            row
        })
        .collect();
    Some(markdown_table(
        &["scheduler", "class 1", "class 2", "class 3", "mean"],
        rows,
    ))
}

fn table1_grid(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "table1");
    if cells.is_empty() {
        return None;
    }
    let lookup = |k: i64, rho: f64, f: i64, rate: f64| -> Option<f64> {
        let matches = |c: &&&Json| -> Option<bool> {
            let p = c.get("params")?;
            Some(
                p.get("k_hops")?.as_i64()? == k
                    && (p.get("utilization")?.as_f64()? - rho).abs() < 1e-9
                    && p.get("flow_len")?.as_i64()? == f
                    && (p.get("flow_rate_kbps")?.as_f64()? - rate).abs() < 1e-9,
            )
        };
        cells
            .iter()
            .find(|c| matches(c).unwrap_or(false))
            .and_then(|c| result(c).get("rd").and_then(Json::as_f64))
    };
    let mut rows = Vec::new();
    for k in [4i64, 8] {
        for rho in [0.85, 0.95] {
            let mut row = vec![format!("K={k} ρ={:.0}%", rho * 100.0)];
            for (f, rate) in [(10i64, 50.0), (10, 200.0), (100, 50.0), (100, 200.0)] {
                row.push(match lookup(k, rho, f, rate) {
                    Some(rd) => format!("{rd:.1}"),
                    None => "—".into(),
                });
            }
            rows.push(row);
        }
    }
    Some(markdown_table(
        &["", "F=10 R=50", "F=10 R=200", "F=100 R=50", "F=100 R=200"],
        rows,
    ))
}

fn table1_consistency(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "table1");
    if cells.is_empty() {
        return None;
    }
    let sum = |key: &str| -> i64 {
        cells
            .iter()
            .filter_map(|c| result(c).get(key).and_then(Json::as_i64))
            .sum()
    };
    let total = sum("experiments");
    let inconsistent = sum("inconsistent_experiments");
    let strict = sum("inconsistent_strict");
    Some(format!(
        "Inconsistent differentiation: **{inconsistent} of {total}** user experiments \
         beyond one packet transmission time per hop ({strict} at strict nanosecond \
         resolution); the paper reports zero."
    ))
}

fn shootout_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "shootout");
    let r = result(cells.first()?);
    let rows = r
        .get("rows")
        .and_then(Json::as_arr)?
        .iter()
        .map(|row| {
            let mut out = vec![row
                .get("scheduler")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()];
            out.extend(ratio_cells(row, "ratios"));
            out.push(format!(
                "{:.1}%",
                row.get("deviation")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN)
                    * 100.0
            ));
            out
        })
        .collect();
    Some(markdown_table(
        &[
            "scheduler",
            "d1/d2",
            "d2/d3",
            "d3/d4",
            "mean \\|dev\\| from 2.0",
        ],
        rows,
    ))
}

fn feasibility_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "feasibility");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            vec![
                format!(
                    "{:.0}%",
                    r.get("utilization").and_then(Json::as_f64).unwrap_or(0.0) * 100.0
                ),
                format!(
                    "{:.1}",
                    r.get("spacing").and_then(Json::as_f64).unwrap_or(0.0)
                ),
                if r.get("feasible").and_then(Json::as_bool).unwrap_or(false) {
                    "yes".into()
                } else {
                    "**NO**".to_string()
                },
                format!(
                    "{:+.3}",
                    r.get("worst_slack")
                        .and_then(Json::as_f64)
                        .unwrap_or(f64::NAN)
                ),
            ]
        })
        .collect();
    Some(markdown_table(
        &["util", "spacing", "feasible", "worst subset slack"],
        rows,
    ))
}

fn starvation_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "starvation");
    let r = result(cells.first()?);
    let rows = r
        .get("probes")
        .and_then(Json::as_arr)?
        .iter()
        .map(|p| {
            let flag = |key: &str| {
                if p.get(key).and_then(Json::as_bool).unwrap_or(false) {
                    "starve".to_string()
                } else {
                    "-".to_string()
                }
            };
            vec![
                format!(
                    "{:.1}",
                    p.get("sdp_ratio").and_then(Json::as_f64).unwrap_or(0.0)
                ),
                format!(
                    "{:.2}",
                    p.get("condition_lhs").and_then(Json::as_f64).unwrap_or(0.0)
                ),
                format!(
                    "{:.2}",
                    p.get("condition_rhs").and_then(Json::as_f64).unwrap_or(0.0)
                ),
                flag("predicted"),
                flag("observed"),
            ]
        })
        .collect();
    Some(markdown_table(
        &["s2/s1", "1−R/R₁", "s1/s2", "predicted", "observed"],
        rows,
    ))
}

fn moderate_load_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "moderate-load");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let mut row = vec![format!(
                "{:.0}%",
                r.get("utilization").and_then(Json::as_f64).unwrap_or(0.0) * 100.0
            )];
            for entry in r.get("rows").and_then(Json::as_arr).unwrap_or_default() {
                row.push(format!(
                    "{:.2}",
                    entry
                        .get("mean_ratio")
                        .and_then(Json::as_f64)
                        .unwrap_or(f64::NAN)
                ));
            }
            row
        })
        .collect();
    Some(markdown_table(&["util", "WTP", "BPR", "PAD", "HPD"], rows))
}

fn plr_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "plr");
    if cells.is_empty() {
        return None;
    }
    let num = |r: &Json, key: &str| match r.get(key).and_then(Json::as_f64) {
        Some(v) => format!("{v:.2}"),
        None => "n/a".into(),
    };
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            vec![
                format!(
                    "{:.0}",
                    r.get("sigma").and_then(Json::as_f64).unwrap_or(0.0)
                ),
                num(r, "plr_loss_ratio"),
                num(r, "taildrop_loss_ratio"),
                num(r, "delay_ratio"),
            ]
        })
        .collect();
    Some(markdown_table(
        &[
            "target σ1/σ2",
            "PLR loss ratio",
            "tail-drop loss ratio",
            "delay ratio (target 2)",
        ],
        rows,
    ))
}

fn additive_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "additive");
    let r = result(cells.first()?);
    let p = pdd::traffic::PAPER_MEAN_PACKET_BYTES;
    let diffs = r.get("differences").and_then(Json::as_arr)?;
    let targets = r.get("targets").and_then(Json::as_arr)?;
    let rows = diffs
        .iter()
        .zip(targets)
        .enumerate()
        .map(|(i, (d, t))| {
            vec![
                format!("{}/{}", i + 1, i + 2),
                format!("{:.1}", d.as_f64().unwrap_or(f64::NAN) / p),
                format!("{:.1}", t.as_f64().unwrap_or(f64::NAN) / p),
            ]
        })
        .collect();
    Some(markdown_table(
        &["pair", "measured dᵢ−dⱼ (p-units)", "target sⱼ−sᵢ (p-units)"],
        rows,
    ))
}

fn analytic_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "analytic");
    let r = result(cells.first()?);
    let rows = r
        .get("rows")
        .and_then(Json::as_arr)?
        .iter()
        .map(|row| {
            let m = row
                .get("simulated")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            let p = row.get("theory").and_then(Json::as_f64).unwrap_or(f64::NAN);
            vec![
                row.get("scheduler")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                format!("{}", row.get("class").and_then(Json::as_i64).unwrap_or(0)),
                format!("{m:.1}"),
                format!("{p:.1}"),
                format!("{:+.1}%", (m / p - 1.0) * 100.0),
            ]
        })
        .collect();
    Some(markdown_table(
        &["scheduler", "class", "simulated", "theory", "error"],
        rows,
    ))
}

fn mixed_path_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "mixed-path");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            vec![
                r.get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                format!(
                    "{:.2}",
                    r.get("rd").and_then(Json::as_f64).unwrap_or(f64::NAN)
                ),
                format!(
                    "{}",
                    r.get("inconsistent_experiments")
                        .and_then(Json::as_i64)
                        .unwrap_or(0)
                ),
            ]
        })
        .collect();
    Some(markdown_table(
        &["per-hop schedulers", "end-to-end R_D", "inconsistent exps"],
        rows,
    ))
}

fn dynamics_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "dynamics");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let seeds = r.get("seeds").and_then(Json::as_i64).unwrap_or(0);
            let mut row = vec![
                r.get("scheduler")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                r.get("perturbation")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            ];
            for pair in r.get("pairs").and_then(Json::as_arr).unwrap_or_default() {
                let settled = pair.get("settled").and_then(Json::as_i64).unwrap_or(0);
                row.push(
                    match pair.get("mean_settle_punits").and_then(Json::as_f64) {
                        Some(m) => format!("{m:.0} ({settled}/{seeds})"),
                        None => "not settled".into(),
                    },
                );
            }
            row.push(match r.get("headline_punits").and_then(Json::as_f64) {
                Some(m) => format!("**{m:.0}**"),
                None => "—".into(),
            });
            row
        })
        .collect();
    Some(markdown_table(
        &[
            "scheduler",
            "perturbation",
            "1/2 (p-units)",
            "2/3 (p-units)",
            "3/4 (p-units)",
            "mean",
        ],
        rows,
    ))
}

fn rank_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "rank");
    if cells.is_empty() {
        return None;
    }
    let dev = |r: &Json, key: &str, target: f64| -> String {
        let ratios: Vec<f64> = r
            .get(key)
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .iter()
            .filter_map(Json::as_f64)
            .collect();
        if ratios.is_empty() || target == 0.0 {
            return "—".into();
        }
        let mean =
            ratios.iter().map(|v| (v / target - 1.0).abs()).sum::<f64>() / ratios.len() as f64;
        format!("{:.0}%", mean * 100.0)
    };
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let target = r.get("sdp_ratio").and_then(Json::as_f64).unwrap_or(0.0);
            let mut row = vec![
                format!("{target:.0}"),
                format!(
                    "{:.1}%",
                    r.get("utilization").and_then(Json::as_f64).unwrap_or(0.0) * 100.0
                ),
            ];
            row.extend(ratio_cells(r, "lstf"));
            row.push(dev(r, "lstf", target));
            row.push(dev(r, "wtp", target));
            row
        })
        .collect();
    Some(markdown_table(
        &[
            "target", "util", "LSTF 1/2", "LSTF 2/3", "LSTF 3/4", "LSTF dev", "WTP dev",
        ],
        rows,
    ))
}

fn monitor_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "monitor");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let int = |key: &str| r.get(key).and_then(Json::as_i64).unwrap_or(0);
            let num = |key: &str| r.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
            vec![
                r.get("scheduler")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                format!("{}", int("window_punits")),
                format!("{}", int("pairs_evaluated")),
                format!("{}", int("steady_violations")),
                format!("{:.3}", num("violation_rate")),
                format!(
                    "{} ({} inv)",
                    int("transient_violations"),
                    int("inversions")
                ),
                format!("{:.0}", num("mean_quiet_punits")),
                format!("{:.2}", num("max_drift")),
            ]
        })
        .collect();
    Some(markdown_table(
        &[
            "scheduler",
            "window (p)",
            "eval pairs",
            "steady viol",
            "viol rate",
            "transient viol",
            "quiet after (p)",
            "max drift",
        ],
        rows,
    ))
}

fn mesh_table(merged: &Json) -> Option<String> {
    let cells = group_cells(merged, "mesh");
    if cells.is_empty() {
        return None;
    }
    let rows = cells
        .iter()
        .map(|c| {
            let r = result(c);
            let int = |key: &str| r.get(key).and_then(Json::as_i64).unwrap_or(0);
            let mut row = vec![
                r.get("scheduler")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                format!("{}", int("links")),
                format!("{}", int("flows")),
                format!("{}", int("packet_hops")),
            ];
            row.extend(ratio_cells(r, "hop_ratios"));
            row.extend(ratio_cells(r, "e2e_ratios"));
            row
        })
        .collect();
    Some(markdown_table(
        &[
            "scheduler",
            "links",
            "flows",
            "packet-hops",
            "hop 1/2",
            "hop 2/3",
            "hop 3/4",
            "e2e 1/2",
            "e2e 2/3",
            "e2e 3/4",
        ],
        rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitute_replaces_between_markers() {
        let doc = "before\n<!-- generated:x -->\nstale\n<!-- /generated:x -->\nafter\n";
        let out = substitute(doc, "x", "fresh").unwrap();
        assert_eq!(
            out,
            "before\n<!-- generated:x -->\nfresh\n<!-- /generated:x -->\nafter\n"
        );
        // Idempotent.
        assert_eq!(substitute(&out, "x", "fresh").unwrap(), out);
    }

    #[test]
    fn substitute_reports_missing_markers() {
        assert!(substitute("nothing here", "x", "body").is_err());
        assert!(substitute("<!-- generated:x -->\nno close", "x", "body").is_err());
    }

    #[test]
    fn marker_names_are_found_in_order() {
        let doc = "<!-- generated:b -->\n<!-- /generated:b -->\n<!-- generated:a -->\n<!-- /generated:a -->";
        assert_eq!(marker_names(doc).unwrap(), vec!["b", "a"]);
    }

    #[test]
    fn render_doc_rejects_unknown_blocks() {
        let merged = Json::obj(vec![("cells", Json::Arr(vec![]))]);
        let doc = "<!-- generated:bogus -->\n<!-- /generated:bogus -->";
        assert!(render_doc(doc, &merged).is_err());
    }

    #[test]
    fn suite_catalog_tracks_the_manifest() {
        let table = suite_catalog().expect("always renders");
        let all = manifest::suite("all").unwrap();
        assert!(
            table.contains(&format!("| `all` | {} |", all.cells.len())),
            "catalog must list the real `all` cell count:\n{table}"
        );
        assert_eq!(
            table.lines().count(),
            manifest::SUITES.len() + 2,
            "one row per suite plus header"
        );
    }

    #[test]
    fn tables_render_from_synthetic_results() {
        let cell = Json::obj(vec![
            ("id", Json::Str("fig1-s2-u0_7".into())),
            ("group", Json::Str("fig1".into())),
            (
                "params",
                Json::obj(vec![
                    ("group", Json::Str("fig1".into())),
                    ("sdp_ratio", Json::Int(2)),
                    ("utilization", Json::Float(0.7)),
                ]),
            ),
            (
                "result",
                Json::obj(vec![
                    ("utilization", Json::Float(0.7)),
                    ("wtp", Json::nums(&[1.49, 1.43, 1.27])),
                    ("bpr", Json::nums(&[1.33, 1.26, 1.12])),
                ]),
            ),
        ]);
        let merged = Json::obj(vec![("cells", Json::Arr(vec![cell]))]);
        let table = fig1_table(&merged, 2.0).expect("renders");
        assert!(table.contains("| 70.0% | 1.49 | 1.43 | 1.27 | 1.33 | 1.26 | 1.12 |"));
        assert!(fig1_table(&merged, 4.0).is_none(), "no panel-b cells");
    }
}
