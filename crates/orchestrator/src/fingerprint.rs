//! Source fingerprinting for cache invalidation.
//!
//! A cached cell is valid only while the code that produced it is
//! unchanged. Rather than hashing the whole repository (so editing docs or
//! the orchestrator itself would needlessly invalidate every result), the
//! fingerprint covers exactly the crates whose code can change a simulated
//! number: the simulation substrate, the schedulers, the statistics, and
//! the experiment definitions.

use std::path::{Path, PathBuf};

/// Crates (directory names under `crates/`) whose sources feed the
/// fingerprint. The orchestrator is deliberately absent — the runner only
/// schedules. Telemetry joined the list when the conformance monitor
/// became a result producer: a monitor cell's violation counts are
/// computed by telemetry code, so edits there must invalidate its cells.
pub const FINGERPRINT_CRATES: [&str; 9] = [
    "simcore",
    "traffic",
    "sched",
    "qsim",
    "netsim",
    "stats",
    "core",
    "experiments",
    "telemetry",
];

/// FNV-1a 64-bit streaming hasher (dependency-free, stable across runs —
/// unlike `std`'s `DefaultHasher`, whose seed varies).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Hashes one byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// The workspace root: `$PROPDIFF_ROOT` if set, else two levels up from
/// this crate's manifest (which is where the workspace `Cargo.toml` lives).
pub fn workspace_root() -> PathBuf {
    if let Ok(root) = std::env::var("PROPDIFF_ROOT") {
        return PathBuf::from(root);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Fingerprints the result-relevant crate sources: FNV-1a over each
/// crate's sorted `src/**/*.rs` relative paths and contents.
///
/// Missing directories hash as absent (the fingerprint still changes when
/// they appear), so a pruned checkout fails soft rather than panicking.
pub fn source_fingerprint(root: &Path) -> u64 {
    let mut h = Fnv::new();
    for krate in FINGERPRINT_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = rust_sources(&src);
        files.sort();
        for path in files {
            let rel = format!(
                "{krate}/{}",
                path.strip_prefix(&src).unwrap_or(&path).display()
            );
            h.write(rel.as_bytes());
            h.write(b"\0");
            if let Ok(contents) = std::fs::read(&path) {
                h.write(&contents);
            }
            h.write(b"\0");
        }
    }
    h.finish()
}

/// Recursively collects `*.rs` files under `dir`.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(rust_sources(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let root = workspace_root();
        let a = source_fingerprint(&root);
        let b = source_fingerprint(&root);
        assert_eq!(a, b, "same tree, same fingerprint");
        // An empty root has no sources; its fingerprint differs.
        let empty = std::env::temp_dir().join("pdd_fp_empty_test");
        let _ = std::fs::create_dir_all(&empty);
        assert_ne!(a, source_fingerprint(&empty));
        let _ = std::fs::remove_dir_all(&empty);
    }
}
