//! The work-stealing runner: shards a manifest's cells across threads,
//! consults the cache before simulating, and merges results in manifest
//! order so the output is byte-stable regardless of thread count or
//! completion order.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use experiments::{parallel_map_on, Scale};

use crate::cache::{scale_tag, Cache, SCHEMA_VERSION};
use crate::cell::CellSpec;
use crate::fingerprint::{source_fingerprint, workspace_root};
use crate::json::Json;
use crate::manifest::Manifest;

/// Options governing one runner invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Cache root directory.
    pub cache_dir: PathBuf,
    /// Execute at most this many uncached cells (`None` = all). Cells past
    /// the budget are left for the next invocation — the resume mechanism.
    pub max_cells: Option<usize>,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
}

impl RunOptions {
    /// Quick-scale defaults with the standard `out/cache` directory.
    pub fn new(scale: Scale) -> RunOptions {
        RunOptions {
            scale,
            workers: 0,
            cache_dir: PathBuf::from("out/cache"),
            max_cells: None,
            quiet: false,
        }
    }
}

/// The outcome of one runner invocation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The merged results document (manifest order, byte-stable).
    pub merged: Json,
    /// Cells actually simulated this invocation.
    pub executed: usize,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells skipped by the `max_cells` budget.
    pub skipped: usize,
}

impl RunReport {
    /// Whether every manifest cell has a result in `merged`.
    pub fn complete(&self) -> bool {
        self.skipped == 0
    }
}

/// Runs `manifest` under `opts`: cache lookups first, then the missing
/// cells in parallel via the experiments crate's work-stealing
/// [`parallel_map_on`], then a deterministic merge.
pub fn run(manifest: &Manifest, opts: &RunOptions) -> RunReport {
    let fingerprint = source_fingerprint(&workspace_root());
    let cache = Cache::new(opts.cache_dir.clone(), fingerprint);
    let scale = opts.scale;

    // Phase 1: cache lookups, in manifest order.
    let lookups: Vec<(usize, &CellSpec, Option<Json>)> = manifest
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| (i, cell, cache.load(cell, scale)))
        .collect();
    let cached = lookups.iter().filter(|(_, _, r)| r.is_some()).count();
    let misses: Vec<(usize, &CellSpec)> = lookups
        .iter()
        .filter(|(_, _, r)| r.is_none())
        .map(|&(i, cell, _)| (i, cell))
        .collect();

    // Phase 2: honor the resume budget, then execute the rest in parallel.
    let budget = opts.max_cells.unwrap_or(misses.len());
    let skipped = misses.len().saturating_sub(budget);
    let to_run = &misses[..misses.len() - skipped];
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        opts.workers
    };

    let done = AtomicUsize::new(0);
    let total = to_run.len();
    let jobs: Vec<_> = to_run
        .iter()
        .map(|&(i, cell)| {
            let cache = &cache;
            let done = &done;
            move || {
                let started = std::time::Instant::now();
                let (result, metrics, registry_json) = cell.execute(scale);
                if let Err(e) = cache.store(cell, scale, &result) {
                    eprintln!("warning: could not cache {}: {e}", cell.id());
                }
                if let Some(snapshot) = &registry_json {
                    if let Err(e) = cache.store_metrics(cell, scale, snapshot) {
                        eprintln!(
                            "warning: could not write metrics sidecar for {}: {e}",
                            cell.id()
                        );
                    }
                }
                if !opts.quiet {
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    let mut line = format!(
                        "[{n:>3}/{total}] {:<28} {:>6.1}s",
                        cell.id(),
                        started.elapsed().as_secs_f64()
                    );
                    if let Some(m) = &metrics {
                        line.push_str(&format!(
                            "  {} departures, {:.1}M probe events/s",
                            m.total_departures(),
                            m.events_per_sec() / 1.0e6
                        ));
                    }
                    let _ = writeln!(std::io::stderr().lock(), "{line}");
                }
                (i, result)
            }
        })
        .collect();
    let executed_results = parallel_map_on(jobs, workers);
    let executed = executed_results.len();

    // Phase 3: deterministic merge — manifest order, independent of which
    // thread finished which cell when.
    let mut results: Vec<Option<Json>> = lookups.into_iter().map(|(_, _, r)| r).collect();
    for (i, r) in executed_results {
        results[i] = Some(r);
    }
    let cells = manifest
        .cells
        .iter()
        .zip(&results)
        .map(|(cell, result)| {
            Json::obj(vec![
                ("id", Json::Str(cell.id())),
                ("group", Json::Str(cell.group().into())),
                ("params", cell.params()),
                ("result", result.clone().unwrap_or(Json::Null)),
            ])
        })
        .collect();
    let merged = Json::obj(vec![
        ("schema", Json::Int(SCHEMA_VERSION as i64)),
        ("suite", Json::Str(manifest.suite.clone())),
        ("scale", Json::Str(scale_tag(scale))),
        ("complete", Json::Bool(results.iter().all(Option::is_some))),
        ("cells", Json::Arr(cells)),
    ]);

    RunReport {
        merged,
        executed,
        cached,
        skipped,
    }
}

/// Writes the Figures-4/5 view CSVs (`fig4_view1.csv` … `fig5_view2.csv`)
/// under `dir` from a merged results document, byte-identical to what the
/// retired `fig45` binary wrote. No-op for suites without fig45 cells.
pub fn write_fig45_csvs(merged: &Json, dir: &std::path::Path) -> std::io::Result<()> {
    let Some(cells) = merged.get("cells").and_then(Json::as_arr) else {
        return Ok(());
    };
    for cell in cells {
        if cell.get("group").and_then(Json::as_str) != Some("fig45") {
            continue;
        }
        let Some(result) = cell.get("result").filter(|r| **r != Json::Null) else {
            continue;
        };
        let fig = match result.get("scheduler").and_then(Json::as_str) {
            Some("BPR") => "fig4",
            Some("WTP") => "fig5",
            _ => continue,
        };
        std::fs::create_dir_all(dir)?;
        let mut v1 = String::from("interval_start_ticks,class1,class2,class3\n");
        for row in result
            .get("view1")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let row = row.as_arr().unwrap_or_default();
            let start = row.first().and_then(Json::as_i64).unwrap_or(0);
            let avgs: Vec<String> = row
                .get(1)
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(|a| a.as_f64().map(|d| format!("{d:.1}")).unwrap_or_default())
                .collect();
            v1.push_str(&format!("{start},{}\n", avgs.join(",")));
        }
        std::fs::write(dir.join(format!("{fig}_view1.csv")), v1)?;
        let mut v2 = String::from("departure_ticks,class,delay_ticks\n");
        for row in result
            .get("view2")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let row = row.as_arr().unwrap_or_default();
            let t = row.first().and_then(Json::as_i64).unwrap_or(0);
            let c = row.get(1).and_then(Json::as_i64).unwrap_or(0);
            let d = row.get(2).and_then(Json::as_f64).unwrap_or(0.0);
            v2.push_str(&format!("{t},{},{d:.1}\n", c + 1));
        }
        std::fs::write(dir.join(format!("{fig}_view2.csv")), v2)?;
    }
    Ok(())
}
