//! The shard-aware runner: splits a manifest's uncached cells into
//! deterministic seed-shards, executes the missing shards on worker
//! threads or (with `process_workers > 0`) on a farm of separate worker
//! processes, and merges everything back in manifest order and seed order
//! — so the output is byte-identical regardless of worker count, worker
//! kind, or completion order.
//!
//! The cache is consulted at two granularities. Merged per-cell entries
//! short-circuit whole cells; shard entries (stored the moment each shard
//! finishes) let a crashed or interrupted run resume mid-cell, paying only
//! for the shards that never landed.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use experiments::{parallel_map_on, Scale};

use crate::cache::{scale_tag, Cache, SCHEMA_VERSION};
use crate::cell::CellSpec;
use crate::fingerprint::{source_fingerprint, workspace_root};
use crate::json::Json;
use crate::manifest::Manifest;
use crate::worker::{run_pool, ShardJob};

/// Options governing one runner invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The scale every cell runs at.
    pub scale: Scale,
    /// Worker threads (0 = one per available core). Ignored when
    /// `process_workers` selects the process farm.
    pub workers: usize,
    /// Worker *processes*: 0 runs shards on threads in this process; N > 0
    /// spawns N `propdiff-run worker` children and feeds them shards over
    /// the wire protocol. Output is byte-identical either way.
    pub process_workers: usize,
    /// Executable to spawn as the worker (`None` = this executable).
    /// Mainly for tests driving the pool from a harness binary.
    pub worker_exe: Option<PathBuf>,
    /// Cache root directory.
    pub cache_dir: PathBuf,
    /// Execute at most this many uncached cells (`None` = all). Cells past
    /// the budget are left for the next invocation — the resume mechanism.
    pub max_cells: Option<usize>,
    /// Suppress per-shard progress lines on stderr.
    pub quiet: bool,
}

impl RunOptions {
    /// Quick-scale defaults with the standard `out/cache` directory.
    pub fn new(scale: Scale) -> RunOptions {
        RunOptions {
            scale,
            workers: 0,
            process_workers: 0,
            worker_exe: None,
            cache_dir: PathBuf::from("out/cache"),
            max_cells: None,
            quiet: false,
        }
    }
}

/// The outcome of one runner invocation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The merged results document (manifest order, byte-stable).
    pub merged: Json,
    /// Cells actually simulated (at least one shard ran) this invocation.
    pub executed: usize,
    /// Shards actually simulated this invocation — the rest of the
    /// executed cells' shards were resumed from the shard cache.
    pub shards_executed: usize,
    /// Cells served whole from the merged cache.
    pub cached: usize,
    /// Cells skipped by the `max_cells` budget.
    pub skipped: usize,
}

impl RunReport {
    /// Whether every manifest cell has a result in `merged`.
    pub fn complete(&self) -> bool {
        self.skipped == 0
    }
}

/// A cell the runner must (re)assemble this invocation: its shard slots,
/// some possibly pre-filled from the shard cache.
struct Work<'a> {
    idx: usize,
    cell: &'a CellSpec,
    slots: Vec<Option<(Json, Option<String>)>>,
    secs: f64,
}

/// Runs `manifest` under `opts`: merged-cache lookups first, then the
/// missing shards in parallel — in-process via the experiments crate's
/// work-stealing [`parallel_map_on`], or across worker processes via
/// the farm pool (`worker::run_pool`) — then a deterministic seed-order
/// merge per cell.
pub fn run(manifest: &Manifest, opts: &RunOptions) -> RunReport {
    let fingerprint = source_fingerprint(&workspace_root());
    let cache = Cache::new(opts.cache_dir.clone(), fingerprint);
    let scale = opts.scale;

    // Phase 1: merged-entry cache lookups, in manifest order.
    let lookups: Vec<(usize, &CellSpec, Option<Json>)> = manifest
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| (i, cell, cache.load(cell, scale)))
        .collect();
    let cached = lookups.iter().filter(|(_, _, r)| r.is_some()).count();
    let misses: Vec<(usize, &CellSpec)> = lookups
        .iter()
        .filter(|(_, _, r)| r.is_none())
        .map(|&(i, cell, _)| (i, cell))
        .collect();

    // Phase 2: honor the resume budget, then expand each missing cell into
    // its shard slots. Shards already in the cache (a previous run crashed
    // or was interrupted after storing them) are resumed, not re-run.
    let budget = opts.max_cells.unwrap_or(misses.len());
    let skipped = misses.len().saturating_sub(budget);
    let to_run = &misses[..misses.len() - skipped];

    let mut works: Vec<Work> = Vec::with_capacity(to_run.len());
    let mut jobs: Vec<ShardJob> = Vec::new();
    for &(i, cell) in to_run {
        let shards = cell.shard_count(scale);
        let mut slots = Vec::with_capacity(shards);
        for shard in 0..shards {
            let slot = cache.load_shard(cell, scale, shard, shards);
            if slot.is_none() {
                jobs.push(ShardJob {
                    cell: i,
                    shard,
                    shards,
                });
            }
            slots.push(slot);
        }
        works.push(Work {
            idx: i,
            cell,
            slots,
            secs: 0.0,
        });
    }

    let done = AtomicUsize::new(0);
    let total_jobs = jobs.len();
    let on_done = |cell_idx: usize, shard: usize, shards: usize, secs: f64| {
        if opts.quiet {
            return;
        }
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        let _ = writeln!(
            std::io::stderr().lock(),
            "[{n:>3}/{total_jobs}] {:<28} s{}/{shards} {secs:>6.1}s",
            manifest.cells[cell_idx].id(),
            shard + 1
        );
    };

    let shard_results: Vec<(usize, usize, Json, Option<String>, f64)> = if jobs.is_empty() {
        Vec::new()
    } else if opts.process_workers > 0 {
        run_pool(
            manifest,
            scale,
            &jobs,
            opts.process_workers,
            opts.worker_exe.as_deref(),
            &cache,
            &on_done,
        )
    } else {
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        } else {
            opts.workers
        };
        let closures: Vec<_> = jobs
            .iter()
            .map(|&job| {
                let cache = &cache;
                let on_done = &on_done;
                move || {
                    let cell = &manifest.cells[job.cell];
                    let started = std::time::Instant::now();
                    let (partial, registry) = cell.execute_shard(scale, job.shard);
                    if let Err(e) = cache.store_shard(
                        cell,
                        scale,
                        job.shard,
                        job.shards,
                        &partial,
                        registry.as_deref(),
                    ) {
                        eprintln!(
                            "warning: could not cache shard {} of {}: {e}",
                            job.shard,
                            cell.id()
                        );
                    }
                    let secs = started.elapsed().as_secs_f64();
                    on_done(job.cell, job.shard, job.shards, secs);
                    (job.cell, job.shard, partial, registry, secs)
                }
            })
            .collect();
        parallel_map_on(closures, workers)
    };
    let shards_executed = shard_results.len();

    // Phase 3: slot the finished shards home, then merge each cell in seed
    // order — the same arithmetic `CellSpec::execute` runs single-process,
    // so the merged result is byte-identical to a run with no farm at all.
    let work_of: HashMap<usize, usize> = works
        .iter()
        .enumerate()
        .map(|(w, work)| (work.idx, w))
        .collect();
    for (cell_idx, shard, partial, registry, secs) in shard_results {
        let w = work_of[&cell_idx];
        works[w].slots[shard] = Some((partial, registry));
        works[w].secs += secs;
    }
    let executed = works.len();

    let mut results: Vec<Option<Json>> = lookups.into_iter().map(|(_, _, r)| r).collect();
    for work in works {
        let shards = work.slots.len();
        let parts: Vec<(Json, Option<String>)> = work
            .slots
            .into_iter()
            .map(|s| s.expect("every shard executed or resumed"))
            .collect();
        let (result, metrics, registry_json) = match work.cell.merge_shards(scale, &parts) {
            Ok(merged) => merged,
            Err(e) => {
                // Corrupt shard entries (e.g. a truncated cache file) are
                // not worth dying over: redo the cell from scratch.
                eprintln!(
                    "warning: could not merge shards of {} ({e}); re-running the cell",
                    work.cell.id()
                );
                work.cell.execute(scale)
            }
        };
        if let Err(e) = cache.store(work.cell, scale, &result) {
            eprintln!("warning: could not cache {}: {e}", work.cell.id());
        }
        if let Some(snapshot) = &registry_json {
            if let Err(e) = cache.store_metrics(work.cell, scale, snapshot) {
                eprintln!(
                    "warning: could not write metrics sidecar for {}: {e}",
                    work.cell.id()
                );
            }
        }
        cache.remove_shards(work.cell, scale, shards);
        if !opts.quiet {
            if let Some(m) = &metrics {
                let rate = if work.secs > 0.0 {
                    m.probe_events as f64 / work.secs
                } else {
                    0.0
                };
                let _ = writeln!(
                    std::io::stderr().lock(),
                    "      {:<28} merged: {} departures, {:.1}M probe events/s",
                    work.cell.id(),
                    m.total_departures(),
                    rate / 1.0e6
                );
            }
        }
        results[work.idx] = Some(result);
    }

    // Phase 4: deterministic merge — manifest order, independent of which
    // worker finished which shard when.
    let cells = manifest
        .cells
        .iter()
        .zip(&results)
        .map(|(cell, result)| {
            Json::obj(vec![
                ("id", Json::Str(cell.id())),
                ("group", Json::Str(cell.group().into())),
                ("params", cell.params()),
                ("result", result.clone().unwrap_or(Json::Null)),
            ])
        })
        .collect();
    let merged = Json::obj(vec![
        ("schema", Json::Int(SCHEMA_VERSION as i64)),
        ("suite", Json::Str(manifest.suite.clone())),
        ("scale", Json::Str(scale_tag(scale))),
        ("complete", Json::Bool(results.iter().all(Option::is_some))),
        ("cells", Json::Arr(cells)),
    ]);

    RunReport {
        merged,
        executed,
        shards_executed,
        cached,
        skipped,
    }
}

/// Writes the Figures-4/5 view CSVs (`fig4_view1.csv` … `fig5_view2.csv`)
/// under `dir` from a merged results document, byte-identical to what the
/// retired `fig45` binary wrote. No-op for suites without fig45 cells.
pub fn write_fig45_csvs(merged: &Json, dir: &std::path::Path) -> std::io::Result<()> {
    let Some(cells) = merged.get("cells").and_then(Json::as_arr) else {
        return Ok(());
    };
    for cell in cells {
        if cell.get("group").and_then(Json::as_str) != Some("fig45") {
            continue;
        }
        let Some(result) = cell.get("result").filter(|r| **r != Json::Null) else {
            continue;
        };
        let fig = match result.get("scheduler").and_then(Json::as_str) {
            Some("BPR") => "fig4",
            Some("WTP") => "fig5",
            _ => continue,
        };
        std::fs::create_dir_all(dir)?;
        let mut v1 = String::from("interval_start_ticks,class1,class2,class3\n");
        for row in result
            .get("view1")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let row = row.as_arr().unwrap_or_default();
            let start = row.first().and_then(Json::as_i64).unwrap_or(0);
            let avgs: Vec<String> = row
                .get(1)
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(|a| a.as_f64().map(|d| format!("{d:.1}")).unwrap_or_default())
                .collect();
            v1.push_str(&format!("{start},{}\n", avgs.join(",")));
        }
        std::fs::write(dir.join(format!("{fig}_view1.csv")), v1)?;
        let mut v2 = String::from("departure_ticks,class,delay_ticks\n");
        for row in result
            .get("view2")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let row = row.as_arr().unwrap_or_default();
            let t = row.first().and_then(Json::as_i64).unwrap_or(0);
            let c = row.get(1).and_then(Json::as_i64).unwrap_or(0);
            let d = row.get(2).and_then(Json::as_f64).unwrap_or(0.0);
            v2.push_str(&format!("{t},{},{d:.1}\n", c + 1));
        }
        std::fs::write(dir.join(format!("{fig}_view2.csv")), v2)?;
    }
    Ok(())
}
