//! The on-disk result cache: one JSON file per cell, keyed by a content
//! hash of (cell parameters, scale, source fingerprint, schema version).
//!
//! # Layout
//!
//! ```text
//! <cache-dir>/<scale-tag>/<cell-id>.json
//! <cache-dir>/<scale-tag>/shards/<cell-id>.s<K>of<N>.json
//! ```
//!
//! where `<scale-tag>` is `quick`, `paper`, `bench`, or `p<punits>s<seeds>`
//! for custom scales, and `<cell-id>` is [`CellSpec::id`]. Each cell file
//! holds `{"key": "<16 hex digits>", "cell": {...params...}, "result":
//! {...}}`.
//!
//! The `shards/` subdirectory is the experiment farm's coordination
//! substrate: shard `K` of a cell split `N` ways lands there the moment a
//! worker finishes it, keyed by the cell key *extended with* `(K, N)`.
//! A crashed or interrupted run resumes by re-running only shards with no
//! valid entry, and once a cell's merged entry is stored its shard files
//! are deleted — the steady state stays one file per cell per scale.
//!
//! # Invalidation rule
//!
//! A stored entry is a hit iff its `key` equals the FNV-1a 64 hash of the
//! cell's canonical parameter JSON, the scale tag, the source fingerprint
//! of the result-relevant crates (see [`crate::fingerprint`]), and the
//! schema version. Change a sweep parameter, the simulation source, or the
//! result schema and the key changes; the stale file is simply overwritten
//! on the next run (the cache never grows beyond one file per cell per
//! scale). Corrupt or unreadable files behave as misses. Shard entries
//! inherit the same rule through the embedded cell key, so no shard can
//! ever be replayed across a source change or a different shard split.

use std::io;
use std::path::{Path, PathBuf};

use experiments::Scale;

use crate::cell::CellSpec;
use crate::fingerprint::Fnv;
use crate::json::Json;

/// Bumped whenever the cell result JSON layout changes, so stale shapes
/// can never be replayed into a newer reader.
pub const SCHEMA_VERSION: u32 = 1;

/// The scale tag used as the cache subdirectory name.
pub fn scale_tag(scale: Scale) -> String {
    match scale {
        Scale::Paper => "paper".into(),
        Scale::Quick => "quick".into(),
        Scale::Bench => "bench".into(),
        Scale::Custom { punits, nseeds } => format!("p{punits}s{nseeds}"),
    }
}

/// A handle on one cache directory bound to one source fingerprint.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    fingerprint: u64,
}

impl Cache {
    /// Opens (without touching the filesystem) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>, fingerprint: u64) -> Cache {
        Cache {
            dir: dir.into(),
            fingerprint,
        }
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content key a valid entry for `cell` at `scale` must carry.
    pub fn key(&self, cell: &CellSpec, scale: Scale) -> u64 {
        let mut h = Fnv::new();
        h.write(cell.params().serialize().as_bytes());
        h.write(b"\0");
        h.write(scale_tag(scale).as_bytes());
        h.write(b"\0");
        h.write(&self.fingerprint.to_le_bytes());
        h.write(&SCHEMA_VERSION.to_le_bytes());
        h.finish()
    }

    fn path(&self, cell: &CellSpec, scale: Scale) -> PathBuf {
        self.dir.join(scale_tag(scale)).join(cell.id() + ".json")
    }

    /// Loads the cached result for `cell`, or `None` on a miss (absent,
    /// unreadable, or carrying a stale key).
    pub fn load(&self, cell: &CellSpec, scale: Scale) -> Option<Json> {
        let text = std::fs::read_to_string(self.path(cell, scale)).ok()?;
        let entry = Json::parse(&text).ok()?;
        let stored_key = entry.get("key")?.as_str()?;
        if stored_key != format!("{:016x}", self.key(cell, scale)) {
            return None;
        }
        entry.get("result").cloned()
    }

    /// Stores `result` for `cell`, overwriting any stale entry.
    ///
    /// The write goes through a same-directory temp file and rename, so an
    /// interrupted run leaves either the old entry or the new one — never
    /// a torn file — and resuming re-runs only genuinely missing cells.
    pub fn store(&self, cell: &CellSpec, scale: Scale, result: &Json) -> io::Result<()> {
        let path = self.path(cell, scale);
        let parent = path.parent().expect("cache path has a parent");
        std::fs::create_dir_all(parent)?;
        let entry = Json::obj(vec![
            ("key", Json::Str(format!("{:016x}", self.key(cell, scale)))),
            ("cell", cell.params()),
            ("result", result.clone()),
        ]);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, entry.serialize())?;
        std::fs::rename(&tmp, &path)
    }

    /// The content key a shard entry must carry: the cell key extended
    /// with the shard coordinates, so a partial can never be replayed into
    /// a different shard split (or a different shard of the same split).
    pub fn shard_key(&self, cell: &CellSpec, scale: Scale, shard: usize, shards: usize) -> u64 {
        let mut h = Fnv::new();
        h.write(&self.key(cell, scale).to_le_bytes());
        h.write(b"\0shard\0");
        h.write(&(shard as u64).to_le_bytes());
        h.write(&(shards as u64).to_le_bytes());
        h.finish()
    }

    fn shard_path(&self, cell: &CellSpec, scale: Scale, shard: usize, shards: usize) -> PathBuf {
        self.dir
            .join(scale_tag(scale))
            .join("shards")
            .join(format!("{}.s{shard}of{shards}.json", cell.id()))
    }

    /// Loads shard `shard` of `shards` for `cell` — the partial result
    /// JSON plus its optional registry snapshot — or `None` on a miss.
    pub fn load_shard(
        &self,
        cell: &CellSpec,
        scale: Scale,
        shard: usize,
        shards: usize,
    ) -> Option<(Json, Option<String>)> {
        let text = std::fs::read_to_string(self.shard_path(cell, scale, shard, shards)).ok()?;
        let entry = Json::parse(&text).ok()?;
        let stored_key = entry.get("key")?.as_str()?;
        if stored_key != format!("{:016x}", self.shard_key(cell, scale, shard, shards)) {
            return None;
        }
        let partial = entry.get("partial")?.clone();
        let registry = match entry.get("registry") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        Some((partial, registry))
    }

    /// Stores one shard's partial (same atomic temp-file discipline as
    /// [`store`](Self::store)), making it visible to resumed runs the
    /// moment the worker that produced it finishes.
    pub fn store_shard(
        &self,
        cell: &CellSpec,
        scale: Scale,
        shard: usize,
        shards: usize,
        partial: &Json,
        registry: Option<&str>,
    ) -> io::Result<()> {
        let path = self.shard_path(cell, scale, shard, shards);
        let parent = path.parent().expect("shard path has a parent");
        std::fs::create_dir_all(parent)?;
        let entry = Json::obj(vec![
            (
                "key",
                Json::Str(format!(
                    "{:016x}",
                    self.shard_key(cell, scale, shard, shards)
                )),
            ),
            ("shard", Json::Int(shard as i64)),
            ("shards", Json::Int(shards as i64)),
            ("partial", partial.clone()),
            (
                "registry",
                registry.map(|s| Json::Str(s.into())).unwrap_or(Json::Null),
            ),
        ]);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, entry.serialize())?;
        std::fs::rename(&tmp, &path)
    }

    /// Best-effort removal of a cell's shard entries once its merged entry
    /// is stored; the steady state stays one file per cell per scale.
    pub fn remove_shards(&self, cell: &CellSpec, scale: Scale, shards: usize) {
        for shard in 0..shards {
            let _ = std::fs::remove_file(self.shard_path(cell, scale, shard, shards));
        }
    }

    /// Writes a cell's metrics-registry snapshot next to its cache entry
    /// as `<cell-id>.metrics.json` (same atomic temp-file discipline).
    ///
    /// Sidecars are artifacts, not cache entries: they carry no content
    /// key and never feed cache hits, so a warm run — which skips the
    /// simulation entirely — leaves the previous snapshot in place. They
    /// also stay out of the merged results document, which must remain
    /// byte-stable across cold and warm runs.
    pub fn store_metrics(&self, cell: &CellSpec, scale: Scale, snapshot: &str) -> io::Result<()> {
        let path = self
            .dir
            .join(scale_tag(scale))
            .join(cell.id() + ".metrics.json");
        std::fs::create_dir_all(path.parent().expect("cache path has a parent"))?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, snapshot)?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(name: &str, fingerprint: u64) -> Cache {
        let dir = std::env::temp_dir().join(format!("pdd_cache_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::new(dir, fingerprint)
    }

    fn cell() -> CellSpec {
        CellSpec::Plr { sigma: 2.0 }
    }

    #[test]
    fn store_then_load_hits() {
        let cache = temp_cache("hit", 7);
        let result = Json::obj(vec![("x", Json::Int(1))]);
        assert!(cache.load(&cell(), Scale::Bench).is_none(), "cold miss");
        cache.store(&cell(), Scale::Bench, &result).unwrap();
        assert_eq!(cache.load(&cell(), Scale::Bench), Some(result));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cell_change_misses() {
        let cache = temp_cache("cellchange", 7);
        let result = Json::Int(1);
        cache.store(&cell(), Scale::Bench, &result).unwrap();
        // A different cell of the same group stores under a different file.
        let other = CellSpec::Plr { sigma: 4.0 };
        assert!(cache.load(&other, Scale::Bench).is_none());
        // Same id, different parameters ⇒ different key ⇒ miss. Simulate a
        // parameter change by writing `other`'s entry over `cell()`'s file.
        let dir = cache.dir().join(scale_tag(Scale::Bench));
        std::fs::copy(
            dir.join(other.id() + ".json"),
            dir.join(cell().id() + ".json"),
        )
        .ok();
        assert_ne!(
            cache.key(&cell(), Scale::Bench),
            cache.key(&other, Scale::Bench)
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn scale_and_fingerprint_changes_miss() {
        let cache = temp_cache("fp", 7);
        let result = Json::Int(1);
        cache.store(&cell(), Scale::Bench, &result).unwrap();
        // Same dir, same cell, different scale ⇒ different subdirectory.
        assert!(cache.load(&cell(), Scale::Quick).is_none());
        // Same dir, same cell, different source fingerprint ⇒ key mismatch.
        let other_sources = Cache::new(cache.dir().to_path_buf(), 8);
        assert!(other_sources.load(&cell(), Scale::Bench).is_none());
        // And the original still hits.
        assert!(cache.load(&cell(), Scale::Bench).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = temp_cache("corrupt", 7);
        cache.store(&cell(), Scale::Bench, &Json::Int(1)).unwrap();
        let path = cache
            .dir()
            .join(scale_tag(Scale::Bench))
            .join(cell().id() + ".json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(cache.load(&cell(), Scale::Bench).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn metrics_sidecars_land_next_to_entries() {
        let cache = temp_cache("sidecar", 7);
        let snapshot = "{\"schema\":\"propdiff-metrics-v1\"}";
        cache
            .store_metrics(&cell(), Scale::Bench, snapshot)
            .unwrap();
        let path = cache
            .dir()
            .join(scale_tag(Scale::Bench))
            .join(cell().id() + ".metrics.json");
        assert_eq!(std::fs::read_to_string(path).unwrap(), snapshot);
        // The sidecar is not a cache entry.
        assert!(cache.load(&cell(), Scale::Bench).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn shard_entries_round_trip_and_respect_their_split() {
        let cache = temp_cache("shard", 7);
        let partial = Json::obj(vec![("rows", Json::Arr(vec![Json::Int(3)]))]);
        assert!(cache.load_shard(&cell(), Scale::Bench, 1, 4).is_none());
        cache
            .store_shard(&cell(), Scale::Bench, 1, 4, &partial, Some("{\"x\":1}"))
            .unwrap();
        assert_eq!(
            cache.load_shard(&cell(), Scale::Bench, 1, 4),
            Some((partial.clone(), Some("{\"x\":1}".into())))
        );
        // Same shard index under a different split is a different entry.
        assert!(cache.load_shard(&cell(), Scale::Bench, 1, 2).is_none());
        // The merged-entry namespace is untouched.
        assert!(cache.load(&cell(), Scale::Bench).is_none());
        // A registry-less shard loads back with `None`.
        cache
            .store_shard(&cell(), Scale::Bench, 0, 4, &partial, None)
            .unwrap();
        assert_eq!(
            cache.load_shard(&cell(), Scale::Bench, 0, 4),
            Some((partial, None))
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn remove_shards_clears_the_split() {
        let cache = temp_cache("shardrm", 7);
        let partial = Json::Int(1);
        for shard in 0..3 {
            cache
                .store_shard(&cell(), Scale::Bench, shard, 3, &partial, None)
                .unwrap();
        }
        cache.remove_shards(&cell(), Scale::Bench, 3);
        for shard in 0..3 {
            assert!(cache.load_shard(&cell(), Scale::Bench, shard, 3).is_none());
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn scale_tags_are_distinct() {
        assert_eq!(scale_tag(Scale::Quick), "quick");
        assert_eq!(
            scale_tag(Scale::Custom {
                punits: 12_000,
                nseeds: 2
            }),
            "p12000s2"
        );
    }
}
