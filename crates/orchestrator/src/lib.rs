//! # orchestrator — declarative, cached, parallel experiment runs
//!
//! Every figure, table, and ablation in the reproduction is expressed as a
//! cell in a sweep [`manifest`]: one independent unit of simulation work
//! (one utilization point of Figure 1, one Table-1 topology configuration,
//! one PLR σ target, …). The [`runner`] shards a manifest's uncached cells
//! across worker threads via the experiment crate's work-stealing
//! `parallel_map_on`, stores each cell's result in the on-disk [`cache`]
//! keyed by a content hash of (cell parameters, scale, source
//! [`fingerprint`], schema version), and merges everything back in manifest
//! order — so the merged JSON is byte-stable regardless of thread count and
//! a warm re-run does zero simulation work.
//!
//! Two binaries front this crate:
//!
//! - `propdiff-run` — the cached, parallel path (`run`, `render`, `list`
//!   subcommands; see its `--help`).
//! - `all_experiments` — the sequential compatibility wrapper, printing the
//!   same reports the retired per-figure binaries printed.
//!
//! The [`render`] module closes the docs loop: measured-number tables in
//! `EXPERIMENTS.md` live between `<!-- generated:NAME -->` markers and are
//! regenerated from cached cell results, so the document cannot silently
//! drift from the code.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cell;
pub mod fingerprint;
pub mod json;
pub mod manifest;
pub mod render;
pub mod runner;
