//! # orchestrator — declarative, cached, parallel experiment runs
//!
//! Every figure, table, and ablation in the reproduction is expressed as a
//! cell in a sweep [`manifest`]: one independent unit of simulation work
//! (one utilization point of Figure 1, one Table-1 topology configuration,
//! one PLR σ target, …). Seed-swept cells further split into deterministic
//! per-seed *shards* (`CellSpec::execute_shard` / `merge_shards`), and the
//! [`runner`] executes uncached shards either on worker threads (the
//! experiment crate's work-stealing `parallel_map_on`) or — with
//! `--workers N` — on a farm of separate `propdiff-run worker` processes
//! fed over the stdin/stdout JSONL [`protocol`] by the parent-side pool in
//! [`worker`]. Both paths run the same shard arithmetic and the same
//! seed-order merge, so the merged JSON is byte-identical at any worker
//! count and interleaving.
//!
//! Results land in the on-disk [`cache`] keyed by a content hash of (cell
//! parameters, scale, source [`fingerprint`], schema version); shard-level
//! entries under the same key family make the cache the farm's
//! coordination substrate — exactly-once work, crash-resume, and zero-work
//! warm merges. A warm re-run does zero simulation work.
//!
//! Two binaries front this crate:
//!
//! - `propdiff-run` — the cached, parallel path (`run`, `render`, `list`
//!   subcommands; see its `--help`).
//! - `all_experiments` — the sequential compatibility wrapper, printing the
//!   same reports the retired per-figure binaries printed.
//!
//! The [`render`] module closes the docs loop: measured-number tables in
//! `EXPERIMENTS.md` live between `<!-- generated:NAME -->` markers and are
//! regenerated from cached cell results, so the document cannot silently
//! drift from the code.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cell;
pub mod fingerprint;
pub mod json;
pub mod manifest;
pub mod protocol;
pub mod render;
pub mod runner;
pub mod worker;
