//! Declarative sweep manifests: every figure, table, and ablation as a
//! list of [`CellSpec`]s built from the experiment crate's own sweep
//! constants, so the manifest can never drift from the harness.

use experiments::{ablations, dynamics, fig1, fig2, mesh, monitor, rank};
use pdd::sched::SchedulerKind;

use crate::cell::CellSpec;

/// A named sweep: the unit `propdiff-run` executes.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The suite name this manifest was built from.
    pub suite: String,
    /// Cells in canonical (merge) order.
    pub cells: Vec<CellSpec>,
}

/// The suite names [`suite`] accepts, in canonical order.
pub const SUITES: [&str; 20] = [
    "all",
    "figures",
    "ablations",
    "fig1",
    "fig2",
    "fig3",
    "fig45",
    "table1",
    "shootout",
    "feasibility",
    "starvation",
    "moderate-load",
    "plr",
    "additive",
    "analytic",
    "mixed-path",
    "dynamics",
    "rank",
    "monitor",
    "mesh",
];

fn fig1_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for sdp_ratio in [2.0, 4.0] {
        for &utilization in &fig1::UTILIZATIONS {
            cells.push(CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            });
        }
    }
    cells
}

fn fig2_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for sdp_ratio in [2.0, 4.0] {
        for dist in 0..fig2::DISTRIBUTIONS.len() {
            cells.push(CellSpec::Fig2 { sdp_ratio, dist });
        }
    }
    cells
}

fn fig3_cells() -> Vec<CellSpec> {
    vec![
        CellSpec::Fig3 {
            kind: SchedulerKind::Wtp,
        },
        CellSpec::Fig3 {
            kind: SchedulerKind::Bpr,
        },
    ]
}

fn fig45_cells() -> Vec<CellSpec> {
    vec![
        CellSpec::Fig45 {
            kind: SchedulerKind::Bpr,
        },
        CellSpec::Fig45 {
            kind: SchedulerKind::Wtp,
        },
    ]
}

fn table1_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for k_hops in [4usize, 8] {
        for utilization in [0.85, 0.95] {
            for flow_len in [10u32, 100] {
                for flow_rate_kbps in [50.0, 200.0] {
                    cells.push(CellSpec::Table1 {
                        k_hops,
                        utilization,
                        flow_len,
                        flow_rate_kbps,
                    });
                }
            }
        }
    }
    cells
}

fn feasibility_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &utilization in &ablations::FEASIBILITY_UTILS {
        for &spacing in &ablations::FEASIBILITY_SPACINGS {
            cells.push(CellSpec::Feasibility {
                utilization,
                spacing,
            });
        }
    }
    cells
}

fn moderate_load_cells() -> Vec<CellSpec> {
    ablations::MODERATE_LOAD_UTILS
        .iter()
        .map(|&utilization| CellSpec::ModerateLoad { utilization })
        .collect()
}

fn plr_cells() -> Vec<CellSpec> {
    ablations::PLR_SIGMAS
        .iter()
        .map(|&sigma| CellSpec::Plr { sigma })
        .collect()
}

fn mixed_path_cells() -> Vec<CellSpec> {
    (0..ablations::mixed_path_scenarios().len())
        .map(|scenario| CellSpec::MixedPath { scenario })
        .collect()
}

fn dynamics_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &kind in &dynamics::SCHEDULERS {
        for &perturbation in &dynamics::PERTURBATIONS {
            cells.push(CellSpec::Dynamics { kind, perturbation });
        }
    }
    cells
}

fn rank_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &sdp_ratio in &rank::SDP_RATIOS {
        for &utilization in &fig1::UTILIZATIONS {
            cells.push(CellSpec::Rank {
                sdp_ratio,
                utilization,
            });
        }
    }
    cells
}

fn monitor_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &kind in &dynamics::SCHEDULERS {
        for &window_punits in &monitor::WINDOW_LADDER {
            cells.push(CellSpec::Monitor {
                kind,
                window_punits,
            });
        }
    }
    cells
}

fn mesh_cells() -> Vec<CellSpec> {
    mesh::SCHEDULERS
        .iter()
        .map(|&kind| CellSpec::Mesh { kind })
        .collect()
}

fn figures_cells() -> Vec<CellSpec> {
    let mut cells = fig1_cells();
    cells.extend(fig2_cells());
    cells.extend(fig3_cells());
    cells.extend(fig45_cells());
    cells.extend(table1_cells());
    cells
}

fn ablation_cells() -> Vec<CellSpec> {
    let mut cells = vec![CellSpec::Shootout];
    cells.extend(feasibility_cells());
    cells.push(CellSpec::Starvation);
    cells.extend(moderate_load_cells());
    cells.extend(plr_cells());
    cells.push(CellSpec::Additive);
    cells.push(CellSpec::Analytic);
    cells.extend(mixed_path_cells());
    cells.extend(dynamics_cells());
    cells.extend(rank_cells());
    cells.extend(monitor_cells());
    cells
}

/// Builds the manifest for a suite name, or `None` for an unknown name.
///
/// `figures` covers Figures 1–5 + Table 1; `ablations` the eight ablation
/// studies plus the dynamics reconvergence study, the LSTF rank probe, and
/// the online conformance-monitor study; `mesh` the fat-tree decomposition
/// study; `all` everything; the remaining names select one experiment each.
pub fn suite(name: &str) -> Option<Manifest> {
    let cells = match name {
        "all" => {
            let mut cells = figures_cells();
            cells.extend(ablation_cells());
            cells.extend(mesh_cells());
            cells
        }
        "figures" => figures_cells(),
        "ablations" => ablation_cells(),
        "fig1" => fig1_cells(),
        "fig2" => fig2_cells(),
        "fig3" => fig3_cells(),
        "fig45" => fig45_cells(),
        "table1" => table1_cells(),
        "shootout" => vec![CellSpec::Shootout],
        "feasibility" => feasibility_cells(),
        "starvation" => vec![CellSpec::Starvation],
        "moderate-load" => moderate_load_cells(),
        "plr" => plr_cells(),
        "additive" => vec![CellSpec::Additive],
        "analytic" => vec![CellSpec::Analytic],
        "mixed-path" => mixed_path_cells(),
        "dynamics" => dynamics_cells(),
        "rank" => rank_cells(),
        "monitor" => monitor_cells(),
        "mesh" => mesh_cells(),
        _ => return None,
    };
    Some(Manifest {
        suite: name.to_string(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_name_resolves() {
        for name in SUITES {
            let m = suite(name).unwrap_or_else(|| panic!("suite {name}"));
            assert!(!m.cells.is_empty(), "{name} is empty");
        }
        assert!(suite("nope").is_none());
    }

    #[test]
    fn all_is_figures_plus_ablations_plus_mesh() {
        let all = suite("all").unwrap().cells.len();
        let figures = suite("figures").unwrap().cells.len();
        let ablations = suite("ablations").unwrap().cells.len();
        let mesh = suite("mesh").unwrap().cells.len();
        assert_eq!(all, figures + ablations + mesh);
        // The sweep sizes the per-figure binaries used to run.
        assert_eq!(suite("fig1").unwrap().cells.len(), 14);
        assert_eq!(suite("fig2").unwrap().cells.len(), 14);
        assert_eq!(suite("table1").unwrap().cells.len(), 16);
        assert_eq!(suite("feasibility").unwrap().cells.len(), 18);
        assert_eq!(suite("dynamics").unwrap().cells.len(), 4);
        assert_eq!(suite("rank").unwrap().cells.len(), 14);
        assert_eq!(suite("monitor").unwrap().cells.len(), 8);
        assert_eq!(figures, 48);
        assert_eq!(ablations, 60);
        assert_eq!(mesh, 3);
    }
}
