//! One cell of the experiment sweep: its identity, its parameters as
//! canonical JSON (the cache key input), and its execution.

use experiments::{
    ablations, dynamics, fig1, fig2, fig3, fig45, mesh, monitor, rank, table1, Scale,
};
use pdd::netsim::StudyBConfig;
use pdd::sched::SchedulerKind;
use pdd::telemetry::{ClassMetrics, CountingProbe, MetricsRegistry, MetricsReport};

use crate::json::Json;

/// One independently runnable, independently cacheable unit of work.
///
/// Cell granularity matches the parallel-job granularity the per-figure
/// binaries already used, so a sweep's cells shard across threads exactly
/// as before — the difference is that each result now lands in the cache
/// under its own key.
#[derive(Debug, Clone, PartialEq)]
pub enum CellSpec {
    /// One (SDP spacing, utilization) point of Figure 1 (WTP and BPR).
    Fig1 {
        /// Successive-class spacing ratio (2 for panel a, 4 for panel b).
        sdp_ratio: f64,
        /// Link utilization ρ.
        utilization: f64,
    },
    /// One (SDP spacing, load split) point of Figure 2 at ρ = 0.95.
    Fig2 {
        /// Successive-class spacing ratio.
        sdp_ratio: f64,
        /// Index into [`fig2::DISTRIBUTIONS`].
        dist: usize,
    },
    /// One scheduler's full τ ladder of Figure 3.
    Fig3 {
        /// The scheduler measured.
        kind: SchedulerKind,
    },
    /// One scheduler's microscopic views (Figure 4 for BPR, 5 for WTP).
    Fig45 {
        /// The scheduler measured.
        kind: SchedulerKind,
    },
    /// One (K, ρ, F, R_u) Study-B cell of Table 1.
    Table1 {
        /// Hop count K.
        k_hops: usize,
        /// Link utilization ρ.
        utilization: f64,
        /// User-flow length F in packets.
        flow_len: u32,
        /// User-flow rate R_u in kbps.
        flow_rate_kbps: f64,
    },
    /// The all-scheduler shoot-out ablation (one cell).
    Shootout,
    /// One (utilization, spacing) probe of the Eq. (7) feasibility region.
    Feasibility {
        /// Link utilization ρ.
        utilization: f64,
        /// DDP spacing ratio probed.
        spacing: f64,
    },
    /// The Proposition-2 starvation ablation (one pure cell, no scale).
    Starvation,
    /// One utilization point of the moderate-load undershoot ablation.
    ModerateLoad {
        /// Link utilization ρ.
        utilization: f64,
    },
    /// One target loss-spacing point of the PLR ablation.
    Plr {
        /// Target loss ratio σ₁/σ₂.
        sigma: f64,
    },
    /// The additive-differentiation (Eq. 3) ablation (one cell).
    Additive,
    /// The M/G/1 analytic-validation ablation (one cell).
    Analytic,
    /// One deployment scenario of the mixed-path ablation.
    MixedPath {
        /// Index into [`ablations::mixed_path_scenarios`].
        scenario: usize,
    },
    /// One (scheduler, perturbation) reconvergence cell of the dynamics
    /// study.
    Dynamics {
        /// The scheduler measured.
        kind: SchedulerKind,
        /// The perturbation injected at mid-horizon.
        perturbation: dynamics::Perturbation,
    },
    /// One (SDP spacing, utilization) point of the LSTF universality probe
    /// (static-slack LSTF rank core vs WTP).
    Rank {
        /// Successive-class spacing ratio (the target ratio).
        sdp_ratio: f64,
        /// Link utilization ρ.
        utilization: f64,
    },
    /// One (scheduler, window) cell of the online conformance-monitor
    /// study (SDP swap at mid-run, violations vs monitoring timescale).
    Monitor {
        /// The scheduler measured.
        kind: SchedulerKind,
        /// Monitoring window width in p-units.
        window_punits: u64,
    },
    /// One scheduler's decomposed fat-tree fabric cell of the mesh study
    /// (links dealt round-robin across [`mesh::SHARDS`] process shards).
    Mesh {
        /// The scheduler every link runs.
        kind: SchedulerKind,
    },
}

/// Formats an f64 parameter compactly and losslessly for ids/keys.
fn fmt_f64(v: f64) -> String {
    // `Display` prints the shortest round-tripping decimal, so distinct
    // parameters can't collide.
    format!("{v}")
}

impl CellSpec {
    /// The experiment group this cell belongs to (stable slug).
    pub fn group(&self) -> &'static str {
        match self {
            CellSpec::Fig1 { .. } => "fig1",
            CellSpec::Fig2 { .. } => "fig2",
            CellSpec::Fig3 { .. } => "fig3",
            CellSpec::Fig45 { .. } => "fig45",
            CellSpec::Table1 { .. } => "table1",
            CellSpec::Shootout => "shootout",
            CellSpec::Feasibility { .. } => "feasibility",
            CellSpec::Starvation => "starvation",
            CellSpec::ModerateLoad { .. } => "moderate-load",
            CellSpec::Plr { .. } => "plr",
            CellSpec::Additive => "additive",
            CellSpec::Analytic => "analytic",
            CellSpec::MixedPath { .. } => "mixed-path",
            CellSpec::Dynamics { .. } => "dynamics",
            CellSpec::Rank { .. } => "rank",
            CellSpec::Monitor { .. } => "monitor",
            CellSpec::Mesh { .. } => "mesh",
        }
    }

    /// A unique, filesystem-safe identifier (the cache file stem).
    pub fn id(&self) -> String {
        let sanitize = |s: String| s.replace('.', "_");
        match self {
            CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            } => sanitize(format!(
                "fig1-s{}-u{}",
                fmt_f64(*sdp_ratio),
                fmt_f64(*utilization)
            )),
            CellSpec::Fig2 { sdp_ratio, dist } => {
                sanitize(format!("fig2-s{}-d{dist}", fmt_f64(*sdp_ratio)))
            }
            CellSpec::Fig3 { kind } => format!("fig3-{}", kind_slug(*kind)),
            CellSpec::Fig45 { kind } => format!("fig45-{}", kind_slug(*kind)),
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => sanitize(format!(
                "table1-k{k_hops}-u{}-f{flow_len}-r{}",
                fmt_f64(*utilization),
                fmt_f64(*flow_rate_kbps)
            )),
            CellSpec::Shootout => "shootout".into(),
            CellSpec::Feasibility {
                utilization,
                spacing,
            } => sanitize(format!(
                "feasibility-u{}-s{}",
                fmt_f64(*utilization),
                fmt_f64(*spacing)
            )),
            CellSpec::Starvation => "starvation".into(),
            CellSpec::ModerateLoad { utilization } => {
                sanitize(format!("moderate-load-u{}", fmt_f64(*utilization)))
            }
            CellSpec::Plr { sigma } => sanitize(format!("plr-s{}", fmt_f64(*sigma))),
            CellSpec::Additive => "additive".into(),
            CellSpec::Analytic => "analytic".into(),
            CellSpec::MixedPath { scenario } => format!("mixed-path-{scenario}"),
            CellSpec::Dynamics { kind, perturbation } => {
                format!("dynamics-{}-{}", kind_slug(*kind), perturbation.name())
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => sanitize(format!(
                "rank-s{}-u{}",
                fmt_f64(*sdp_ratio),
                fmt_f64(*utilization)
            )),
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                format!("monitor-{}-w{window_punits}", kind_slug(*kind))
            }
            CellSpec::Mesh { kind } => format!("mesh-{}", kind_slug(*kind)),
        }
    }

    /// The cell's parameters as canonical JSON — the manifest half of the
    /// cache key. Any change here (new parameter, different value) changes
    /// the key and misses the cache.
    pub fn params(&self) -> Json {
        let mut pairs = vec![("group", Json::Str(self.group().into()))];
        match self {
            CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            } => {
                pairs.push(("sdp_ratio", Json::num(*sdp_ratio)));
                pairs.push(("utilization", Json::num(*utilization)));
            }
            CellSpec::Fig2 { sdp_ratio, dist } => {
                pairs.push(("sdp_ratio", Json::num(*sdp_ratio)));
                pairs.push(("dist", Json::Int(*dist as i64)));
                pairs.push(("fractions", Json::nums(&fig2::DISTRIBUTIONS[*dist])));
            }
            CellSpec::Fig3 { kind } | CellSpec::Fig45 { kind } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
            }
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => {
                pairs.push(("k_hops", Json::Int(*k_hops as i64)));
                pairs.push(("utilization", Json::num(*utilization)));
                pairs.push(("flow_len", Json::Int(*flow_len as i64)));
                pairs.push(("flow_rate_kbps", Json::num(*flow_rate_kbps)));
            }
            CellSpec::Feasibility {
                utilization,
                spacing,
            } => {
                pairs.push(("utilization", Json::num(*utilization)));
                pairs.push(("spacing", Json::num(*spacing)));
            }
            CellSpec::ModerateLoad { utilization } => {
                pairs.push(("utilization", Json::num(*utilization)));
            }
            CellSpec::Plr { sigma } => pairs.push(("sigma", Json::num(*sigma))),
            CellSpec::MixedPath { scenario } => {
                pairs.push(("scenario", Json::Int(*scenario as i64)));
            }
            CellSpec::Dynamics { kind, perturbation } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
                pairs.push(("perturbation", Json::Str(perturbation.name().into())));
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => {
                pairs.push(("sdp_ratio", Json::num(*sdp_ratio)));
                pairs.push(("utilization", Json::num(*utilization)));
            }
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
                pairs.push(("window_punits", Json::Int(*window_punits as i64)));
            }
            CellSpec::Mesh { kind } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
                let d = mesh::dims(Scale::Quick);
                // The fabric dimensions are scale-derived at execution
                // time; keying the quick-scale shape here means any change
                // to the generator invalidates cached results.
                pairs.push(("fat_tree_k", Json::Int(d.k as i64)));
                pairs.push(("probe_packets", Json::Int(mesh::PROBE_PACKETS as i64)));
            }
            CellSpec::Shootout | CellSpec::Starvation | CellSpec::Additive | CellSpec::Analytic => {
            }
        }
        Json::obj(pairs)
    }

    /// How many shards [`execute`](Self::execute) splits into at `scale`.
    ///
    /// Seed-sweep cells shard one-seed-per-shard; everything else is a
    /// single shard. The shard count is part of the shard-cache key, so a
    /// scale change (different seed list) can never replay mismatched
    /// partials.
    pub fn shard_count(&self, scale: Scale) -> usize {
        match self {
            CellSpec::Fig1 { .. }
            | CellSpec::Fig2 { .. }
            | CellSpec::Fig3 { .. }
            | CellSpec::Dynamics { .. }
            | CellSpec::Rank { .. }
            | CellSpec::Monitor { .. } => scale.seeds().len(),
            // Mesh cells shard by link (round-robin), not by seed.
            CellSpec::Mesh { .. } => mesh::SHARDS,
            _ => 1,
        }
    }

    /// Runs one shard of the cell, returning the shard's partial result as
    /// JSON plus — for metered cells — its `propdiff-metrics-v1` registry
    /// snapshot.
    ///
    /// Shard partials are transport-safe: they round-trip through
    /// [`Json`] serialization (the worker wire format and the shard cache)
    /// without changing any value, so merging shipped partials is
    /// byte-identical to merging in-memory ones.
    pub fn execute_shard(&self, scale: Scale, shard: usize) -> (Json, Option<String>) {
        let shards = self.shard_count(scale);
        assert!(
            shard < shards,
            "shard {shard} out of range for {} ({shards} shards)",
            self.id()
        );
        match self {
            CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            } => {
                let seed = scale.seeds()[shard];
                let mut probe = CountingProbe::new(4);
                let rows =
                    fig1::cell_seed_probed(*sdp_ratio, *utilization, scale, seed, &mut probe);
                (
                    Json::obj(vec![("rows", rows_json(&rows))]),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Fig2 { sdp_ratio, dist } => {
                let seed = scale.seeds()[shard];
                let mut probe = CountingProbe::new(4);
                let rows = fig2::cell_seed_probed(
                    *sdp_ratio,
                    fig2::DISTRIBUTIONS[*dist],
                    scale,
                    seed,
                    &mut probe,
                );
                (
                    Json::obj(vec![("rows", rows_json(&rows))]),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => {
                let seed = scale.seeds()[shard];
                let mut probe = CountingProbe::new(4);
                let rows =
                    rank::cell_seed_probed(*sdp_ratio, *utilization, scale, seed, &mut probe);
                (
                    Json::obj(vec![("rows", rows_json(&rows))]),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Fig3 { kind } => {
                let seed = scale.seeds()[shard];
                (
                    Json::obj(vec![(
                        "rows",
                        rows_json(&fig3::cell_seed(*kind, scale, seed)),
                    )]),
                    None,
                )
            }
            CellSpec::Dynamics { kind, perturbation } => {
                let seed = scale.seeds()[shard];
                let times = dynamics::cell_seed(*kind, *perturbation, scale, seed);
                let times = times
                    .iter()
                    .map(|t| t.map(|v| Json::Int(v as i64)).unwrap_or(Json::Null))
                    .collect();
                (Json::obj(vec![("times", Json::Arr(times))]), None)
            }
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                let seed = scale.seeds()[shard];
                let (s, registry) = monitor::cell_seed_metered(*kind, *window_punits, scale, seed);
                (
                    Json::obj(vec![
                        ("windows_closed", Json::Int(s.windows_closed as i64)),
                        ("pairs_evaluated", Json::Int(s.pairs_evaluated as i64)),
                        ("steady_violations", Json::Int(s.steady_violations as i64)),
                        (
                            "transient_violations",
                            Json::Int(s.transient_violations as i64),
                        ),
                        ("inversions", Json::Int(s.inversions as i64)),
                        ("quiet_punits", Json::num(s.quiet_punits)),
                        ("max_drift", Json::num(s.max_drift)),
                    ]),
                    Some(registry.to_json()),
                )
            }
            CellSpec::Mesh { kind } => {
                let s = mesh::cell_shard(*kind, scale, shard, mesh::SHARDS);
                (mesh_shard_json(&s), None)
            }
            _ => self.execute_monolithic(scale),
        }
    }

    /// Merges one partial per shard (**in shard order** — shard k is seed
    /// k, and every seed fold is seed-ordered) into the cell's final
    /// result JSON, its progress-report snapshot (probed cells; its
    /// `wall_secs` is zero — the runner supplies wall time), and its
    /// merged metrics sidecar.
    ///
    /// Errors on a shard-count mismatch or partials that don't decode —
    /// the caller treats that as a cache miss and re-executes.
    pub fn merge_shards(
        &self,
        scale: Scale,
        shards: &[(Json, Option<String>)],
    ) -> Result<(Json, Option<MetricsReport>, Option<String>), String> {
        let want = self.shard_count(scale);
        if shards.len() != want {
            return Err(format!(
                "{}: {} shard partials, expected {want}",
                self.id(),
                shards.len()
            ));
        }
        match self {
            CellSpec::Fig1 { utilization, .. } => {
                let per_seed = decode_shard_rows(shards)?;
                let row = fig1::merge_seeds(*utilization, &per_seed);
                let registry = fold_registries(self, shards)?;
                Ok((
                    Json::obj(vec![
                        ("utilization", Json::num(row.utilization)),
                        ("wtp", Json::nums(&row.wtp)),
                        ("bpr", Json::nums(&row.bpr)),
                    ]),
                    Some(report_from_registry(&registry, 4)),
                    Some(registry.to_json()),
                ))
            }
            CellSpec::Fig2 { dist, .. } => {
                let per_seed = decode_shard_rows(shards)?;
                let row = fig2::merge_seeds(fig2::DISTRIBUTIONS[*dist], &per_seed);
                let registry = fold_registries(self, shards)?;
                Ok((
                    Json::obj(vec![
                        ("fractions", Json::nums(&row.fractions)),
                        ("wtp", Json::nums(&row.wtp)),
                        ("bpr", Json::nums(&row.bpr)),
                    ]),
                    Some(report_from_registry(&registry, 4)),
                    Some(registry.to_json()),
                ))
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => {
                let per_seed = decode_shard_rows(shards)?;
                let row = rank::merge_seeds(*sdp_ratio, *utilization, &per_seed);
                let registry = fold_registries(self, shards)?;
                Ok((
                    Json::obj(vec![
                        ("sdp_ratio", Json::num(row.sdp_ratio)),
                        ("utilization", Json::num(row.utilization)),
                        ("lstf", Json::nums(&row.lstf)),
                        ("wtp", Json::nums(&row.wtp)),
                    ]),
                    Some(report_from_registry(&registry, 4)),
                    Some(registry.to_json()),
                ))
            }
            CellSpec::Fig3 { kind } => {
                let per_seed = decode_shard_rows(shards)?;
                let results = fig3::merge_seeds(*kind, scale, &per_seed);
                let taus = results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("tau_punits", Json::Int(r.tau_punits as i64)),
                            ("five_number", Json::nums(&r.five_number)),
                            ("intervals", Json::Int(r.intervals as i64)),
                        ])
                    })
                    .collect();
                Ok((
                    Json::obj(vec![
                        ("scheduler", Json::Str(kind.name().into())),
                        ("taus", Json::Arr(taus)),
                    ]),
                    None,
                    None,
                ))
            }
            CellSpec::Dynamics { kind, perturbation } => {
                let per_seed: Vec<Vec<Option<u64>>> = shards
                    .iter()
                    .map(|(p, _)| {
                        let arr = p
                            .get("times")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("{}: shard lacks `times`", self.id()))?;
                        arr.iter()
                            .map(|t| match t {
                                Json::Null => Ok(None),
                                other => other
                                    .as_i64()
                                    .map(|v| Some(v as u64))
                                    .ok_or_else(|| format!("{}: bad settle time", self.id())),
                            })
                            .collect()
                    })
                    .collect::<Result<_, String>>()?;
                let row = dynamics::merge_seeds(*kind, *perturbation, &per_seed);
                let pairs = row
                    .mean_settle_punits
                    .iter()
                    .zip(&row.settled)
                    .map(|(mean, &settled)| {
                        Json::obj(vec![
                            (
                                "mean_settle_punits",
                                mean.map(Json::num).unwrap_or(Json::Null),
                            ),
                            ("settled", Json::Int(settled as i64)),
                        ])
                    })
                    .collect();
                Ok((
                    Json::obj(vec![
                        ("scheduler", Json::Str(row.scheduler.name().into())),
                        ("perturbation", Json::Str(row.perturbation.name().into())),
                        ("seeds", Json::Int(row.seeds as i64)),
                        ("pairs", Json::Arr(pairs)),
                        (
                            "headline_punits",
                            row.headline_punits().map(Json::num).unwrap_or(Json::Null),
                        ),
                    ]),
                    None,
                    None,
                ))
            }
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                let per_seed: Vec<(monitor::MonitorSeed, MetricsRegistry)> = shards
                    .iter()
                    .map(|(p, r)| {
                        let text = r
                            .as_deref()
                            .ok_or_else(|| format!("{}: shard lacks a registry", self.id()))?;
                        let registry = MetricsRegistry::from_json(text)
                            .map_err(|e| format!("{}: bad shard registry: {e}", self.id()))?;
                        let int = |field: &str| -> Result<i64, String> {
                            p.get(field)
                                .and_then(Json::as_i64)
                                .ok_or_else(|| format!("{}: shard lacks `{field}`", self.id()))
                        };
                        let num = |field: &str| -> Result<f64, String> {
                            match p.get(field) {
                                Some(Json::Null) => Ok(f64::NAN),
                                Some(v) => v
                                    .as_f64()
                                    .ok_or_else(|| format!("{}: bad `{field}`", self.id())),
                                None => Err(format!("{}: shard lacks `{field}`", self.id())),
                            }
                        };
                        Ok((
                            monitor::MonitorSeed {
                                windows_closed: int("windows_closed")? as u64,
                                pairs_evaluated: int("pairs_evaluated")? as u64,
                                steady_violations: int("steady_violations")? as usize,
                                transient_violations: int("transient_violations")? as usize,
                                inversions: int("inversions")? as usize,
                                quiet_punits: num("quiet_punits")?,
                                max_drift: num("max_drift")?,
                            },
                            registry,
                        ))
                    })
                    .collect::<Result<_, String>>()?;
                let (row, registry) = monitor::merge_seeds(*kind, *window_punits, &per_seed);
                Ok((
                    Json::obj(vec![
                        ("scheduler", Json::Str(row.scheduler.name().into())),
                        ("window_punits", Json::Int(row.window_punits as i64)),
                        ("seeds", Json::Int(row.seeds as i64)),
                        ("windows_closed", Json::Int(row.windows_closed as i64)),
                        ("pairs_evaluated", Json::Int(row.pairs_evaluated as i64)),
                        ("steady_violations", Json::Int(row.steady_violations as i64)),
                        (
                            "transient_violations",
                            Json::Int(row.transient_violations as i64),
                        ),
                        ("inversions", Json::Int(row.inversions as i64)),
                        ("violation_rate", Json::num(row.violation_rate())),
                        ("mean_quiet_punits", Json::num(row.mean_quiet_punits)),
                        ("max_drift", Json::num(row.max_drift)),
                    ]),
                    None,
                    Some(registry.to_json()),
                ))
            }
            CellSpec::Mesh { kind } => {
                let parts: Vec<mesh::MeshShard> = shards
                    .iter()
                    .map(|(p, _)| decode_mesh_shard(p, &self.id()))
                    .collect::<Result<_, String>>()?;
                let row = mesh::cell_row(*kind, scale, &mesh::merge_shards(&parts));
                Ok((
                    Json::obj(vec![
                        ("scheduler", Json::Str(row.scheduler.name().into())),
                        ("links", Json::Int(row.links as i64)),
                        ("flows", Json::Int(row.flows as i64)),
                        ("probe_flows", Json::Int(row.probe_flows as i64)),
                        ("packet_hops", Json::Int(row.packet_hops as i64)),
                        ("class_mean_hop_wait", Json::nums(&row.class_mean_hop_wait)),
                        ("class_mean_e2e", Json::nums(&row.class_mean_e2e)),
                        ("hop_ratios", Json::nums(&row.hop_ratios())),
                        ("e2e_ratios", Json::nums(&row.e2e_ratios())),
                    ]),
                    None,
                    None,
                ))
            }
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => {
                let (partial, registry_text) = &shards[0];
                let report = match registry_text.as_deref() {
                    Some(text) => {
                        let registry = MetricsRegistry::from_json(text)
                            .map_err(|e| format!("{}: bad registry: {e}", self.id()))?;
                        let classes =
                            StudyBConfig::paper(*k_hops, *utilization, *flow_len, *flow_rate_kbps)
                                .num_classes();
                        Some(report_from_registry(&registry, classes))
                    }
                    None => None,
                };
                Ok((partial.clone(), report, registry_text.clone()))
            }
            _ => {
                let (partial, registry) = &shards[0];
                Ok((partial.clone(), None, registry.clone()))
            }
        }
    }

    /// Runs the cell at `scale`, returning its result as JSON plus — for
    /// the probed harnesses (fig1, fig2, table1, rank) — the run's
    /// telemetry snapshot for progress reporting, plus — for cells that
    /// run a [`telemetry::MetricsRegistry`](pdd::telemetry::MetricsRegistry)
    /// — the full `propdiff-metrics-v1` snapshot text the runner writes as
    /// a `<cell-id>.metrics.json` sidecar next to the cache entry.
    ///
    /// Canonically implemented as [`execute_shard`](Self::execute_shard)
    /// over every shard followed by [`merge_shards`](Self::merge_shards),
    /// so a single process, the threaded runner, and the multi-process
    /// farm all run the same arithmetic in the same order and produce
    /// byte-identical results.
    pub fn execute(&self, scale: Scale) -> (Json, Option<MetricsReport>, Option<String>) {
        let shards: Vec<(Json, Option<String>)> = (0..self.shard_count(scale))
            .map(|shard| self.execute_shard(scale, shard))
            .collect();
        self.merge_shards(scale, &shards)
            .expect("self-produced shards merge")
    }

    /// The single-shard cells' direct execution (everything that is not a
    /// per-seed sweep runs whole).
    fn execute_monolithic(&self, scale: Scale) -> (Json, Option<String>) {
        match self {
            CellSpec::Fig45 { kind } => {
                let v = fig45::cell(*kind, scale);
                let view1 = v
                    .view1
                    .iter()
                    .map(|(start, avgs)| {
                        Json::Arr(vec![
                            Json::Int(*start as i64),
                            Json::Arr(
                                avgs.iter()
                                    .map(|a| a.map(Json::num).unwrap_or(Json::Null))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect();
                let view2 = v
                    .view2
                    .iter()
                    .map(|&(t, c, d)| {
                        Json::Arr(vec![Json::Int(t as i64), Json::Int(c as i64), Json::num(d)])
                    })
                    .collect();
                (
                    Json::obj(vec![
                        ("scheduler", Json::Str(v.kind.name().into())),
                        ("roughness", Json::nums(&v.roughness)),
                        ("mean_roughness", Json::num(v.mean_roughness())),
                        ("view1", Json::Arr(view1)),
                        ("view2", Json::Arr(view2)),
                    ]),
                    None,
                )
            }
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => {
                let classes =
                    StudyBConfig::paper(*k_hops, *utilization, *flow_len, *flow_rate_kbps)
                        .num_classes();
                let mut probe = CountingProbe::new(classes);
                let cell = table1::cell_run_probed(
                    *k_hops,
                    *utilization,
                    *flow_len,
                    *flow_rate_kbps,
                    scale,
                    &mut probe,
                );
                let r = &cell.result;
                (
                    Json::obj(vec![
                        ("rd", Json::num(r.rd)),
                        ("experiments", Json::Int(r.experiments as i64)),
                        (
                            "inconsistent_experiments",
                            Json::Int(r.inconsistent_experiments as i64),
                        ),
                        (
                            "inconsistent_strict",
                            Json::Int(r.inconsistent_strict as i64),
                        ),
                        ("skipped_ratios", Json::Int(r.skipped_ratios as i64)),
                        ("class_median_ticks", Json::nums(&r.class_median_ticks)),
                    ]),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Shootout => {
                let s = ablations::schedulers(scale);
                let rows = s
                    .rows
                    .iter()
                    .map(|(k, ratios, dev)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(k.name().into())),
                            ("ratios", Json::nums(ratios)),
                            ("deviation", Json::num(*dev)),
                        ])
                    })
                    .collect();
                (Json::obj(vec![("rows", Json::Arr(rows))]), None)
            }
            CellSpec::Feasibility {
                utilization,
                spacing,
            } => {
                let p = ablations::feasibility_cell(*utilization, *spacing, scale);
                (
                    Json::obj(vec![
                        ("utilization", Json::num(p.utilization)),
                        ("spacing", Json::num(p.spacing)),
                        ("feasible", Json::Bool(p.feasible)),
                        ("worst_slack", Json::num(p.worst_slack)),
                    ]),
                    None,
                )
            }
            CellSpec::Starvation => {
                let probes = ablations::starvation();
                let rows = probes
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("sdp_ratio", Json::num(p.sdp_ratio)),
                            ("condition_lhs", Json::num(p.condition_lhs)),
                            ("condition_rhs", Json::num(p.condition_rhs)),
                            ("predicted", Json::Bool(p.predicted)),
                            ("observed", Json::Bool(p.observed)),
                        ])
                    })
                    .collect();
                (Json::obj(vec![("probes", Json::Arr(rows))]), None)
            }
            CellSpec::ModerateLoad { utilization } => {
                let (rho, rows) = ablations::moderate_load_cell(*utilization, scale);
                let rows = rows
                    .iter()
                    .map(|(k, mean)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(k.name().into())),
                            ("mean_ratio", Json::num(*mean)),
                        ])
                    })
                    .collect();
                (
                    Json::obj(vec![
                        ("utilization", Json::num(rho)),
                        ("rows", Json::Arr(rows)),
                    ]),
                    None,
                )
            }
            CellSpec::Plr { sigma } => {
                let (s, plr_ratio, tail_ratio, delay_ratio) = ablations::plr_cell(*sigma, scale);
                (
                    Json::obj(vec![
                        ("sigma", Json::num(s)),
                        ("plr_loss_ratio", Json::num(plr_ratio)),
                        ("taildrop_loss_ratio", Json::num(tail_ratio)),
                        ("delay_ratio", Json::num(delay_ratio)),
                    ]),
                    None,
                )
            }
            CellSpec::Additive => {
                let a = ablations::additive(scale);
                (
                    Json::obj(vec![
                        ("offsets", Json::nums(&a.offsets)),
                        ("delays", Json::nums(&a.delays)),
                        ("differences", Json::nums(&a.differences)),
                        ("targets", Json::nums(&a.targets)),
                    ]),
                    None,
                )
            }
            CellSpec::Analytic => {
                let c = ablations::analytic(scale);
                let rows = c
                    .rows
                    .iter()
                    .map(|(kind, class, m, p)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(kind.name().into())),
                            ("class", Json::Int(*class as i64 + 1)),
                            ("simulated", Json::num(*m)),
                            ("theory", Json::num(*p)),
                        ])
                    })
                    .collect();
                (Json::obj(vec![("rows", Json::Arr(rows))]), None)
            }
            CellSpec::MixedPath { scenario } => {
                let (label, rd, inconsistent) = ablations::mixed_path_cell(*scenario, scale);
                (
                    Json::obj(vec![
                        ("label", Json::Str(label.into())),
                        ("rd", Json::num(rd)),
                        ("inconsistent_experiments", Json::Int(inconsistent as i64)),
                    ]),
                    None,
                )
            }
            _ => unreachable!("seed-sharded cells never take the monolithic path"),
        }
    }

    /// Whether the cell runs with a [`CountingProbe`] (the rest run the
    /// zero-cost no-op probe and report no telemetry).
    pub fn is_probed(&self) -> bool {
        matches!(
            self,
            CellSpec::Fig1 { .. }
                | CellSpec::Fig2 { .. }
                | CellSpec::Table1 { .. }
                | CellSpec::Rank { .. }
        )
    }
}

fn kind_slug(kind: SchedulerKind) -> String {
    kind.name()
        .to_ascii_lowercase()
        .replace('+', "")
        .replace('(', "-")
        .replace(')', "")
}

/// Encodes a u64 vector as a JSON integer array.
fn ints_json(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Int(x as i64)).collect())
}

/// A mesh shard aggregate as its wire/cache JSON (integer sums only, so
/// transport is lossless by construction).
fn mesh_shard_json(s: &mesh::MeshShard) -> Json {
    Json::obj(vec![
        ("links", Json::Int(s.links as i64)),
        ("departures", Json::Int(s.departures as i64)),
        ("class_hop_packets", ints_json(&s.class_hop_packets)),
        ("class_hop_wait_sum", ints_json(&s.class_hop_wait_sum)),
        ("probe_wait_sum", ints_json(&s.probe_wait_sum)),
        ("probe_hop_packets", ints_json(&s.probe_hop_packets)),
    ])
}

/// Decodes a mesh shard partial, rejecting anything malformed so the
/// runner treats it as a cache miss.
fn decode_mesh_shard(partial: &Json, id: &str) -> Result<mesh::MeshShard, String> {
    let int = |field: &str| -> Result<u64, String> {
        partial
            .get(field)
            .and_then(Json::as_i64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("{id}: shard lacks `{field}`"))
    };
    let ints = |field: &str| -> Result<Vec<u64>, String> {
        partial
            .get(field)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{id}: shard lacks `{field}`"))?
            .iter()
            .map(|v| {
                v.as_i64()
                    .map(|x| x as u64)
                    .ok_or_else(|| format!("{id}: non-integer entry in `{field}`"))
            })
            .collect()
    };
    Ok(mesh::MeshShard {
        links: int("links")?,
        departures: int("departures")?,
        class_hop_packets: ints("class_hop_packets")?,
        class_hop_wait_sum: ints("class_hop_wait_sum")?,
        probe_wait_sum: ints("probe_wait_sum")?,
        probe_hop_packets: ints("probe_hop_packets")?,
    })
}

/// Encodes per-row f64 vectors as a JSON array of arrays. Non-finite
/// values become `Null` — see [`decode_rows`] for the inverse.
fn rows_json(rows: &[Vec<f64>]) -> Json {
    Json::Arr(rows.iter().map(|r| Json::nums(r)).collect())
}

/// Decodes a `rows` field back into f64 vectors. `Null` decodes to NaN so
/// a non-finite value poisons the merge arithmetic exactly as it would
/// have in-process, instead of silently vanishing in transport.
fn decode_rows(partial: &Json, id: &str) -> Result<Vec<Vec<f64>>, String> {
    let rows = partial
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{id}: shard lacks `rows`"))?;
    rows.iter()
        .map(|row| {
            let row = row
                .as_arr()
                .ok_or_else(|| format!("{id}: row is not an array"))?;
            row.iter()
                .map(|v| match v {
                    Json::Null => Ok(f64::NAN),
                    other => other
                        .as_f64()
                        .ok_or_else(|| format!("{id}: non-numeric row entry")),
                })
                .collect()
        })
        .collect()
}

/// Decodes every shard's `rows` field (seed order) for the row-averaging
/// cells.
fn decode_shard_rows(shards: &[(Json, Option<String>)]) -> Result<Vec<Vec<Vec<f64>>>, String> {
    shards
        .iter()
        .map(|(p, _)| decode_rows(p, "shard"))
        .collect()
}

/// Parses each shard's registry snapshot and merges them **in shard (=
/// seed) order** from an empty registry — the same fold the monitor study
/// uses, so every metered cell's sidecar is reproducible shard-by-shard.
fn fold_registries(
    cell: &CellSpec,
    shards: &[(Json, Option<String>)],
) -> Result<MetricsRegistry, String> {
    let mut merged = MetricsRegistry::new();
    for (shard, (_, text)) in shards.iter().enumerate() {
        let text = text
            .as_deref()
            .ok_or_else(|| format!("{}: shard {shard} lacks a registry", cell.id()))?;
        let parsed = MetricsRegistry::from_json(text)
            .map_err(|e| format!("{}: shard {shard} registry: {e}", cell.id()))?;
        merged.merge(&parsed);
    }
    Ok(merged)
}

/// Derives the flat progress-report snapshot from a merged registry.
/// `wall_secs` is zero — shards may have run concurrently or in another
/// process, so only the runner's own clock is meaningful.
fn report_from_registry(registry: &MetricsRegistry, num_classes: usize) -> MetricsReport {
    let classes = (0..num_classes)
        .map(|c| {
            let t = registry.class_total(c);
            ClassMetrics {
                arrivals: t.arrivals,
                enqueues: t.enqueues,
                departures: t.departures,
                drops: t.drops,
                decisions_won: t.decisions_won,
                wait_ticks_sum: t.wait_ticks_sum,
                bytes_delivered: t.bytes_delivered,
                depth: t.depth,
                depth_high_water: t.depth_high_water,
                backlog_bytes: t.backlog_bytes,
                backlog_high_water: t.backlog_high_water,
            }
        })
        .collect();
    MetricsReport {
        classes,
        decisions: registry.decisions(),
        probe_events: registry.probe_events(),
        heartbeats: registry.heartbeats(),
        scenario_events: registry.scenario_events(),
        heap_high_water: registry.heap_high_water(),
        virtual_span_ticks: registry.virtual_span_ticks(),
        wall_secs: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_filesystem_safe() {
        let cells = crate::manifest::suite("all").expect("all suite").cells;
        let mut ids: Vec<String> = cells.iter().map(CellSpec::id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate cell ids");
        for id in &ids {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
                "unsafe id {id}"
            );
        }
    }

    #[test]
    fn params_distinguish_cells() {
        let a = CellSpec::Fig1 {
            sdp_ratio: 2.0,
            utilization: 0.7,
        };
        let b = CellSpec::Fig1 {
            sdp_ratio: 2.0,
            utilization: 0.75,
        };
        assert_ne!(a.params().serialize(), b.params().serialize());
        assert!(a.params().serialize().contains("\"group\":\"fig1\""));
    }

    #[test]
    fn starvation_cell_executes_without_scale_sensitivity() {
        let (bench, _, _) = CellSpec::Starvation.execute(Scale::Bench);
        let (quick, _, _) = CellSpec::Starvation.execute(Scale::Quick);
        assert_eq!(bench.serialize(), quick.serialize());
        assert!(bench.get("probes").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn shard_counts_follow_the_seed_sweep() {
        let scale = Scale::Custom {
            punits: 2_000,
            nseeds: 3,
        };
        let sharded = CellSpec::Fig1 {
            sdp_ratio: 2.0,
            utilization: 0.9,
        };
        assert_eq!(sharded.shard_count(scale), 3);
        assert_eq!(CellSpec::Starvation.shard_count(scale), 1);
        assert_eq!(CellSpec::Additive.shard_count(Scale::Quick), 1);
    }

    #[test]
    fn serialized_shards_merge_byte_identically_to_execute() {
        // The transport law the farm rests on: partials that round-trip
        // through their wire encoding merge to the exact bytes `execute`
        // produces, result and metrics sidecar both.
        let scale = Scale::Custom {
            punits: 2_000,
            nseeds: 3,
        };
        for cell in [
            CellSpec::Fig1 {
                sdp_ratio: 2.0,
                utilization: 0.9,
            },
            CellSpec::Dynamics {
                kind: SchedulerKind::Wtp,
                perturbation: dynamics::Perturbation::SdpStep,
            },
            CellSpec::Monitor {
                kind: SchedulerKind::Wtp,
                window_punits: 100,
            },
            CellSpec::Mesh {
                kind: SchedulerKind::Wtp,
            },
        ] {
            let (direct, _, direct_registry) = cell.execute(scale);
            let shipped: Vec<(Json, Option<String>)> = (0..cell.shard_count(scale))
                .map(|shard| {
                    let (partial, registry) = cell.execute_shard(scale, shard);
                    let wire = partial.serialize();
                    (Json::parse(&wire).expect("wire partial parses"), registry)
                })
                .collect();
            let (merged, _, merged_registry) =
                cell.merge_shards(scale, &shipped).expect("shards merge");
            assert_eq!(
                direct.serialize(),
                merged.serialize(),
                "{} result drifted through transport",
                cell.id()
            );
            assert_eq!(
                direct_registry,
                merged_registry,
                "{} metrics sidecar drifted through transport",
                cell.id()
            );
        }
    }

    #[test]
    fn merge_rejects_wrong_shard_counts_and_corrupt_partials() {
        let scale = Scale::Custom {
            punits: 2_000,
            nseeds: 2,
        };
        let cell = CellSpec::Fig1 {
            sdp_ratio: 2.0,
            utilization: 0.9,
        };
        assert!(cell.merge_shards(scale, &[]).is_err(), "wrong count");
        let bogus = vec![
            (Json::obj(vec![("nope", Json::Int(1))]), None),
            (Json::obj(vec![("nope", Json::Int(1))]), None),
        ];
        assert!(cell.merge_shards(scale, &bogus).is_err(), "missing rows");
    }
}
