//! One cell of the experiment sweep: its identity, its parameters as
//! canonical JSON (the cache key input), and its execution.

use experiments::{ablations, dynamics, fig1, fig2, fig3, fig45, monitor, rank, table1, Scale};
use pdd::netsim::StudyBConfig;
use pdd::sched::SchedulerKind;
use pdd::telemetry::{CountingProbe, MetricsReport};

use crate::json::Json;

/// One independently runnable, independently cacheable unit of work.
///
/// Cell granularity matches the parallel-job granularity the per-figure
/// binaries already used, so a sweep's cells shard across threads exactly
/// as before — the difference is that each result now lands in the cache
/// under its own key.
#[derive(Debug, Clone, PartialEq)]
pub enum CellSpec {
    /// One (SDP spacing, utilization) point of Figure 1 (WTP and BPR).
    Fig1 {
        /// Successive-class spacing ratio (2 for panel a, 4 for panel b).
        sdp_ratio: f64,
        /// Link utilization ρ.
        utilization: f64,
    },
    /// One (SDP spacing, load split) point of Figure 2 at ρ = 0.95.
    Fig2 {
        /// Successive-class spacing ratio.
        sdp_ratio: f64,
        /// Index into [`fig2::DISTRIBUTIONS`].
        dist: usize,
    },
    /// One scheduler's full τ ladder of Figure 3.
    Fig3 {
        /// The scheduler measured.
        kind: SchedulerKind,
    },
    /// One scheduler's microscopic views (Figure 4 for BPR, 5 for WTP).
    Fig45 {
        /// The scheduler measured.
        kind: SchedulerKind,
    },
    /// One (K, ρ, F, R_u) Study-B cell of Table 1.
    Table1 {
        /// Hop count K.
        k_hops: usize,
        /// Link utilization ρ.
        utilization: f64,
        /// User-flow length F in packets.
        flow_len: u32,
        /// User-flow rate R_u in kbps.
        flow_rate_kbps: f64,
    },
    /// The all-scheduler shoot-out ablation (one cell).
    Shootout,
    /// One (utilization, spacing) probe of the Eq. (7) feasibility region.
    Feasibility {
        /// Link utilization ρ.
        utilization: f64,
        /// DDP spacing ratio probed.
        spacing: f64,
    },
    /// The Proposition-2 starvation ablation (one pure cell, no scale).
    Starvation,
    /// One utilization point of the moderate-load undershoot ablation.
    ModerateLoad {
        /// Link utilization ρ.
        utilization: f64,
    },
    /// One target loss-spacing point of the PLR ablation.
    Plr {
        /// Target loss ratio σ₁/σ₂.
        sigma: f64,
    },
    /// The additive-differentiation (Eq. 3) ablation (one cell).
    Additive,
    /// The M/G/1 analytic-validation ablation (one cell).
    Analytic,
    /// One deployment scenario of the mixed-path ablation.
    MixedPath {
        /// Index into [`ablations::mixed_path_scenarios`].
        scenario: usize,
    },
    /// One (scheduler, perturbation) reconvergence cell of the dynamics
    /// study.
    Dynamics {
        /// The scheduler measured.
        kind: SchedulerKind,
        /// The perturbation injected at mid-horizon.
        perturbation: dynamics::Perturbation,
    },
    /// One (SDP spacing, utilization) point of the LSTF universality probe
    /// (static-slack LSTF rank core vs WTP).
    Rank {
        /// Successive-class spacing ratio (the target ratio).
        sdp_ratio: f64,
        /// Link utilization ρ.
        utilization: f64,
    },
    /// One (scheduler, window) cell of the online conformance-monitor
    /// study (SDP swap at mid-run, violations vs monitoring timescale).
    Monitor {
        /// The scheduler measured.
        kind: SchedulerKind,
        /// Monitoring window width in p-units.
        window_punits: u64,
    },
}

/// Formats an f64 parameter compactly and losslessly for ids/keys.
fn fmt_f64(v: f64) -> String {
    // `Display` prints the shortest round-tripping decimal, so distinct
    // parameters can't collide.
    format!("{v}")
}

impl CellSpec {
    /// The experiment group this cell belongs to (stable slug).
    pub fn group(&self) -> &'static str {
        match self {
            CellSpec::Fig1 { .. } => "fig1",
            CellSpec::Fig2 { .. } => "fig2",
            CellSpec::Fig3 { .. } => "fig3",
            CellSpec::Fig45 { .. } => "fig45",
            CellSpec::Table1 { .. } => "table1",
            CellSpec::Shootout => "shootout",
            CellSpec::Feasibility { .. } => "feasibility",
            CellSpec::Starvation => "starvation",
            CellSpec::ModerateLoad { .. } => "moderate-load",
            CellSpec::Plr { .. } => "plr",
            CellSpec::Additive => "additive",
            CellSpec::Analytic => "analytic",
            CellSpec::MixedPath { .. } => "mixed-path",
            CellSpec::Dynamics { .. } => "dynamics",
            CellSpec::Rank { .. } => "rank",
            CellSpec::Monitor { .. } => "monitor",
        }
    }

    /// A unique, filesystem-safe identifier (the cache file stem).
    pub fn id(&self) -> String {
        let sanitize = |s: String| s.replace('.', "_");
        match self {
            CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            } => sanitize(format!(
                "fig1-s{}-u{}",
                fmt_f64(*sdp_ratio),
                fmt_f64(*utilization)
            )),
            CellSpec::Fig2 { sdp_ratio, dist } => {
                sanitize(format!("fig2-s{}-d{dist}", fmt_f64(*sdp_ratio)))
            }
            CellSpec::Fig3 { kind } => format!("fig3-{}", kind_slug(*kind)),
            CellSpec::Fig45 { kind } => format!("fig45-{}", kind_slug(*kind)),
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => sanitize(format!(
                "table1-k{k_hops}-u{}-f{flow_len}-r{}",
                fmt_f64(*utilization),
                fmt_f64(*flow_rate_kbps)
            )),
            CellSpec::Shootout => "shootout".into(),
            CellSpec::Feasibility {
                utilization,
                spacing,
            } => sanitize(format!(
                "feasibility-u{}-s{}",
                fmt_f64(*utilization),
                fmt_f64(*spacing)
            )),
            CellSpec::Starvation => "starvation".into(),
            CellSpec::ModerateLoad { utilization } => {
                sanitize(format!("moderate-load-u{}", fmt_f64(*utilization)))
            }
            CellSpec::Plr { sigma } => sanitize(format!("plr-s{}", fmt_f64(*sigma))),
            CellSpec::Additive => "additive".into(),
            CellSpec::Analytic => "analytic".into(),
            CellSpec::MixedPath { scenario } => format!("mixed-path-{scenario}"),
            CellSpec::Dynamics { kind, perturbation } => {
                format!("dynamics-{}-{}", kind_slug(*kind), perturbation.name())
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => sanitize(format!(
                "rank-s{}-u{}",
                fmt_f64(*sdp_ratio),
                fmt_f64(*utilization)
            )),
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                format!("monitor-{}-w{window_punits}", kind_slug(*kind))
            }
        }
    }

    /// The cell's parameters as canonical JSON — the manifest half of the
    /// cache key. Any change here (new parameter, different value) changes
    /// the key and misses the cache.
    pub fn params(&self) -> Json {
        let mut pairs = vec![("group", Json::Str(self.group().into()))];
        match self {
            CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            } => {
                pairs.push(("sdp_ratio", Json::num(*sdp_ratio)));
                pairs.push(("utilization", Json::num(*utilization)));
            }
            CellSpec::Fig2 { sdp_ratio, dist } => {
                pairs.push(("sdp_ratio", Json::num(*sdp_ratio)));
                pairs.push(("dist", Json::Int(*dist as i64)));
                pairs.push(("fractions", Json::nums(&fig2::DISTRIBUTIONS[*dist])));
            }
            CellSpec::Fig3 { kind } | CellSpec::Fig45 { kind } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
            }
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => {
                pairs.push(("k_hops", Json::Int(*k_hops as i64)));
                pairs.push(("utilization", Json::num(*utilization)));
                pairs.push(("flow_len", Json::Int(*flow_len as i64)));
                pairs.push(("flow_rate_kbps", Json::num(*flow_rate_kbps)));
            }
            CellSpec::Feasibility {
                utilization,
                spacing,
            } => {
                pairs.push(("utilization", Json::num(*utilization)));
                pairs.push(("spacing", Json::num(*spacing)));
            }
            CellSpec::ModerateLoad { utilization } => {
                pairs.push(("utilization", Json::num(*utilization)));
            }
            CellSpec::Plr { sigma } => pairs.push(("sigma", Json::num(*sigma))),
            CellSpec::MixedPath { scenario } => {
                pairs.push(("scenario", Json::Int(*scenario as i64)));
            }
            CellSpec::Dynamics { kind, perturbation } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
                pairs.push(("perturbation", Json::Str(perturbation.name().into())));
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => {
                pairs.push(("sdp_ratio", Json::num(*sdp_ratio)));
                pairs.push(("utilization", Json::num(*utilization)));
            }
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                pairs.push(("scheduler", Json::Str(kind.name().into())));
                pairs.push(("window_punits", Json::Int(*window_punits as i64)));
            }
            CellSpec::Shootout | CellSpec::Starvation | CellSpec::Additive | CellSpec::Analytic => {
            }
        }
        Json::obj(pairs)
    }

    /// Runs the cell at `scale`, returning its result as JSON plus — for
    /// the probed harnesses (fig1, fig2, table1, rank) — the run's
    /// telemetry snapshot for progress reporting, plus — for cells that
    /// run a [`telemetry::MetricsRegistry`](pdd::telemetry::MetricsRegistry)
    /// — the full `propdiff-metrics-v1` snapshot text the runner writes as
    /// a `<cell-id>.metrics.json` sidecar next to the cache entry.
    pub fn execute(&self, scale: Scale) -> (Json, Option<MetricsReport>, Option<String>) {
        match self {
            CellSpec::Fig1 {
                sdp_ratio,
                utilization,
            } => {
                let mut probe = CountingProbe::new(4);
                let row = fig1::cell_probed(*sdp_ratio, *utilization, scale, &mut probe);
                (
                    Json::obj(vec![
                        ("utilization", Json::num(row.utilization)),
                        ("wtp", Json::nums(&row.wtp)),
                        ("bpr", Json::nums(&row.bpr)),
                    ]),
                    Some(probe.report()),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Fig2 { sdp_ratio, dist } => {
                let mut probe = CountingProbe::new(4);
                let row =
                    fig2::cell_probed(*sdp_ratio, fig2::DISTRIBUTIONS[*dist], scale, &mut probe);
                (
                    Json::obj(vec![
                        ("fractions", Json::nums(&row.fractions)),
                        ("wtp", Json::nums(&row.wtp)),
                        ("bpr", Json::nums(&row.bpr)),
                    ]),
                    Some(probe.report()),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Fig3 { kind } => {
                let results = fig3::cell(*kind, scale);
                let taus = results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("tau_punits", Json::Int(r.tau_punits as i64)),
                            ("five_number", Json::nums(&r.five_number)),
                            ("intervals", Json::Int(r.intervals as i64)),
                        ])
                    })
                    .collect();
                (
                    Json::obj(vec![
                        ("scheduler", Json::Str(kind.name().into())),
                        ("taus", Json::Arr(taus)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Fig45 { kind } => {
                let v = fig45::cell(*kind, scale);
                let view1 = v
                    .view1
                    .iter()
                    .map(|(start, avgs)| {
                        Json::Arr(vec![
                            Json::Int(*start as i64),
                            Json::Arr(
                                avgs.iter()
                                    .map(|a| a.map(Json::num).unwrap_or(Json::Null))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect();
                let view2 = v
                    .view2
                    .iter()
                    .map(|&(t, c, d)| {
                        Json::Arr(vec![Json::Int(t as i64), Json::Int(c as i64), Json::num(d)])
                    })
                    .collect();
                (
                    Json::obj(vec![
                        ("scheduler", Json::Str(v.kind.name().into())),
                        ("roughness", Json::nums(&v.roughness)),
                        ("mean_roughness", Json::num(v.mean_roughness())),
                        ("view1", Json::Arr(view1)),
                        ("view2", Json::Arr(view2)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Table1 {
                k_hops,
                utilization,
                flow_len,
                flow_rate_kbps,
            } => {
                let classes =
                    StudyBConfig::paper(*k_hops, *utilization, *flow_len, *flow_rate_kbps)
                        .num_classes();
                let mut probe = CountingProbe::new(classes);
                let cell = table1::cell_run_probed(
                    *k_hops,
                    *utilization,
                    *flow_len,
                    *flow_rate_kbps,
                    scale,
                    &mut probe,
                );
                let r = &cell.result;
                (
                    Json::obj(vec![
                        ("rd", Json::num(r.rd)),
                        ("experiments", Json::Int(r.experiments as i64)),
                        (
                            "inconsistent_experiments",
                            Json::Int(r.inconsistent_experiments as i64),
                        ),
                        (
                            "inconsistent_strict",
                            Json::Int(r.inconsistent_strict as i64),
                        ),
                        ("skipped_ratios", Json::Int(r.skipped_ratios as i64)),
                        ("class_median_ticks", Json::nums(&r.class_median_ticks)),
                    ]),
                    Some(probe.report()),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Shootout => {
                let s = ablations::schedulers(scale);
                let rows = s
                    .rows
                    .iter()
                    .map(|(k, ratios, dev)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(k.name().into())),
                            ("ratios", Json::nums(ratios)),
                            ("deviation", Json::num(*dev)),
                        ])
                    })
                    .collect();
                (Json::obj(vec![("rows", Json::Arr(rows))]), None, None)
            }
            CellSpec::Feasibility {
                utilization,
                spacing,
            } => {
                let p = ablations::feasibility_cell(*utilization, *spacing, scale);
                (
                    Json::obj(vec![
                        ("utilization", Json::num(p.utilization)),
                        ("spacing", Json::num(p.spacing)),
                        ("feasible", Json::Bool(p.feasible)),
                        ("worst_slack", Json::num(p.worst_slack)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Starvation => {
                let probes = ablations::starvation();
                let rows = probes
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("sdp_ratio", Json::num(p.sdp_ratio)),
                            ("condition_lhs", Json::num(p.condition_lhs)),
                            ("condition_rhs", Json::num(p.condition_rhs)),
                            ("predicted", Json::Bool(p.predicted)),
                            ("observed", Json::Bool(p.observed)),
                        ])
                    })
                    .collect();
                (Json::obj(vec![("probes", Json::Arr(rows))]), None, None)
            }
            CellSpec::ModerateLoad { utilization } => {
                let (rho, rows) = ablations::moderate_load_cell(*utilization, scale);
                let rows = rows
                    .iter()
                    .map(|(k, mean)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(k.name().into())),
                            ("mean_ratio", Json::num(*mean)),
                        ])
                    })
                    .collect();
                (
                    Json::obj(vec![
                        ("utilization", Json::num(rho)),
                        ("rows", Json::Arr(rows)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Plr { sigma } => {
                let (s, plr_ratio, tail_ratio, delay_ratio) = ablations::plr_cell(*sigma, scale);
                (
                    Json::obj(vec![
                        ("sigma", Json::num(s)),
                        ("plr_loss_ratio", Json::num(plr_ratio)),
                        ("taildrop_loss_ratio", Json::num(tail_ratio)),
                        ("delay_ratio", Json::num(delay_ratio)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Additive => {
                let a = ablations::additive(scale);
                (
                    Json::obj(vec![
                        ("offsets", Json::nums(&a.offsets)),
                        ("delays", Json::nums(&a.delays)),
                        ("differences", Json::nums(&a.differences)),
                        ("targets", Json::nums(&a.targets)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Analytic => {
                let c = ablations::analytic(scale);
                let rows = c
                    .rows
                    .iter()
                    .map(|(kind, class, m, p)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(kind.name().into())),
                            ("class", Json::Int(*class as i64 + 1)),
                            ("simulated", Json::num(*m)),
                            ("theory", Json::num(*p)),
                        ])
                    })
                    .collect();
                (Json::obj(vec![("rows", Json::Arr(rows))]), None, None)
            }
            CellSpec::MixedPath { scenario } => {
                let (label, rd, inconsistent) = ablations::mixed_path_cell(*scenario, scale);
                (
                    Json::obj(vec![
                        ("label", Json::Str(label.into())),
                        ("rd", Json::num(rd)),
                        ("inconsistent_experiments", Json::Int(inconsistent as i64)),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Dynamics { kind, perturbation } => {
                let row = dynamics::cell(*kind, *perturbation, scale);
                let pairs = row
                    .mean_settle_punits
                    .iter()
                    .zip(&row.settled)
                    .map(|(mean, &settled)| {
                        Json::obj(vec![
                            (
                                "mean_settle_punits",
                                mean.map(Json::num).unwrap_or(Json::Null),
                            ),
                            ("settled", Json::Int(settled as i64)),
                        ])
                    })
                    .collect();
                (
                    Json::obj(vec![
                        ("scheduler", Json::Str(row.scheduler.name().into())),
                        ("perturbation", Json::Str(row.perturbation.name().into())),
                        ("seeds", Json::Int(row.seeds as i64)),
                        ("pairs", Json::Arr(pairs)),
                        (
                            "headline_punits",
                            row.headline_punits().map(Json::num).unwrap_or(Json::Null),
                        ),
                    ]),
                    None,
                    None,
                )
            }
            CellSpec::Rank {
                sdp_ratio,
                utilization,
            } => {
                let mut probe = CountingProbe::new(4);
                let row = rank::cell_probed(*sdp_ratio, *utilization, scale, &mut probe);
                (
                    Json::obj(vec![
                        ("sdp_ratio", Json::num(row.sdp_ratio)),
                        ("utilization", Json::num(row.utilization)),
                        ("lstf", Json::nums(&row.lstf)),
                        ("wtp", Json::nums(&row.wtp)),
                    ]),
                    Some(probe.report()),
                    Some(probe.registry().to_json()),
                )
            }
            CellSpec::Monitor {
                kind,
                window_punits,
            } => {
                let (row, registry) = monitor::cell_metered(*kind, *window_punits, scale);
                (
                    Json::obj(vec![
                        ("scheduler", Json::Str(row.scheduler.name().into())),
                        ("window_punits", Json::Int(row.window_punits as i64)),
                        ("seeds", Json::Int(row.seeds as i64)),
                        ("windows_closed", Json::Int(row.windows_closed as i64)),
                        ("pairs_evaluated", Json::Int(row.pairs_evaluated as i64)),
                        ("steady_violations", Json::Int(row.steady_violations as i64)),
                        (
                            "transient_violations",
                            Json::Int(row.transient_violations as i64),
                        ),
                        ("inversions", Json::Int(row.inversions as i64)),
                        ("violation_rate", Json::num(row.violation_rate())),
                        ("mean_quiet_punits", Json::num(row.mean_quiet_punits)),
                        ("max_drift", Json::num(row.max_drift)),
                    ]),
                    None,
                    Some(registry.to_json()),
                )
            }
        }
    }

    /// Whether the cell runs with a [`CountingProbe`] (the rest run the
    /// zero-cost no-op probe and report no telemetry).
    pub fn is_probed(&self) -> bool {
        matches!(
            self,
            CellSpec::Fig1 { .. }
                | CellSpec::Fig2 { .. }
                | CellSpec::Table1 { .. }
                | CellSpec::Rank { .. }
        )
    }
}

fn kind_slug(kind: SchedulerKind) -> String {
    kind.name().to_ascii_lowercase().replace('+', "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_filesystem_safe() {
        let cells = crate::manifest::suite("all").expect("all suite").cells;
        let mut ids: Vec<String> = cells.iter().map(CellSpec::id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate cell ids");
        for id in &ids {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
                "unsafe id {id}"
            );
        }
    }

    #[test]
    fn params_distinguish_cells() {
        let a = CellSpec::Fig1 {
            sdp_ratio: 2.0,
            utilization: 0.7,
        };
        let b = CellSpec::Fig1 {
            sdp_ratio: 2.0,
            utilization: 0.75,
        };
        assert_ne!(a.params().serialize(), b.params().serialize());
        assert!(a.params().serialize().contains("\"group\":\"fig1\""));
    }

    #[test]
    fn starvation_cell_executes_without_scale_sensitivity() {
        let (bench, _, _) = CellSpec::Starvation.execute(Scale::Bench);
        let (quick, _, _) = CellSpec::Starvation.execute(Scale::Quick);
        assert_eq!(bench.serialize(), quick.serialize());
        assert!(bench.get("probes").and_then(Json::as_arr).is_some());
    }
}
