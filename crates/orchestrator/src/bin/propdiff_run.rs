//! `propdiff-run` — the one CLI for every figure, table, and ablation.
//!
//! ```text
//! propdiff-run run    [--suite NAME] [--paper|--bench|--punits N --seeds K]
//!                     [--threads N] [--workers N] [--cache-dir DIR]
//!                     [--out FILE] [--csv-dir DIR] [--max-cells N]
//!                     [--expect-all-cached] [--quiet]
//! propdiff-run render [--doc PATH] [--check] [--suite NAME] [scale flags…]
//! propdiff-run list
//! propdiff-run worker                  (internal: spawned by `run --workers`)
//! ```
//!
//! `run` executes the suite's uncached shards in parallel — on threads by
//! default, or on `--workers N` separate worker *processes* fed over a
//! stdin/stdout JSONL protocol — caches every shard and merged cell under
//! `--cache-dir`, and writes the merged JSON (manifest order,
//! byte-identical at any thread or worker count) to `--out`. A warm re-run
//! does zero simulation work; `--expect-all-cached` turns that into an
//! assertion. `--max-cells N` bounds how many uncached cells run, so an
//! interrupted sweep resumes where it left off; a crashed run resumes from
//! whatever shards it had already banked.
//!
//! `render` rewrites the `<!-- generated:NAME -->` blocks in EXPERIMENTS.md
//! from (cached) results; `--check` instead fails if the document would
//! change — the CI guard against measured numbers drifting from the code.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::Scale;
use orchestrator::cache::scale_tag;
use orchestrator::{manifest, render, runner};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn options_from_args(args: &[String]) -> runner::RunOptions {
    let mut opts = runner::RunOptions::new(Scale::from_args());
    if let Some(n) = arg_value(args, "--threads") {
        opts.workers = n.parse().unwrap_or(0);
    }
    if let Some(n) = arg_value(args, "--workers") {
        opts.process_workers = n.parse().unwrap_or(0);
    }
    if let Some(dir) = arg_value(args, "--cache-dir") {
        opts.cache_dir = PathBuf::from(dir);
    }
    if let Some(n) = arg_value(args, "--max-cells") {
        opts.max_cells = n.parse().ok();
    }
    opts.quiet = args.iter().any(|a| a == "--quiet");
    opts
}

fn load_suite(args: &[String]) -> Result<manifest::Manifest, String> {
    let name = arg_value(args, "--suite").unwrap_or_else(|| "all".into());
    manifest::suite(&name).ok_or_else(|| {
        format!(
            "unknown suite `{name}` (expected one of: {})",
            manifest::SUITES.join(", ")
        )
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let suite = load_suite(args)?;
    let opts = options_from_args(args);
    let started = std::time::Instant::now();
    let report = runner::run(&suite, &opts);
    eprintln!(
        "suite={} scale={} cells={} executed={} shards={} cached={} skipped={} wall={:.1}s",
        suite.suite,
        scale_tag(opts.scale),
        suite.cells.len(),
        report.executed,
        report.shards_executed,
        report.cached,
        report.skipped,
        started.elapsed().as_secs_f64()
    );
    if args.iter().any(|a| a == "--expect-all-cached") && report.executed > 0 {
        return Err(format!(
            "--expect-all-cached: {} cells were not served from the cache",
            report.executed
        ));
    }
    let out = arg_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(format!(
                "out/results-{}-{}.json",
                suite.suite,
                scale_tag(opts.scale)
            ))
        });
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out, report.merged.serialize())
        .map_err(|e| format!("write {}: {e}", out.display()))?;
    eprintln!("merged results: {}", out.display());
    let csv_dir = arg_value(args, "--csv-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("out"));
    runner::write_fig45_csvs(&report.merged, &csv_dir)
        .map_err(|e| format!("write fig45 CSVs: {e}"))?;
    if !report.complete() {
        return Err(format!(
            "incomplete: {} cells remain (re-run to resume)",
            report.skipped
        ));
    }
    Ok(())
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let suite = load_suite(args)?;
    let mut opts = options_from_args(args);
    opts.quiet = true;
    let report = runner::run(&suite, &opts);
    let doc_path = arg_value(args, "--doc")
        .map(PathBuf::from)
        .unwrap_or_else(|| orchestrator::fingerprint::workspace_root().join("EXPERIMENTS.md"));
    let doc = std::fs::read_to_string(&doc_path)
        .map_err(|e| format!("read {}: {e}", doc_path.display()))?;
    let rendered = render::render_doc(&doc, &report.merged)?;
    if args.iter().any(|a| a == "--check") {
        if rendered != doc {
            return Err(format!(
                "{} is stale: `propdiff-run render` would change its generated blocks",
                doc_path.display()
            ));
        }
        eprintln!("{}: generated blocks up to date", doc_path.display());
    } else if rendered == doc {
        eprintln!("{}: already up to date", doc_path.display());
    } else {
        std::fs::write(&doc_path, &rendered)
            .map_err(|e| format!("write {}: {e}", doc_path.display()))?;
        eprintln!("{}: regenerated", doc_path.display());
    }
    Ok(())
}

fn cmd_list() {
    for name in manifest::SUITES {
        let m = manifest::suite(name).expect("known suite");
        println!("{name:<14} {:>3} cells", m.cells.len());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args),
        Some("render") => cmd_render(&args),
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("worker") => orchestrator::worker::worker_main(),
        Some("--help" | "-h") | None => {
            eprintln!(
                "usage: propdiff-run <run|render|list|worker> [--suite NAME] [scale flags] …\n\
                 see the crate docs (`cargo doc -p orchestrator`) for the full flag list"
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("propdiff-run: {e}");
            ExitCode::FAILURE
        }
    }
}
