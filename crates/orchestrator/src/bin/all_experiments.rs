//! Runs every figure, table, and ablation in sequence — the compatibility
//! wrapper for the retired per-figure binaries. For the cached parallel
//! path use `propdiff-run`.
//!
//! Usage: `all_experiments [--paper|--bench]` (default: quick scale).
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::fig1::run(scale).render());
    println!("{}", experiments::fig2::run(scale).render());
    println!("{}", experiments::fig3::run(scale).render());
    println!("{}", experiments::fig45::run(scale).render());
    println!("{}", experiments::table1::run(scale).render());
    println!("{}", experiments::ablations::schedulers(scale).render());
    let probes = experiments::ablations::feasibility(scale);
    println!("{}", experiments::ablations::render_feasibility(&probes));
    let st = experiments::ablations::starvation();
    println!("{}", experiments::ablations::render_starvation(&st));
    println!("{}", experiments::ablations::moderate_load(scale).render());
    let plr = experiments::ablations::plr(scale);
    println!("{}", experiments::ablations::render_plr(&plr));
    let add = experiments::ablations::additive(scale);
    println!("{}", experiments::ablations::render_additive(&add));
    let an = experiments::ablations::analytic(scale);
    println!("{}", experiments::ablations::render_analytic(&an));
    let mp = experiments::ablations::mixed_path(scale);
    println!("{}", experiments::ablations::render_mixed_path(&mp));
    println!("{}", experiments::dynamics::run(scale).render());
    println!("{}", experiments::rank::run(scale).render());
}
