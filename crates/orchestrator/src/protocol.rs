//! The farm wire protocol: newline-delimited JSON between the
//! `propdiff-run` parent and its `worker` child processes.
//!
//! The parent writes one [`Job`] line per shard to a worker's stdin; the
//! worker answers with exactly one [`Reply`] line on stdout and waits for
//! the next job. EOF on stdin is the shutdown signal. The protocol is
//! deliberately minimal:
//!
//! - A job names its cell by **suite name + manifest index** (plus the
//!   cell id as a cross-check), so the worker rebuilds the [`CellSpec`]
//!   from the same `manifest::suite` table the parent used — no cell
//!   serialization, no drift between the two sides of the pipe.
//! - The scale travels as its [`scale_tag`] string; [`parse_scale_tag`]
//!   is the exact inverse.
//! - A reply carries the shard's partial-result JSON verbatim. The
//!   orchestrator's [`Json`] satisfies `parse ∘ serialize = identity`, so
//!   shipping a partial through the pipe cannot change any value — the
//!   foundation of the farm's byte-identity guarantee.
//!
//! [`CellSpec`]: crate::cell::CellSpec

use experiments::Scale;

use crate::cache::scale_tag;
use crate::json::Json;

/// One shard-execution request, sent parent → worker as one line.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Suite name the cell index refers to.
    pub suite: String,
    /// Cell index into `manifest::suite(suite)`.
    pub cell: usize,
    /// The cell's id, cross-checked by the worker against its manifest.
    pub id: String,
    /// The scale to run at.
    pub scale: Scale,
    /// Which shard of the cell to run.
    pub shard: usize,
    /// Total shards the cell splits into at `scale`.
    pub shards: usize,
}

impl Job {
    /// Serializes the job as its single wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        Json::obj(vec![
            ("op", Json::Str("run".into())),
            ("suite", Json::Str(self.suite.clone())),
            ("cell", Json::Int(self.cell as i64)),
            ("id", Json::Str(self.id.clone())),
            ("scale", Json::Str(scale_tag(self.scale))),
            ("shard", Json::Int(self.shard as i64)),
            ("shards", Json::Int(self.shards as i64)),
        ])
        .serialize()
    }

    /// Parses one wire line back into a job.
    pub fn parse(line: &str) -> Result<Job, String> {
        let j = Json::parse(line).map_err(|e| format!("bad job line: {e}"))?;
        if j.get("op").and_then(Json::as_str) != Some("run") {
            return Err("job line lacks op=run".into());
        }
        let str_field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job line lacks `{k}`"))
        };
        let int_field = |k: &str| -> Result<usize, String> {
            j.get(k)
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| format!("job line lacks `{k}`"))
        };
        let tag = str_field("scale")?;
        Ok(Job {
            suite: str_field("suite")?,
            cell: int_field("cell")?,
            id: str_field("id")?,
            scale: parse_scale_tag(&tag).ok_or_else(|| format!("bad scale tag `{tag}`"))?,
            shard: int_field("shard")?,
            shards: int_field("shards")?,
        })
    }
}

/// A worker's answer to one [`Job`], sent worker → parent as one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The shard ran: its partial result and optional registry snapshot.
    Ok {
        /// Echo of the job's cell index.
        cell: usize,
        /// Echo of the job's shard index.
        shard: usize,
        /// The shard's partial result, verbatim.
        partial: Json,
        /// The shard's `propdiff-metrics-v1` snapshot, if the cell is
        /// metered.
        registry: Option<String>,
    },
    /// The shard could not run (bad job, unknown suite, id mismatch).
    Err {
        /// Echo of the job's cell index (0 if the line didn't parse).
        cell: usize,
        /// Echo of the job's shard index (0 if the line didn't parse).
        shard: usize,
        /// What went wrong.
        error: String,
    },
}

impl Reply {
    /// Serializes the reply as its single wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Reply::Ok {
                cell,
                shard,
                partial,
                registry,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cell", Json::Int(*cell as i64)),
                ("shard", Json::Int(*shard as i64)),
                ("partial", partial.clone()),
                (
                    "registry",
                    registry
                        .as_ref()
                        .map(|s| Json::Str(s.clone()))
                        .unwrap_or(Json::Null),
                ),
            ])
            .serialize(),
            Reply::Err { cell, shard, error } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("cell", Json::Int(*cell as i64)),
                ("shard", Json::Int(*shard as i64)),
                ("error", Json::Str(error.clone())),
            ])
            .serialize(),
        }
    }

    /// Parses one wire line back into a reply.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let j = Json::parse(line).map_err(|e| format!("bad reply line: {e}"))?;
        let int_field = |k: &str| -> Result<usize, String> {
            j.get(k)
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| format!("reply line lacks `{k}`"))
        };
        match j.get("ok") {
            Some(Json::Bool(true)) => Ok(Reply::Ok {
                cell: int_field("cell")?,
                shard: int_field("shard")?,
                partial: j
                    .get("partial")
                    .cloned()
                    .ok_or("reply line lacks `partial`")?,
                registry: match j.get("registry") {
                    Some(Json::Str(s)) => Some(s.clone()),
                    _ => None,
                },
            }),
            Some(Json::Bool(false)) => Ok(Reply::Err {
                cell: int_field("cell")?,
                shard: int_field("shard")?,
                error: j
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown worker error")
                    .to_string(),
            }),
            _ => Err("reply line lacks `ok`".into()),
        }
    }
}

/// Parses a [`scale_tag`] back into the [`Scale`] it names — the wire
/// inverse the worker uses to reconstruct the parent's scale.
pub fn parse_scale_tag(tag: &str) -> Option<Scale> {
    match tag {
        "paper" => Some(Scale::Paper),
        "quick" => Some(Scale::Quick),
        "bench" => Some(Scale::Bench),
        custom => {
            let (punits, nseeds) = custom.strip_prefix('p')?.split_once('s')?;
            Some(Scale::Custom {
                punits: punits.parse().ok()?,
                nseeds: nseeds.parse().ok()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tags_round_trip() {
        for scale in [
            Scale::Paper,
            Scale::Quick,
            Scale::Bench,
            Scale::Custom {
                punits: 2_000,
                nseeds: 3,
            },
        ] {
            assert_eq!(parse_scale_tag(&scale_tag(scale)), Some(scale));
        }
        assert_eq!(parse_scale_tag("p2000"), None);
        assert_eq!(parse_scale_tag("nope"), None);
        assert_eq!(parse_scale_tag("pxs2"), None);
    }

    #[test]
    fn job_lines_round_trip() {
        let job = Job {
            suite: "fig1".into(),
            cell: 3,
            id: "fig1-s2-u0_8".into(),
            scale: Scale::Custom {
                punits: 2_000,
                nseeds: 3,
            },
            shard: 1,
            shards: 3,
        };
        assert_eq!(Job::parse(&job.to_line()), Ok(job));
        assert!(Job::parse("{}").is_err());
        assert!(Job::parse("{\"op\":\"run\"}").is_err());
    }

    #[test]
    fn reply_lines_round_trip() {
        // A registry snapshot full of quotes survives string escaping.
        let ok = Reply::Ok {
            cell: 5,
            shard: 2,
            partial: Json::obj(vec![("rows", Json::nums(&[1.5, 2.0]))]),
            registry: Some("{\"schema\":\"propdiff-metrics-v1\",\"decisions\":0}".into()),
        };
        assert_eq!(Reply::parse(&ok.to_line()), Ok(ok));
        let bare = Reply::Ok {
            cell: 0,
            shard: 0,
            partial: Json::Null,
            registry: None,
        };
        assert_eq!(Reply::parse(&bare.to_line()), Ok(bare));
        let err = Reply::Err {
            cell: 1,
            shard: 0,
            error: "unknown suite `nope`".into(),
        };
        assert_eq!(Reply::parse(&err.to_line()), Ok(err));
        assert!(Reply::parse("not json").is_err());
    }
}
