//! End-to-end runner tests: cold/warm cache behaviour, resume via the
//! `max_cells` budget, and byte-stability of the merged document across
//! thread counts. Everything runs at `Scale::Bench` against throwaway
//! cache directories so the suite stays fast and hermetic.

use std::path::PathBuf;

use experiments::Scale;
use orchestrator::manifest::suite;
use orchestrator::runner::{run, RunOptions};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdd_runner_test_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(cache_dir: PathBuf) -> RunOptions {
    let mut o = RunOptions::new(Scale::Bench);
    o.cache_dir = cache_dir;
    o.quiet = true;
    o
}

#[test]
fn warm_rerun_does_zero_simulation_work_and_is_byte_identical() {
    let m = suite("plr").expect("plr suite");
    let dir = temp_dir("warm");
    let o = opts(dir.clone());

    let cold = run(&m, &o);
    assert_eq!(cold.executed, m.cells.len());
    assert_eq!(cold.cached, 0);
    assert!(cold.complete());

    let warm = run(&m, &o);
    assert_eq!(warm.executed, 0, "warm run must be all cache hits");
    assert_eq!(warm.cached, m.cells.len());
    assert!(warm.complete());
    assert_eq!(
        cold.merged.serialize(),
        warm.merged.serialize(),
        "cache round-trip must preserve the merged document byte for byte"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn merged_document_is_identical_at_one_and_many_threads() {
    let m = suite("moderate-load").expect("moderate-load suite");
    let dir1 = temp_dir("threads1");
    let dirn = temp_dir("threadsn");
    let mut serial = opts(dir1.clone());
    serial.workers = 1;
    let mut wide = opts(dirn.clone());
    wide.workers = 4;

    let a = run(&m, &serial);
    let b = run(&m, &wide);
    assert_eq!(a.executed, m.cells.len());
    assert_eq!(b.executed, m.cells.len());
    assert_eq!(
        a.merged.serialize(),
        b.merged.serialize(),
        "merge order must not depend on thread count"
    );
    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dirn);
}

#[test]
fn interrupted_run_resumes_with_only_the_missing_cells() {
    let m = suite("plr").expect("plr suite");
    let dir = temp_dir("resume");

    // "Interrupt" after two cells via the budget.
    let mut first = opts(dir.clone());
    first.max_cells = Some(2);
    let partial = run(&m, &first);
    assert_eq!(partial.executed, 2);
    assert_eq!(partial.skipped, 2);
    assert!(!partial.complete());

    // The resume executes only what the interrupted run left behind.
    let resumed = run(&m, &opts(dir.clone()));
    assert_eq!(resumed.executed, 2);
    assert_eq!(resumed.cached, 2);
    assert!(resumed.complete());

    // And the resumed document matches a from-scratch run exactly.
    let fresh_dir = temp_dir("resume_fresh");
    let fresh = run(&m, &opts(fresh_dir.clone()));
    assert_eq!(resumed.merged.serialize(), fresh.merged.serialize());
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(fresh_dir);
}

#[test]
fn incomplete_merge_marks_skipped_cells_null() {
    let m = suite("moderate-load").expect("moderate-load suite");
    let dir = temp_dir("nulls");
    let mut o = opts(dir.clone());
    o.max_cells = Some(1);
    let partial = run(&m, &o);
    assert!(!partial.complete());
    let cells = partial
        .merged
        .get("cells")
        .and_then(orchestrator::json::Json::as_arr)
        .expect("cells array");
    assert_eq!(
        cells.len(),
        m.cells.len(),
        "merge always covers the manifest"
    );
    let nulls = cells
        .iter()
        .filter(|c| c.get("result") == Some(&orchestrator::json::Json::Null))
        .count();
    assert_eq!(nulls, m.cells.len() - 1);
    assert_eq!(
        partial.merged.get("complete"),
        Some(&orchestrator::json::Json::Bool(false))
    );
    let _ = std::fs::remove_dir_all(dir);
}
