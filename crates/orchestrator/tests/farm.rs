//! End-to-end tests for the multi-process experiment farm: the merged
//! output of `propdiff-run run --workers N` (real OS worker processes)
//! must be byte-identical to the threaded single-process runner at any
//! worker count, crashed workers must not change the answer, and a run
//! must resume from shards banked by an earlier, interrupted run.

use std::path::{Path, PathBuf};
use std::process::Command;

use experiments::Scale;
use orchestrator::cache::Cache;
use orchestrator::fingerprint::{source_fingerprint, workspace_root};
use orchestrator::manifest;
use orchestrator::runner::{run, RunOptions};

const PROPDIFF_RUN: &str = env!("CARGO_BIN_EXE_propdiff-run");

const SCALE: Scale = Scale::Custom {
    punits: 2_000,
    nseeds: 3,
};

fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("propdiff_farm_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the threaded (no-farm) runner over `suite` and returns the merged
/// document bytes exactly as `propdiff-run run` writes them.
fn threaded_reference(suite: &str, cache_dir: &Path) -> String {
    let m = manifest::suite(suite).unwrap();
    let mut opts = RunOptions::new(SCALE);
    opts.cache_dir = cache_dir.to_path_buf();
    opts.quiet = true;
    let report = run(&m, &opts);
    assert!(report.complete());
    report.merged.serialize()
}

/// Invokes the real binary: `propdiff-run run --workers <workers>` with a
/// private cache, returning the merged document bytes it wrote.
fn farm_run(suite: &str, workers: usize, dir: &Path, envs: &[(&str, &str)]) -> String {
    let out = dir.join(format!("{suite}.json"));
    let mut cmd = Command::new(PROPDIFF_RUN);
    cmd.args([
        "run",
        "--suite",
        suite,
        "--punits",
        "2000",
        "--seeds",
        "3",
        "--workers",
        &workers.to_string(),
        "--quiet",
        "--cache-dir",
    ])
    .arg(dir.join("cache"))
    .arg("--out")
    .arg(&out)
    .arg("--csv-dir")
    .arg(dir.join("csv"));
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let status = cmd.status().expect("spawn propdiff-run");
    assert!(status.success(), "farm run failed for suite {suite}");
    std::fs::read_to_string(&out).unwrap()
}

/// All `*.metrics.json` sidecars under a cache root, as (relative path,
/// contents), sorted — the farm must reproduce these byte-for-byte too.
fn metrics_sidecars(root: &Path) -> Vec<(String, String)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, root, out);
            } else if path.to_string_lossy().ends_with(".metrics.json") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read_to_string(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn process_farm_is_byte_identical_to_the_threaded_runner() {
    // Two suites, per the farm's acceptance bar: one metered (monitor
    // carries registry sidecars through the pipe) and one not (fig3).
    for suite in ["fig3", "monitor"] {
        let dir = fresh_dir(&format!("identity_{suite}"));
        let reference = threaded_reference(suite, &dir.join("threaded_cache"));
        let one = farm_run(suite, 1, &dir.join("w1"), &[]);
        let four = farm_run(suite, 4, &dir.join("w4"), &[]);
        assert_eq!(reference, one, "{suite}: threaded vs --workers 1");
        assert_eq!(reference, four, "{suite}: threaded vs --workers 4");
        assert_eq!(
            metrics_sidecars(&dir.join("threaded_cache")),
            metrics_sidecars(&dir.join("w4").join("cache")),
            "{suite}: metrics sidecars drifted between runner kinds"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crashed_workers_respawn_and_the_answer_does_not_change() {
    let dir = fresh_dir("crash");
    let reference = threaded_reference("fig3", &dir.join("threaded_cache"));
    // Every original worker exits with CRASH_STATUS after its first job;
    // the pool respawns (hook stripped) and re-runs the lost shards.
    let crashed = farm_run(
        "fig3",
        2,
        &dir.join("crashy"),
        &[(orchestrator::worker::EXIT_AFTER_ENV, "1")],
    );
    assert_eq!(reference, crashed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_new_run_resumes_from_shards_banked_by_an_interrupted_one() {
    let dir = fresh_dir("resume");
    let m = manifest::suite("fig3").unwrap();
    let total_shards: usize = m.cells.iter().map(|c| c.shard_count(SCALE)).sum();

    // Simulate an interrupted run: one cell got two of its three shards
    // into the cache before dying.
    let cache_dir = dir.join("cache");
    let cache = Cache::new(cache_dir.clone(), source_fingerprint(&workspace_root()));
    let cell = &m.cells[0];
    let shards = cell.shard_count(SCALE);
    assert_eq!(shards, 3, "fig3 cells shard per seed");
    for shard in [0, 2] {
        let (partial, registry) = cell.execute_shard(SCALE, shard);
        cache
            .store_shard(cell, SCALE, shard, shards, &partial, registry.as_deref())
            .unwrap();
    }

    let mut opts = RunOptions::new(SCALE);
    opts.cache_dir = cache_dir;
    opts.quiet = true;
    let report = run(&m, &opts);
    assert_eq!(
        report.shards_executed,
        total_shards - 2,
        "banked shards must be resumed, not re-run"
    );
    assert_eq!(report.executed, m.cells.len());

    // And the merged document is still exactly the from-scratch answer.
    let reference = threaded_reference("fig3", &dir.join("fresh_cache"));
    assert_eq!(report.merged.serialize(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}
