//! Trace serialization: a simple CSV format for exchanging workloads with
//! external tools (plotting, other simulators) and for regression fixtures.
//!
//! Format: a `ticks,class,size` header line followed by one row per packet
//! arrival, time-sorted.

use std::fmt;
use std::path::Path;

use simcore::Time;

use crate::trace::{Trace, TraceEntry};

/// Errors from parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Renders the trace as CSV (`ticks,class,size` header + one row per
    /// arrival).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(16 * self.len() + 16);
        out.push_str("ticks,class,size\n");
        for e in self.entries() {
            out.push_str(&format!("{},{},{}\n", e.at.ticks(), e.class, e.size));
        }
        out
    }

    /// Parses a CSV produced by [`Trace::to_csv`] (header required).
    /// Rows are re-sorted by time, so externally edited files are safe.
    pub fn from_csv(text: &str) -> Result<Trace, TraceParseError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == "ticks,class,size" => {}
            Some((_, h)) => {
                return Err(TraceParseError {
                    line: 1,
                    message: format!("expected header 'ticks,class,size', got '{h}'"),
                })
            }
            None => {
                return Err(TraceParseError {
                    line: 1,
                    message: "empty input".into(),
                })
            }
        }
        let mut entries = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |s: Option<&str>, what: &str| -> Result<u64, TraceParseError> {
                s.ok_or_else(|| TraceParseError {
                    line: idx + 1,
                    message: format!("missing {what}"),
                })?
                .trim()
                .parse::<u64>()
                .map_err(|e| TraceParseError {
                    line: idx + 1,
                    message: format!("bad {what}: {e}"),
                })
            };
            let at = parse(parts.next(), "ticks")?;
            let class = parse(parts.next(), "class")?;
            let size = parse(parts.next(), "size")?;
            if class > u8::MAX as u64 {
                return Err(TraceParseError {
                    line: idx + 1,
                    message: format!("class {class} out of range"),
                });
            }
            if size == 0 || size > u32::MAX as u64 {
                return Err(TraceParseError {
                    line: idx + 1,
                    message: format!("size {size} out of range"),
                });
            }
            if parts.next().is_some() {
                return Err(TraceParseError {
                    line: idx + 1,
                    message: "too many fields".into(),
                });
            }
            entries.push(TraceEntry {
                at: Time::from_ticks(at),
                class: class as u8,
                size: size as u32,
            });
        }
        Ok(Trace::from_entries(entries))
    }

    /// Writes the trace as CSV to `path`.
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Loads a trace from a CSV file.
    pub fn load_csv<P: AsRef<Path>>(path: P) -> std::io::Result<Result<Trace, TraceParseError>> {
        Ok(Trace::from_csv(&std::fs::read_to_string(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::IatDist;
    use crate::sizes::SizeDist;
    use crate::source::ClassSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> Trace {
        let mut sources = vec![
            ClassSource::new(0, IatDist::paper_pareto(100.0).unwrap(), SizeDist::paper()),
            ClassSource::new(
                1,
                IatDist::exponential(150.0).unwrap(),
                SizeDist::fixed(500),
            ),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        Trace::generate(&mut sources, Time::from_ticks(50_000), &mut rng)
    }

    #[test]
    fn csv_round_trip_preserves_entries() {
        let t = sample_trace();
        let back = Trace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t.entries(), back.entries());
    }

    #[test]
    fn file_round_trip() {
        let t = sample_trace();
        let path = std::env::temp_dir().join("pdd_trace_io_test.csv");
        t.save_csv(&path).unwrap();
        let back = Trace::load_csv(&path).unwrap().unwrap();
        assert_eq!(t.entries(), back.entries());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(Trace::from_csv("").unwrap_err().line, 1);
        assert!(Trace::from_csv("wrong,header,here\n").is_err());
        let bad_row = "ticks,class,size\n10,0,100\nnope,0,100\n";
        let err = Trace::from_csv(bad_row).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
        assert!(Trace::from_csv("ticks,class,size\n1,300,100\n").is_err());
        assert!(Trace::from_csv("ticks,class,size\n1,0,0\n").is_err());
        assert!(Trace::from_csv("ticks,class,size\n1,0,10,extra\n").is_err());
        assert!(Trace::from_csv("ticks,class,size\n1,0\n").is_err());
    }

    #[test]
    fn unsorted_rows_are_resorted() {
        let t = Trace::from_csv("ticks,class,size\n20,1,10\n5,0,10\n").unwrap();
        assert_eq!(t.entries()[0].at.ticks(), 5);
        assert_eq!(t.entries()[1].at.ticks(), 20);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = Trace::from_csv("ticks,class,size\n\n10,0,100\n\n").unwrap();
        assert_eq!(t.len(), 1);
    }
}
