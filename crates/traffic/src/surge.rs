//! Piecewise re-timing of a source — the workload half of dynamic
//! scenarios' `LoadSurge` events.
//!
//! A [`SurgedSource`] wraps any [`ArrivalSource`] and rescales its
//! inter-arrival gaps by a piecewise-constant schedule: the wrapped source
//! keeps drawing from its own RNG exactly as before (same variates, same
//! sizes), but the emitted timeline stretches (`scale > 1`, a lull) or
//! compresses (`scale < 1`, a surge) from each breakpoint on. A schedule of
//! all-1 scales reproduces the inner timeline *tick for tick* — the
//! identity the no-op-scenario determinism tests pin.

use rand::rngs::StdRng;
use simcore::{Dur, Time};

use crate::stream::ArrivalSource;

/// An [`ArrivalSource`] whose inter-arrival gaps are rescaled by a
/// piecewise-constant schedule of `(from, scale)` breakpoints.
///
/// The scale in force for a gap is the one at the gap's *start* on the
/// emitted (output) timeline — breakpoints are virtual times of the replay
/// the source feeds, not of the inner source's untouched clock. Gaps are
/// rounded to whole ticks after scaling, so `scale = 1.0` is exactly the
/// identity (integer-valued gaps round-trip through `f64` unchanged).
#[derive(Debug, Clone)]
pub struct SurgedSource<S> {
    inner: S,
    /// `(from, scale)` in time order; scale 1 before the first entry.
    schedule: Vec<(Time, f64)>,
    /// Last arrival emitted by the *inner* source.
    prev_inner: Time,
    /// Last arrival emitted by *this* source (the rescaled clock).
    clock: Time,
}

impl<S: ArrivalSource> SurgedSource<S> {
    /// Wraps `inner` with a gap-scale `schedule` of `(from, scale)`
    /// breakpoints.
    ///
    /// # Panics
    /// Panics if the schedule is not sorted by time or any scale is not
    /// positive and finite (the scenario builder validates these upstream;
    /// this guards direct construction).
    pub fn new(inner: S, schedule: Vec<(Time, f64)>) -> Self {
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "gap-scale schedule must be sorted by time"
        );
        assert!(
            schedule.iter().all(|&(_, s)| s > 0.0 && s.is_finite()),
            "gap scales must be positive and finite"
        );
        SurgedSource {
            inner,
            schedule,
            prev_inner: Time::ZERO,
            clock: Time::ZERO,
        }
    }

    /// The scale in force at `at` on the emitted timeline.
    fn scale_at(&self, at: Time) -> f64 {
        self.schedule
            .iter()
            .take_while(|&&(from, _)| from <= at)
            .last()
            .map_or(1.0, |&(_, s)| s)
    }
}

impl<S: ArrivalSource> ArrivalSource for SurgedSource<S> {
    fn class(&self) -> u8 {
        self.inner.class()
    }

    fn draw(&mut self, rng: &mut StdRng) -> (Time, u32) {
        let (at, size) = self.inner.draw(rng);
        let gap = at.saturating_since(self.prev_inner).ticks();
        self.prev_inner = at;
        let scaled = (gap as f64 * self.scale_at(self.clock)).round() as u64;
        self.clock += Dur::from_ticks(scaled);
        (self.clock, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::IatDist;
    use crate::sizes::SizeDist;
    use crate::source::ClassSource;
    use rand::SeedableRng;

    fn pareto_source(class: u8, mean_gap: f64) -> ClassSource {
        ClassSource::new(
            class,
            IatDist::paper_pareto(mean_gap).unwrap(),
            SizeDist::paper(),
        )
    }

    fn draw_n<S: ArrivalSource>(mut src: S, seed: u64, n: usize) -> Vec<(Time, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| src.draw(&mut rng)).collect()
    }

    #[test]
    fn unit_schedule_is_the_identity() {
        let plain = draw_n(pareto_source(1, 100.0), 9, 2_000);
        let surged = draw_n(
            SurgedSource::new(
                pareto_source(1, 100.0),
                vec![(Time::from_ticks(0), 1.0), (Time::from_ticks(50_000), 1.0)],
            ),
            9,
            2_000,
        );
        assert_eq!(plain, surged);
    }

    #[test]
    fn empty_schedule_is_the_identity() {
        let plain = draw_n(pareto_source(0, 80.0), 4, 500);
        let surged = draw_n(
            SurgedSource::new(pareto_source(0, 80.0), Vec::new()),
            4,
            500,
        );
        assert_eq!(plain, surged);
    }

    #[test]
    fn halving_gaps_doubles_the_rate_after_the_breakpoint() {
        // Deterministic 10-tick gaps, surge (scale 0.5) from t=100 on the
        // emitted clock: arrivals land at 10, 20, …, 100, 105, 110, …
        let det = ClassSource::new(0, IatDist::deterministic(10.0).unwrap(), SizeDist::fixed(1));
        let out = draw_n(
            SurgedSource::new(det, vec![(Time::from_ticks(100), 0.5)]),
            0,
            15,
        );
        let ticks: Vec<u64> = out.iter().map(|(t, _)| t.ticks()).collect();
        assert_eq!(
            ticks,
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 105, 110, 115, 120, 125]
        );
    }

    #[test]
    fn sizes_and_classes_pass_through_untouched() {
        let plain = draw_n(pareto_source(2, 120.0), 11, 300);
        let surged = draw_n(
            SurgedSource::new(pareto_source(2, 120.0), vec![(Time::from_ticks(0), 0.25)]),
            11,
            300,
        );
        assert_eq!(
            SurgedSource::new(pareto_source(2, 120.0), Vec::new()).class(),
            2
        );
        let sizes_plain: Vec<u32> = plain.iter().map(|&(_, s)| s).collect();
        let sizes_surged: Vec<u32> = surged.iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes_plain, sizes_surged);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_schedule_rejected() {
        let det = ClassSource::new(0, IatDist::deterministic(1.0).unwrap(), SizeDist::fixed(1));
        let _ = SurgedSource::new(
            det,
            vec![(Time::from_ticks(10), 1.0), (Time::from_ticks(5), 1.0)],
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nonpositive_scale_rejected() {
        let det = ClassSource::new(0, IatDist::deterministic(1.0).unwrap(), SizeDist::fixed(1));
        let _ = SurgedSource::new(det, vec![(Time::from_ticks(10), 0.0)]);
    }
}
