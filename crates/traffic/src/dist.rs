//! Interarrival-time distributions.

use std::fmt;

use rand::{Rng, RngExt};

/// Draws a uniform variate in the open interval (0, 1).
///
/// `rand`'s `random::<f64>()` yields values in `[0, 1)`; inverse-transform
/// sampling of heavy-tailed distributions must avoid the 0 endpoint (it maps
/// to +∞), so we flip the interval.
#[inline]
pub fn u01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.random::<f64>()
}

/// Errors raised when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// The requested mean was not strictly positive and finite.
    NonPositiveMean(f64),
    /// A Pareto shape parameter must exceed 1 for the mean to exist.
    ShapeTooSmall(f64),
    /// Uniform bounds were inverted or negative.
    BadBounds {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NonPositiveMean(m) => {
                write!(f, "mean must be positive and finite, got {m}")
            }
            DistError::ShapeTooSmall(a) => {
                write!(f, "Pareto shape must be > 1 for a finite mean, got {a}")
            }
            DistError::BadBounds { lo, hi } => {
                write!(
                    f,
                    "uniform bounds must satisfy 0 <= lo <= hi, got [{lo}, {hi}]"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

/// An interarrival-time distribution, in (fractional) ticks.
///
/// Samples are continuous; callers accumulate them and round only at the
/// arrival-time boundary, so no long-run rate bias is introduced.
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use traffic::IatDist;
///
/// let d = IatDist::paper_pareto(100.0).unwrap();  // α = 1.9, mean 100
/// assert!((d.mean() - 100.0).abs() < 1e-9);
/// let mut rng = StdRng::seed_from_u64(1);
/// let gap = d.sample(&mut rng);
/// assert!(gap >= 100.0 * 0.9 / 1.9); // never below the Pareto scale
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum IatDist {
    /// Classic Pareto: density ∝ x^(−α−1) for x ≥ x_m.
    ///
    /// For shape α ∈ (1, 2] the mean exists but the variance is infinite —
    /// the paper uses α = 1.9 precisely for that burstiness.
    Pareto {
        /// Shape parameter α.
        shape: f64,
        /// Scale (minimum value) x_m.
        scale: f64,
    },
    /// Pareto truncated at `cap`; samples above the cap are clamped.
    /// The constructor compensates the scale so the requested mean holds.
    BoundedPareto {
        /// Shape parameter α.
        shape: f64,
        /// Scale (minimum value) x_m.
        scale: f64,
        /// Upper clamp.
        cap: f64,
    },
    /// Exponential with the given mean (Poisson arrivals).
    Exponential {
        /// Mean interarrival.
        mean: f64,
    },
    /// Every gap is exactly `gap` (periodic arrivals).
    Deterministic {
        /// The constant gap.
        gap: f64,
    },
    /// Uniform on [lo, hi].
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl IatDist {
    /// Pareto distribution with the given shape and **mean**.
    ///
    /// The scale is derived as x_m = mean·(α−1)/α.
    pub fn pareto_with_mean(shape: f64, mean: f64) -> Result<Self, DistError> {
        if shape.is_nan() || shape <= 1.0 {
            return Err(DistError::ShapeTooSmall(shape));
        }
        check_mean(mean)?;
        Ok(IatDist::Pareto {
            shape,
            scale: mean * (shape - 1.0) / shape,
        })
    }

    /// The paper's Pareto(α = 1.9) with the given mean.
    pub fn paper_pareto(mean: f64) -> Result<Self, DistError> {
        Self::pareto_with_mean(crate::PAPER_PARETO_SHAPE, mean)
    }

    /// Exponential with the given mean.
    pub fn exponential(mean: f64) -> Result<Self, DistError> {
        check_mean(mean)?;
        Ok(IatDist::Exponential { mean })
    }

    /// Deterministic (periodic) with the given gap.
    pub fn deterministic(gap: f64) -> Result<Self, DistError> {
        check_mean(gap)?;
        Ok(IatDist::Deterministic { gap })
    }

    /// Uniform on [lo, hi].
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !(lo >= 0.0 && hi >= lo && hi.is_finite()) {
            return Err(DistError::BadBounds { lo, hi });
        }
        Ok(IatDist::Uniform { lo, hi })
    }

    /// Pareto clamped at `cap·mean` while preserving `mean` exactly.
    ///
    /// For a Pareto clamped at c, E[min(X,c)] = x_m·(α − (x_m/c)^(α−1))/(α−1);
    /// we solve for x_m numerically (the map x_m ↦ mean is monotone).
    pub fn bounded_pareto(shape: f64, mean: f64, cap_multiple: f64) -> Result<Self, DistError> {
        if shape.is_nan() || shape <= 1.0 {
            return Err(DistError::ShapeTooSmall(shape));
        }
        check_mean(mean)?;
        if cap_multiple.is_nan() || cap_multiple <= 1.0 {
            return Err(DistError::BadBounds {
                lo: 1.0,
                hi: cap_multiple,
            });
        }
        let cap = mean * cap_multiple;
        let clamped_mean = |xm: f64| xm * (shape - (xm / cap).powf(shape - 1.0)) / (shape - 1.0);
        // Bisection on x_m in (0, cap).
        let (mut lo, mut hi) = (f64::EPSILON, cap);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if clamped_mean(mid) < mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(IatDist::BoundedPareto {
            shape,
            scale: 0.5 * (lo + hi),
            cap,
        })
    }

    /// Draws one gap.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            IatDist::Pareto { shape, scale } => scale * u01(rng).powf(-1.0 / shape),
            IatDist::BoundedPareto { shape, scale, cap } => {
                (scale * u01(rng).powf(-1.0 / shape)).min(cap)
            }
            IatDist::Exponential { mean } => -mean * u01(rng).ln(),
            IatDist::Deterministic { gap } => gap,
            IatDist::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
        }
    }

    /// The distribution's mean gap.
    pub fn mean(&self) -> f64 {
        match *self {
            IatDist::Pareto { shape, scale } => scale * shape / (shape - 1.0),
            IatDist::BoundedPareto { shape, scale, cap } => {
                scale * (shape - (scale / cap).powf(shape - 1.0)) / (shape - 1.0)
            }
            IatDist::Exponential { mean } => mean,
            IatDist::Deterministic { gap } => gap,
            IatDist::Uniform { lo, hi } => 0.5 * (lo + hi),
        }
    }

    /// Returns a copy rescaled to a new mean.
    pub fn with_mean(&self, mean: f64) -> Result<Self, DistError> {
        check_mean(mean)?;
        let k = mean / self.mean();
        Ok(match *self {
            IatDist::Pareto { shape, scale } => IatDist::Pareto {
                shape,
                scale: scale * k,
            },
            IatDist::BoundedPareto { shape, scale, cap } => IatDist::BoundedPareto {
                shape,
                scale: scale * k,
                cap: cap * k,
            },
            IatDist::Exponential { .. } => IatDist::Exponential { mean },
            IatDist::Deterministic { .. } => IatDist::Deterministic { gap: mean },
            IatDist::Uniform { lo, hi } => IatDist::Uniform {
                lo: lo * k,
                hi: hi * k,
            },
        })
    }
}

fn check_mean(mean: f64) -> Result<(), DistError> {
    if mean > 0.0 && mean.is_finite() {
        Ok(())
    } else {
        Err(DistError::NonPositiveMean(mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(d: &IatDist, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn pareto_mean_formula_matches_constructor() {
        let d = IatDist::pareto_with_mean(1.9, 100.0).unwrap();
        assert!((d.mean() - 100.0).abs() < 1e-9);
        if let IatDist::Pareto { shape, scale } = d {
            assert!((shape - 1.9).abs() < 1e-12);
            assert!((scale - 100.0 * 0.9 / 1.9).abs() < 1e-9);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn pareto_samples_exceed_scale() {
        let d = IatDist::pareto_with_mean(1.9, 50.0).unwrap();
        let scale = 50.0 * 0.9 / 1.9;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= scale - 1e-12);
        }
    }

    #[test]
    fn pareto_empirical_mean_converges_roughly() {
        // α=1.9 has infinite variance, so convergence is slow; use a loose
        // tolerance and a large sample.
        let d = IatDist::paper_pareto(100.0).unwrap();
        let m = sample_mean(&d, 2_000_000, 42);
        assert!((m - 100.0).abs() / 100.0 < 0.10, "mean {m}");
    }

    #[test]
    fn exponential_empirical_mean() {
        let d = IatDist::exponential(20.0).unwrap();
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 20.0).abs() / 20.0 < 0.02, "mean {m}");
    }

    #[test]
    fn deterministic_is_constant() {
        let d = IatDist::deterministic(13.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 13.5);
        }
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let d = IatDist::uniform(10.0, 30.0).unwrap();
        assert_eq!(d.mean(), 20.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=30.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_preserves_mean_and_cap() {
        let d = IatDist::bounded_pareto(1.9, 100.0, 50.0).unwrap();
        assert!((d.mean() - 100.0).abs() < 1e-6, "mean {}", d.mean());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            assert!(d.sample(&mut rng) <= 5000.0 + 1e-9);
        }
        // Empirical mean converges much faster once the tail is clamped.
        let m = sample_mean(&d, 500_000, 11);
        assert!((m - 100.0).abs() / 100.0 < 0.02, "mean {m}");
    }

    #[test]
    fn with_mean_rescales_every_variant() {
        for d in [
            IatDist::paper_pareto(10.0).unwrap(),
            IatDist::exponential(10.0).unwrap(),
            IatDist::deterministic(10.0).unwrap(),
            IatDist::uniform(5.0, 15.0).unwrap(),
            IatDist::bounded_pareto(1.9, 10.0, 100.0).unwrap(),
        ] {
            let r = d.with_mean(33.0).unwrap();
            assert!((r.mean() - 33.0).abs() < 1e-6, "{r:?}");
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(IatDist::pareto_with_mean(0.9, 10.0).is_err());
        assert!(IatDist::pareto_with_mean(1.9, 0.0).is_err());
        assert!(IatDist::exponential(-1.0).is_err());
        assert!(IatDist::uniform(5.0, 1.0).is_err());
        assert!(IatDist::bounded_pareto(1.9, 10.0, 0.5).is_err());
        assert!(IatDist::deterministic(f64::NAN).is_err());
    }

    #[test]
    fn u01_is_in_open_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let u = u01(&mut rng);
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = IatDist::pareto_with_mean(0.5, 10.0).unwrap_err();
        assert!(e.to_string().contains("shape"));
    }
}
