//! Streaming (iterator-backed) arrival generation.
//!
//! A [`Trace`](crate::Trace) materializes every arrival up front — ideal
//! for replaying identical input through several schedulers, but O(packets)
//! memory. The iterators here generate the *same* arrival sequence lazily:
//! [`SourceStream`] walks one source, and [`MergedStream`] k-way-merges
//! several with the `(time, source index)` tie-break that
//! [`Trace::generate_per_source`](crate::Trace::generate_per_source) gets
//! from its stable sort. For equal sources, horizon and base seed,
//! `MergedStream::per_source` yields exactly that trace's entries, one at a
//! time, in O(sources) memory.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simcore::Time;

use crate::onoff::OnOffSource;
use crate::source::ClassSource;
use crate::trace::{per_source_seed, TraceEntry};

/// An unbounded generator of timestamped packet arrivals — the common face
/// of [`ClassSource`] and [`OnOffSource`] that lets the streaming
/// machinery (and the `qsim` runners built on it) take either.
pub trait ArrivalSource {
    /// The class this source feeds.
    fn class(&self) -> u8;

    /// Draws the next arrival: `(time, size_bytes)`.
    fn draw(&mut self, rng: &mut StdRng) -> (Time, u32);
}

impl ArrivalSource for ClassSource {
    fn class(&self) -> u8 {
        ClassSource::class(self)
    }

    fn draw(&mut self, rng: &mut StdRng) -> (Time, u32) {
        self.next_arrival(rng)
    }
}

impl ArrivalSource for OnOffSource {
    fn class(&self) -> u8 {
        OnOffSource::class(self)
    }

    fn draw(&mut self, rng: &mut StdRng) -> (Time, u32) {
        self.next_arrival(rng)
    }
}

/// Iterator over one source's arrivals up to an inclusive `horizon`.
///
/// The first arrival past the horizon ends the stream (matching the trace
/// generators, which discard it).
#[derive(Debug, Clone)]
pub struct SourceStream<S> {
    source: S,
    rng: StdRng,
    horizon: Time,
    done: bool,
}

impl<S: ArrivalSource> SourceStream<S> {
    /// Streams `source`'s arrivals from its own RNG seeded with `seed`.
    pub fn new(source: S, seed: u64, horizon: Time) -> Self {
        SourceStream {
            source,
            rng: StdRng::seed_from_u64(seed),
            horizon,
            done: false,
        }
    }
}

impl<S: ArrivalSource> Iterator for SourceStream<S> {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.done {
            return None;
        }
        let (at, size) = self.source.draw(&mut self.rng);
        if at > self.horizon {
            self.done = true;
            return None;
        }
        Some(TraceEntry {
            at,
            class: self.source.class(),
            size,
        })
    }
}

/// K-way merge of several [`SourceStream`]s into one time-ordered arrival
/// stream.
///
/// Ties are broken by source index, which is exactly the order the stable
/// sort in [`Trace::from_entries`](crate::Trace::from_entries) gives
/// per-source-generated traces — so the merged stream replays
/// [`Trace::generate_per_source`](crate::Trace::generate_per_source)
/// entry-for-entry without materializing it. One arrival per source is
/// buffered; the linear scan per `next()` is cheap for the handful of
/// sources the experiments use.
#[derive(Debug, Clone)]
pub struct MergedStream<S> {
    streams: Vec<SourceStream<S>>,
    pending: Vec<Option<TraceEntry>>,
}

impl<S: ArrivalSource> MergedStream<S> {
    /// Merges `sources`, seeding source *i* with
    /// [`per_source_seed`]`(base_seed, i)` — the seeding scheme of
    /// [`Trace::generate_per_source`](crate::Trace::generate_per_source).
    pub fn per_source(sources: Vec<S>, base_seed: u64, horizon: Time) -> Self {
        let streams: Vec<SourceStream<S>> = sources
            .into_iter()
            .enumerate()
            .map(|(i, src)| SourceStream::new(src, per_source_seed(base_seed, i), horizon))
            .collect();
        MergedStream::from_streams(streams)
    }

    /// Merges already-constructed streams (for custom per-source seeds).
    pub fn from_streams(mut streams: Vec<SourceStream<S>>) -> Self {
        let pending = streams.iter_mut().map(Iterator::next).collect();
        MergedStream { streams, pending }
    }
}

impl<S: ArrivalSource> Iterator for MergedStream<S> {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        let winner = self
            .pending
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (e.at, i)))
            .min()?
            .1;
        let entry = self.pending[winner].take();
        self.pending[winner] = self.streams[winner].next();
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::IatDist;
    use crate::sizes::SizeDist;
    use crate::trace::Trace;

    fn paper_source(class: u8, mean_gap: f64) -> ClassSource {
        ClassSource::new(
            class,
            IatDist::paper_pareto(mean_gap).unwrap(),
            SizeDist::paper(),
        )
    }

    #[test]
    fn source_stream_matches_materialized_generation() {
        let horizon = Time::from_ticks(500_000);
        let trace = Trace::generate_per_source(&mut [paper_source(0, 100.0)], horizon, 42);
        let streamed: Vec<TraceEntry> =
            SourceStream::new(paper_source(0, 100.0), per_source_seed(42, 0), horizon).collect();
        assert!(!streamed.is_empty());
        assert_eq!(trace.entries(), &streamed[..]);
    }

    #[test]
    fn merged_stream_equals_generate_per_source() {
        let horizon = Time::from_ticks(500_000);
        let mk = || {
            vec![
                paper_source(0, 80.0),
                paper_source(1, 120.0),
                paper_source(2, 200.0),
            ]
        };
        let trace = Trace::generate_per_source(&mut mk(), horizon, 7);
        let streamed: Vec<TraceEntry> = MergedStream::per_source(mk(), 7, horizon).collect();
        assert_eq!(trace.entries(), &streamed[..]);
    }

    #[test]
    fn merge_breaks_time_ties_by_source_index() {
        // Two deterministic sources firing at the same instants: the
        // lower-index source must always come first.
        let mk = |class| {
            ClassSource::new(
                class,
                IatDist::deterministic(10.0).unwrap(),
                SizeDist::fixed(1),
            )
        };
        let merged: Vec<TraceEntry> =
            MergedStream::per_source(vec![mk(1), mk(0)], 0, Time::from_ticks(40)).collect();
        let classes: Vec<u8> = merged.iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![1, 0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn onoff_sources_stream_too() {
        let src = OnOffSource::new(
            0,
            IatDist::deterministic(10.0).unwrap(),
            SizeDist::fixed(100),
            IatDist::deterministic(100.0).unwrap(),
            IatDist::deterministic(900.0).unwrap(),
        );
        let n = SourceStream::new(src, 3, Time::from_ticks(10_000)).count();
        // ~10 packets per 100-tick ON period, one period per 1000 ticks.
        assert!((80..=120).contains(&n), "got {n}");
    }

    #[test]
    fn empty_merge_is_empty() {
        let mut m = MergedStream::<ClassSource>::per_source(Vec::new(), 0, Time::from_ticks(10));
        assert_eq!(m.next(), None);
    }
}
