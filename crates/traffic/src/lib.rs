//! # traffic — workload generation for the PDD reproduction
//!
//! The SIGCOMM '99 evaluation drives its schedulers with bursty traffic:
//! Pareto-distributed interarrivals with shape α=1.9 (infinite variance) and
//! a trimodal packet-size distribution (40 B at 40 %, 550 B at 50 %, 1500 B
//! at 10 %). This crate implements those generators from scratch on top of
//! `rand`, plus the deterministic/periodic sources used by Study B's user
//! flows, on-off burst sources for stress tests, and recorded traces so that
//! different schedulers can be compared on *identical* input.
//!
//! ## Layout
//!
//! * [`IatDist`] — interarrival-time distributions (Pareto, exponential,
//!   deterministic, uniform, bounded Pareto).
//! * [`SizeDist`] — packet-size distributions, including
//!   [`SizeDist::paper`], the exact mix used in the paper's Study A.
//! * [`ClassSource`] — a per-class arrival stream combining the two.
//! * [`OnOffSource`] — a bursty on/off modulated source (extension).
//! * [`Trace`] — a recorded, mergeable, replayable arrival trace.
//! * [`SourceStream`] / [`MergedStream`] — iterator-backed generation that
//!   reproduces [`Trace::generate_per_source`] lazily in O(sources) memory.
//! * [`SurgedSource`] — piecewise gap rescaling of any source, the workload
//!   half of dynamic scenarios' load-surge events.
//! * [`LoadPlan`] — helper that converts (utilization, class shares, link
//!   rate) into per-class mean interarrivals, as §5 of the paper does.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dist;
mod io;
mod load;
mod onoff;
mod sizes;
mod source;
mod stream;
mod surge;
mod trace;

pub use dist::{u01, DistError, IatDist};
pub use io::TraceParseError;
pub use load::LoadPlan;
pub use onoff::OnOffSource;
pub use sizes::SizeDist;
pub use source::ClassSource;
pub use stream::{ArrivalSource, MergedStream, SourceStream};
pub use surge::SurgedSource;
pub use trace::{per_source_seed, Trace, TraceEntry};

/// The Pareto shape parameter used throughout the paper's evaluation (§5).
pub const PAPER_PARETO_SHAPE: f64 = 1.9;

/// Mean packet size, in bytes, of the paper's trimodal distribution:
/// 0.4·40 + 0.5·550 + 0.1·1500 = 441.
pub const PAPER_MEAN_PACKET_BYTES: f64 = 441.0;
