//! Per-class arrival streams.

use rand::Rng;
use simcore::Time;

use crate::dist::IatDist;
use crate::sizes::SizeDist;

/// A single service class's packet source: an interarrival distribution plus
/// a packet-size distribution.
///
/// Gaps are accumulated in `f64` and rounded only when an arrival time is
/// emitted, so rounding error never accumulates into a long-run rate bias.
#[derive(Debug, Clone)]
pub struct ClassSource {
    class: u8,
    iat: IatDist,
    sizes: SizeDist,
    clock: f64,
}

impl ClassSource {
    /// Creates a source for `class` with the given distributions.
    pub fn new(class: u8, iat: IatDist, sizes: SizeDist) -> Self {
        ClassSource {
            class,
            iat,
            sizes,
            clock: 0.0,
        }
    }

    /// The class this source feeds.
    pub fn class(&self) -> u8 {
        self.class
    }

    /// Mean interarrival gap, in ticks.
    pub fn mean_gap(&self) -> f64 {
        self.iat.mean()
    }

    /// Offered load in bytes per tick: mean size / mean gap.
    pub fn offered_load(&self) -> f64 {
        self.sizes.mean_bytes() / self.iat.mean()
    }

    /// Draws the next arrival: `(time, size_bytes)`.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (Time, u32) {
        self.clock += self.iat.sample(rng);
        let at = Time::from_ticks(self.clock.round() as u64);
        (at, self.sizes.sample(rng))
    }

    /// Resets the source clock to zero (for reuse across runs).
    pub fn reset(&mut self) {
        self.clock = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_nondecreasing() {
        let mut s = ClassSource::new(1, IatDist::paper_pareto(100.0).unwrap(), SizeDist::paper());
        let mut rng = StdRng::seed_from_u64(4);
        let mut prev = Time::ZERO;
        for _ in 0..10_000 {
            let (t, size) = s.next_arrival(&mut rng);
            assert!(t >= prev);
            assert!(size == 40 || size == 550 || size == 1500);
            prev = t;
        }
    }

    #[test]
    fn long_run_rate_matches_mean_gap() {
        let mut s = ClassSource::new(0, IatDist::exponential(50.0).unwrap(), SizeDist::fixed(100));
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = s.next_arrival(&mut rng).0;
        }
        let empirical_gap = last.ticks() as f64 / n as f64;
        assert!(
            (empirical_gap - 50.0).abs() / 50.0 < 0.02,
            "gap {empirical_gap}"
        );
    }

    #[test]
    fn offered_load_formula() {
        let s = ClassSource::new(
            2,
            IatDist::deterministic(100.0).unwrap(),
            SizeDist::fixed(50),
        );
        assert!((s.offered_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_restarts_clock() {
        let mut s = ClassSource::new(0, IatDist::deterministic(10.0).unwrap(), SizeDist::fixed(1));
        let mut rng = StdRng::seed_from_u64(0);
        let (t1, _) = s.next_arrival(&mut rng);
        s.reset();
        let (t2, _) = s.next_arrival(&mut rng);
        assert_eq!(t1, t2);
        assert_eq!(t1, Time::from_ticks(10));
    }
}
