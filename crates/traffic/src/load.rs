//! Translating (utilization, class shares) into per-class sources.

use crate::dist::{DistError, IatDist};
use crate::sizes::SizeDist;
use crate::source::ClassSource;

/// A plan for loading a link to a target utilization with a given class mix,
/// mirroring the setup of §5: "the utilization factor ρ is set to the ratio
/// of the average packet transmission time and the average interarrival of
/// the aggregate packet stream", with the class load distribution giving the
/// byte share of each class.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Link capacity in bytes per tick.
    pub link_rate: f64,
    /// Target aggregate utilization ρ ∈ (0, 1].
    pub utilization: f64,
    /// Per-class load fractions (must sum to 1).
    pub class_fractions: Vec<f64>,
    /// Packet-size distribution shared by all classes (as in the paper).
    pub sizes: SizeDist,
}

impl LoadPlan {
    /// Creates a plan after validating the parameters.
    pub fn new(
        link_rate: f64,
        utilization: f64,
        class_fractions: &[f64],
        sizes: SizeDist,
    ) -> Result<Self, DistError> {
        if !(link_rate > 0.0 && link_rate.is_finite()) {
            return Err(DistError::NonPositiveMean(link_rate));
        }
        if !(utilization > 0.0 && utilization.is_finite()) {
            return Err(DistError::NonPositiveMean(utilization));
        }
        let sum: f64 = class_fractions.iter().sum();
        if class_fractions.is_empty()
            || class_fractions.iter().any(|&f| f <= 0.0)
            || (sum - 1.0).abs() > 1e-6
        {
            return Err(DistError::BadBounds { lo: sum, hi: 1.0 });
        }
        Ok(LoadPlan {
            link_rate,
            utilization,
            class_fractions: class_fractions.to_vec(),
            sizes,
        })
    }

    /// The paper's Study-A defaults: link rate 1 byte/tick, trimodal sizes,
    /// class load split 40/30/20/10 %.
    pub fn paper_study_a(utilization: f64) -> Result<Self, DistError> {
        LoadPlan::new(1.0, utilization, &[0.4, 0.3, 0.2, 0.1], SizeDist::paper())
    }

    /// Number of classes in the plan.
    pub fn num_classes(&self) -> usize {
        self.class_fractions.len()
    }

    /// Mean packet transmission time in ticks — the paper's "p-unit".
    pub fn p_unit_ticks(&self) -> f64 {
        self.sizes.mean_bytes() / self.link_rate
    }

    /// Mean interarrival gap of class `i`, in ticks.
    ///
    /// Class i carries `utilization · link_rate · fraction_i` bytes/tick, so
    /// its mean packet gap is `mean_size / that`.
    pub fn mean_gap(&self, i: usize) -> f64 {
        self.sizes.mean_bytes() / (self.utilization * self.link_rate * self.class_fractions[i])
    }

    /// Per-class packet arrival rate λ_i, in packets/tick.
    pub fn packet_rate(&self, i: usize) -> f64 {
        1.0 / self.mean_gap(i)
    }

    /// Builds one [`ClassSource`] per class with the given interarrival
    /// family rescaled to each class's mean gap.
    pub fn sources(&self, family: &IatDist) -> Result<Vec<ClassSource>, DistError> {
        (0..self.num_classes())
            .map(|i| {
                Ok(ClassSource::new(
                    i as u8,
                    family.with_mean(self.mean_gap(i))?,
                    self.sizes.clone(),
                ))
            })
            .collect()
    }

    /// Builds the paper's Pareto(1.9) sources.
    pub fn pareto_sources(&self) -> Result<Vec<ClassSource>, DistError> {
        // The template mean is irrelevant; with_mean rescales per class.
        self.sources(&IatDist::paper_pareto(1.0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_aggregates_to_rho() {
        let plan = LoadPlan::paper_study_a(0.95).unwrap();
        let sources = plan.pareto_sources().unwrap();
        let total: f64 = sources.iter().map(|s| s.offered_load()).sum();
        assert!((total - 0.95).abs() < 1e-9, "total load {total}");
    }

    #[test]
    fn class_shares_match_fractions() {
        let plan = LoadPlan::paper_study_a(0.8).unwrap();
        let sources = plan.pareto_sources().unwrap();
        for (i, frac) in [0.4, 0.3, 0.2, 0.1].iter().enumerate() {
            let share = sources[i].offered_load() / 0.8;
            assert!((share - frac).abs() < 1e-9, "class {i} share {share}");
        }
    }

    #[test]
    fn p_unit_is_441_ticks_for_paper_setup() {
        let plan = LoadPlan::paper_study_a(0.9).unwrap();
        assert!((plan.p_unit_ticks() - 441.0).abs() < 1e-9);
    }

    #[test]
    fn packet_rate_is_inverse_gap() {
        let plan = LoadPlan::paper_study_a(0.5).unwrap();
        for i in 0..4 {
            assert!((plan.packet_rate(i) * plan.mean_gap(i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(LoadPlan::new(0.0, 0.9, &[1.0], SizeDist::paper()).is_err());
        assert!(LoadPlan::new(1.0, 0.0, &[1.0], SizeDist::paper()).is_err());
        assert!(LoadPlan::new(1.0, 0.9, &[0.5, 0.4], SizeDist::paper()).is_err());
        assert!(LoadPlan::new(1.0, 0.9, &[], SizeDist::paper()).is_err());
        assert!(LoadPlan::new(1.0, 0.9, &[1.5, -0.5], SizeDist::paper()).is_err());
    }

    #[test]
    fn custom_family_is_rescaled() {
        let plan = LoadPlan::paper_study_a(0.95).unwrap();
        let sources = plan.sources(&IatDist::exponential(123.0).unwrap()).unwrap();
        let total: f64 = sources.iter().map(|s| s.offered_load()).sum();
        assert!((total - 0.95).abs() < 1e-9);
    }
}
