//! Packet-size distributions.

use rand::{Rng, RngExt};

use crate::dist::DistError;

/// A packet-size distribution, in bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every packet has the same size.
    Fixed(u32),
    /// A weighted discrete distribution over a small set of sizes.
    ///
    /// Stored as `(size, cumulative_probability)` pairs with the last
    /// cumulative probability equal to 1.
    Empirical(Vec<(u32, f64)>),
}

impl SizeDist {
    /// The paper's Study-A packet-size mix (§5): 40 % are 40 B, 50 % are
    /// 550 B, and 10 % are 1500 B, for a mean of 441 B.
    pub fn paper() -> Self {
        SizeDist::empirical(&[(40, 0.4), (550, 0.5), (1500, 0.1)])
            .expect("paper size distribution is valid")
    }

    /// All packets are `bytes` long (Study B uses fixed 500 B packets).
    pub fn fixed(bytes: u32) -> Self {
        SizeDist::Fixed(bytes)
    }

    /// Builds an empirical distribution from `(size, probability)` pairs.
    pub fn empirical(entries: &[(u32, f64)]) -> Result<Self, DistError> {
        if entries.is_empty() {
            return Err(DistError::NonPositiveMean(0.0));
        }
        let total: f64 = entries.iter().map(|&(_, p)| p).sum();
        if !(total > 0.0 && total.is_finite()) || entries.iter().any(|&(s, p)| p < 0.0 || s == 0) {
            return Err(DistError::NonPositiveMean(total));
        }
        let mut cum = 0.0;
        let mut table = Vec::with_capacity(entries.len());
        for &(size, p) in entries {
            cum += p / total;
            table.push((size, cum));
        }
        // Guard against accumulated rounding error in the last bucket.
        table.last_mut().expect("nonempty").1 = 1.0;
        Ok(SizeDist::Empirical(table))
    }

    /// Draws one packet size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Empirical(table) => {
                let u: f64 = rng.random();
                for &(size, cum) in table {
                    if u < cum {
                        return size;
                    }
                }
                table.last().expect("nonempty").0
            }
        }
    }

    /// The mean packet size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Empirical(table) => {
                let mut prev = 0.0;
                let mut mean = 0.0;
                for &(size, cum) in table {
                    mean += size as f64 * (cum - prev);
                    prev = cum;
                }
                mean
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_mix_has_mean_441() {
        assert!((SizeDist::paper().mean_bytes() - 441.0).abs() < 1e-9);
    }

    #[test]
    fn paper_mix_empirical_frequencies() {
        let d = SizeDist::paper();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match d.sample(&mut rng) {
                40 => counts[0] += 1,
                550 => counts[1] += 1,
                1500 => counts[2] += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.4).abs() < 0.01);
        assert!((f(counts[1]) - 0.5).abs() < 0.01);
        assert!((f(counts[2]) - 0.1).abs() < 0.01);
    }

    #[test]
    fn fixed_always_returns_same() {
        let d = SizeDist::fixed(500);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 500);
        }
        assert_eq!(d.mean_bytes(), 500.0);
    }

    #[test]
    fn empirical_normalizes_weights() {
        // Weights 2:2:1 should behave like 0.4:0.4:0.2.
        let d = SizeDist::empirical(&[(10, 2.0), (20, 2.0), (30, 1.0)]).unwrap();
        assert!((d.mean_bytes() - (0.4 * 10.0 + 0.4 * 20.0 + 0.2 * 30.0)).abs() < 1e-9);
    }

    #[test]
    fn empirical_rejects_bad_input() {
        assert!(SizeDist::empirical(&[]).is_err());
        assert!(SizeDist::empirical(&[(10, -1.0)]).is_err());
        assert!(SizeDist::empirical(&[(0, 1.0)]).is_err());
        assert!(SizeDist::empirical(&[(10, 0.0)]).is_err());
    }
}
