//! Recorded arrival traces.
//!
//! A [`Trace`] decouples workload generation from scheduling: the same
//! recorded arrivals can be replayed through every scheduler under test,
//! which is exactly what the conservation-law checks and the scheduler
//! shoot-out ablation require. Traces are also the input to the Eq. (7)
//! feasibility checker, which replays class subsets through an FCFS server.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::Time;

use crate::source::ClassSource;

/// One recorded packet arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Arrival time.
    pub at: Time,
    /// Service class (0-based).
    pub class: u8,
    /// Packet length in bytes.
    pub size: u32,
}

/// A time-sorted sequence of packet arrivals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from raw entries, sorting by time (stable, so entries
    /// with equal timestamps keep their given order).
    pub fn from_entries(mut entries: Vec<TraceEntry>) -> Self {
        entries.sort_by_key(|e| e.at);
        Trace { entries }
    }

    /// Generates a merged trace by running every source until `horizon`.
    ///
    /// Sources draw from the shared `rng` in round-robin-by-next-arrival
    /// order, so the merged trace is deterministic for a given seed.
    pub fn generate<R: Rng + ?Sized>(
        sources: &mut [ClassSource],
        horizon: Time,
        rng: &mut R,
    ) -> Self {
        let mut entries = Vec::new();
        for src in sources.iter_mut() {
            loop {
                let (at, size) = src.next_arrival(rng);
                if at > horizon {
                    break;
                }
                entries.push(TraceEntry {
                    at,
                    class: src.class(),
                    size,
                });
            }
        }
        Trace::from_entries(entries)
    }

    /// Generates a merged trace giving each source its **own** RNG derived
    /// from `base_seed`. Unlike [`Trace::generate`], the arrival stream of
    /// source *i* is then independent of how many samples the other
    /// sources draw — which is what lets the streaming runner in `qsim`
    /// reproduce the identical workload without materializing the trace.
    pub fn generate_per_source(sources: &mut [ClassSource], horizon: Time, base_seed: u64) -> Self {
        let mut entries = Vec::new();
        for (i, src) in sources.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(per_source_seed(base_seed, i));
            loop {
                let (at, size) = src.next_arrival(&mut rng);
                if at > horizon {
                    break;
                }
                entries.push(TraceEntry {
                    at,
                    class: src.class(),
                    size,
                });
            }
        }
        Trace::from_entries(entries)
    }

    /// The entries, in nondecreasing time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the sub-trace containing only the classes in `classes`,
    /// preserving order.
    pub fn filter_classes(&self, classes: &[u8]) -> Trace {
        Trace {
            entries: self
                .entries
                .iter()
                .copied()
                .filter(|e| classes.contains(&e.class))
                .collect(),
        }
    }

    /// Total bytes carried by the trace.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size as u64).sum()
    }

    /// Average arrival rate in bytes/tick over the span of the trace.
    pub fn rate_bytes_per_tick(&self) -> f64 {
        match (self.entries.first(), self.entries.last()) {
            (Some(first), Some(last)) if last.at > first.at => {
                self.total_bytes() as f64 / (last.at - first.at).as_f64()
            }
            _ => 0.0,
        }
    }

    /// Per-class packet counts, indexed by class id (length = max class + 1).
    pub fn class_counts(&self) -> Vec<usize> {
        let max = self.entries.iter().map(|e| e.class).max().unwrap_or(0);
        let mut counts = vec![0usize; max as usize + 1];
        for e in &self.entries {
            counts[e.class as usize] += 1;
        }
        counts
    }

    /// Per-class arrival rates in packets/tick over the trace span.
    pub fn class_packet_rates(&self) -> Vec<f64> {
        let span = match (self.entries.first(), self.entries.last()) {
            (Some(f), Some(l)) if l.at > f.at => (l.at - f.at).as_f64(),
            _ => return Vec::new(),
        };
        self.class_counts()
            .into_iter()
            .map(|c| c as f64 / span)
            .collect()
    }
}

/// The derived seed for source `index` under `base_seed` (shared with the
/// `qsim` streaming runner so both produce identical workloads).
pub fn per_source_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::IatDist;
    use crate::sizes::SizeDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(at: u64, class: u8, size: u32) -> TraceEntry {
        TraceEntry {
            at: Time::from_ticks(at),
            class,
            size,
        }
    }

    #[test]
    fn from_entries_sorts_stably() {
        let t = Trace::from_entries(vec![
            entry(5, 1, 10),
            entry(3, 0, 20),
            entry(5, 2, 30), // same time as the class-1 entry; must stay after it
        ]);
        let classes: Vec<u8> = t.entries().iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![0, 1, 2]);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let make = |seed| {
            let mut sources = vec![
                ClassSource::new(0, IatDist::paper_pareto(100.0).unwrap(), SizeDist::paper()),
                ClassSource::new(1, IatDist::paper_pareto(200.0).unwrap(), SizeDist::paper()),
            ];
            let mut rng = StdRng::seed_from_u64(seed);
            Trace::generate(&mut sources, Time::from_ticks(100_000), &mut rng)
        };
        let a = make(7);
        let b = make(7);
        let c = make(8);
        assert_eq!(a.entries(), b.entries());
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn generated_rate_approximates_offered_load() {
        let mut sources = vec![ClassSource::new(
            0,
            IatDist::exponential(100.0).unwrap(),
            SizeDist::fixed(100),
        )];
        let mut rng = StdRng::seed_from_u64(12);
        let t = Trace::generate(&mut sources, Time::from_ticks(10_000_000), &mut rng);
        let rate = t.rate_bytes_per_tick();
        assert!((rate - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn per_source_generation_is_insensitive_to_other_sources() {
        // Adding a second source must not change the first source's
        // arrivals (unlike the shared-RNG generate()).
        let horizon = Time::from_ticks(200_000);
        let mk = |class| {
            ClassSource::new(
                class,
                IatDist::paper_pareto(100.0).unwrap(),
                SizeDist::paper(),
            )
        };
        let solo = Trace::generate_per_source(&mut [mk(0)], horizon, 9);
        let both = Trace::generate_per_source(&mut [mk(0), mk(1)], horizon, 9);
        let class0: Vec<_> = both
            .entries()
            .iter()
            .filter(|e| e.class == 0)
            .copied()
            .collect();
        assert_eq!(solo.entries(), &class0[..]);
    }

    #[test]
    fn filter_classes_keeps_only_requested() {
        let t = Trace::from_entries(vec![entry(1, 0, 1), entry(2, 1, 1), entry(3, 2, 1)]);
        let f = t.filter_classes(&[0, 2]);
        assert_eq!(f.len(), 2);
        assert!(f.entries().iter().all(|e| e.class != 1));
    }

    #[test]
    fn class_counts_and_rates() {
        let t = Trace::from_entries(vec![entry(0, 0, 1), entry(50, 1, 1), entry(100, 0, 1)]);
        assert_eq!(t.class_counts(), vec![2, 1]);
        let rates = t.class_packet_rates();
        assert!((rates[0] - 0.02).abs() < 1e-12);
        assert!((rates[1] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.rate_bytes_per_tick(), 0.0);
        assert_eq!(t.total_bytes(), 0);
        assert!(t.class_packet_rates().is_empty());
    }
}
