//! On-off modulated burst sources (extension used by robustness tests).

use rand::Rng;
use simcore::Time;

use crate::dist::IatDist;
use crate::sizes::SizeDist;

/// A two-state (ON/OFF) modulated source.
///
/// While ON, packets are emitted with `on_iat` gaps; OFF periods insert a
/// silent gap. Both period lengths are drawn from their own distributions,
/// which makes it easy to construct traffic that is bursty at timescales
/// much longer than single interarrivals — the regime where the paper argues
/// static capacity provisioning fails (§2.1).
#[derive(Debug, Clone)]
pub struct OnOffSource {
    class: u8,
    on_iat: IatDist,
    sizes: SizeDist,
    on_period: IatDist,
    off_period: IatDist,
    clock: f64,
    on_remaining: f64,
}

impl OnOffSource {
    /// Creates an on-off source. The first ON period starts at time zero.
    pub fn new(
        class: u8,
        on_iat: IatDist,
        sizes: SizeDist,
        on_period: IatDist,
        off_period: IatDist,
    ) -> Self {
        OnOffSource {
            class,
            on_iat,
            sizes,
            on_period,
            off_period,
            clock: 0.0,
            on_remaining: 0.0,
        }
    }

    /// The class this source feeds.
    pub fn class(&self) -> u8 {
        self.class
    }

    /// Long-run offered load in bytes/tick:
    /// duty_cycle × mean_size / mean_on_gap.
    pub fn offered_load(&self) -> f64 {
        let on = self.on_period.mean();
        let off = self.off_period.mean();
        let duty = on / (on + off);
        duty * self.sizes.mean_bytes() / self.on_iat.mean()
    }

    /// Draws the next arrival: `(time, size_bytes)`.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (Time, u32) {
        let mut gap = self.on_iat.sample(rng);
        // Burn through OFF periods until the gap fits in an ON period.
        while gap > self.on_remaining {
            gap -= self.on_remaining;
            self.clock += self.on_remaining;
            self.clock += self.off_period.sample(rng);
            self.on_remaining = self.on_period.sample(rng);
        }
        self.on_remaining -= gap;
        self.clock += gap;
        let at = Time::from_ticks(self.clock.round() as u64);
        (at, self.sizes.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn burst_source() -> OnOffSource {
        OnOffSource::new(
            0,
            IatDist::deterministic(10.0).unwrap(),
            SizeDist::fixed(100),
            IatDist::deterministic(100.0).unwrap(),
            IatDist::deterministic(900.0).unwrap(),
        )
    }

    #[test]
    fn duty_cycle_scales_offered_load() {
        let s = burst_source();
        // duty 0.1, on-rate 10 bytes/tick => 1 byte/tick long-run.
        assert!((s.offered_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_rate_matches_offered_load() {
        let mut s = burst_source();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 50_000;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = s.next_arrival(&mut rng).0;
        }
        let rate = (n as f64 * 100.0) / last.ticks() as f64;
        assert!((rate - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn arrivals_nondecreasing_with_random_periods() {
        let mut s = OnOffSource::new(
            1,
            IatDist::exponential(5.0).unwrap(),
            SizeDist::paper(),
            IatDist::paper_pareto(200.0).unwrap(),
            IatDist::paper_pareto(400.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = Time::ZERO;
        for _ in 0..20_000 {
            let (t, _) = s.next_arrival(&mut rng);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn off_periods_create_visible_gaps() {
        let mut s = burst_source();
        let mut rng = StdRng::seed_from_u64(0);
        let times: Vec<u64> = (0..100)
            .map(|_| s.next_arrival(&mut rng).0.ticks())
            .collect();
        let max_gap = times.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap >= 900, "expected an OFF gap, max gap {max_gap}");
    }
}
