//! # rand (offline stand-in)
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of the real `rand` API the workspace uses — [`Rng`],
//! [`RngExt`], [`SeedableRng`] and [`rngs::StdRng`] — as a local path
//! dependency. `StdRng` is a xoshiro256++ generator seeded through
//! SplitMix64: deterministic for a given seed, with good statistical
//! quality for the simulation workloads here. It is **not** the same
//! stream as upstream `StdRng` (ChaCha12) and is not cryptographically
//! secure, which nothing in this workspace requires.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// A source of random 64-bit words.
///
/// Mirrors the role of `rand::Rng` as the generic bound used by samplers;
/// higher-level draws live on the blanket [`RngExt`] extension.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience draws available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform integer in `[0, bound)`.
    #[inline]
    fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below anything the statistical tests here can detect.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64 (Blackman & Vigna's recommended procedure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
