//! # simcore — discrete-event simulation substrate
//!
//! This crate is the substrate that replaces ns-2 in the SIGCOMM '99
//! *Proportional Differentiated Services* reproduction: a deterministic
//! discrete-event engine built around three pieces:
//!
//! * [`Time`] / [`Dur`] — integer virtual time (ticks). Integer time keeps
//!   the event queue totally ordered and the simulation bit-reproducible
//!   across runs and platforms; floating point only appears at the
//!   measurement boundary.
//! * [`EventQueue`] — a binary-heap priority queue with FIFO tie-breaking:
//!   events scheduled for the same tick pop in the order they were pushed.
//! * [`Simulation`] / [`Model`] — a minimal runner: models describe how to
//!   handle one event and may schedule further events through [`Context`].
//!
//! The higher layers (`qsim`, the single-link Study-A harness, and `netsim`,
//! the multi-hop Study-B simulator) define their own event enums on top of
//! this engine.
//!
//! ## Example
//!
//! ```
//! use simcore::{Context, Dur, Model, Simulation, Time};
//!
//! struct Ping { count: u32 }
//! impl Model for Ping {
//!     type Event = ();
//!     fn handle(&mut self, _ev: (), ctx: &mut Context<()>) {
//!         self.count += 1;
//!         if self.count < 3 {
//!             ctx.schedule_in(Dur::from_ticks(10), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ping { count: 0 });
//! sim.schedule(Time::ZERO, ());
//! sim.run();
//! assert_eq!(sim.model().count, 3);
//! assert_eq!(sim.now(), Time::from_ticks(20));
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod sim;
mod time;

pub use event::EventQueue;
pub use sim::{Context, HeartbeatFn, Model, RunOutcome, Simulation};
pub use time::{Dur, Time};
