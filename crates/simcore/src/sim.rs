//! The simulation runner: an event loop over a [`Model`].

use crate::event::EventQueue;
use crate::time::{Dur, Time};

/// A discrete-event model.
///
/// The model owns all mutable simulation state; the runner feeds it one
/// event at a time, in timestamp order, and collects the follow-up events
/// the model schedules through [`Context`].
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event occurring at `ctx.now()`.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<Self::Event>);
}

/// Handle given to [`Model::handle`] for reading the clock and scheduling
/// follow-up events.
pub struct Context<E> {
    now: Time,
    pending: Vec<(Time, E)>,
    stop: bool,
}

impl<E> Context<E> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time: discrete-event
    /// simulations must never schedule into the past.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.pending.push((at, event));
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: Dur, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Requests that the run loop stop after this event is handled.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Why a [`Simulation`] run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The horizon passed to [`Simulation::run_until`] was reached.
    HorizonReached,
    /// The event budget passed to [`Simulation::run_for_events`] was spent.
    EventBudgetSpent,
    /// The model called [`Context::stop`].
    Stopped,
}

/// A heartbeat observer: `(virtual time, events handled, queue depth)`.
///
/// `simcore` sits below the telemetry crate in the dependency graph, so the
/// hook is a plain boxed callback; telemetry adapts it onto its probe
/// vocabulary at the call site.
pub type HeartbeatFn = Box<dyn FnMut(Time, u64, usize)>;

/// A discrete-event simulation: a [`Model`] plus an event queue and a clock.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: Time,
    handled: u64,
    // Backing storage for `Context::pending`, recycled across events so the
    // hot loop never allocates: it is moved into the `Context` for the
    // duration of `Model::handle` and taken back (drained, capacity kept)
    // afterwards.
    pending_buf: Vec<(Time, M::Event)>,
    // Deepest the event queue has ever been (pressure diagnostic).
    heap_high_water: usize,
    // Progress callback fired every `.0` handled events, if installed.
    heartbeat: Option<(u64, HeartbeatFn)>,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: Time::ZERO,
            handled: 0,
            pending_buf: Vec::new(),
            heap_high_water: 0,
            heartbeat: None,
        }
    }

    /// Installs a progress heartbeat: `f(now, events_handled, queue_depth)`
    /// fires after every `every`-th handled event, so long runs are
    /// observably alive. Replaces any previous heartbeat.
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn set_heartbeat(&mut self, every: u64, f: impl FnMut(Time, u64, usize) + 'static) {
        assert!(every > 0, "heartbeat interval must be positive");
        self.heartbeat = Some((every, Box::new(f)));
    }

    /// Removes the heartbeat installed by [`set_heartbeat`](Self::set_heartbeat).
    pub fn clear_heartbeat(&mut self) {
        self.heartbeat = None;
    }

    /// The deepest the event queue has ever been — a pressure diagnostic
    /// for models that fan events out faster than they retire them.
    pub fn heap_high_water(&self) -> usize {
        self.heap_high_water
    }

    /// Current event-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Current virtual time (timestamp of the last handled event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.handled
    }

    /// Read access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to extract collected statistics).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an initial event from outside the model.
    pub fn schedule(&mut self, at: Time, event: M::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Handles a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.step_inner().is_some()
    }

    fn step_inner(&mut self) -> Option<bool> {
        let (t, ev) = self.queue.pop()?;
        Some(self.dispatch(t, ev))
    }

    /// Hands one already-popped event to the model and reschedules its
    /// follow-ups. Returns the model's stop request.
    fn dispatch(&mut self, t: Time, ev: M::Event) -> bool {
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        let mut ctx = Context {
            now: t,
            pending: std::mem::take(&mut self.pending_buf),
            stop: false,
        };
        self.model.handle(ev, &mut ctx);
        self.handled += 1;
        for (at, ev) in ctx.pending.drain(..) {
            self.queue.push(at, ev);
        }
        self.pending_buf = ctx.pending;
        if self.queue.len() > self.heap_high_water {
            self.heap_high_water = self.queue.len();
        }
        if let Some((every, f)) = &mut self.heartbeat {
            if self.handled.is_multiple_of(*every) {
                f(self.now, self.handled, self.queue.len());
            }
        }
        ctx.stop
    }

    /// Runs until the event queue drains or the model stops the loop.
    pub fn run(&mut self) -> RunOutcome {
        loop {
            match self.step_inner() {
                None => return RunOutcome::Drained,
                Some(true) => return RunOutcome::Stopped,
                Some(false) => {}
            }
        }
    }

    /// Runs until no pending event is at or before `horizon` (events *at*
    /// the horizon are handled), the queue drains, or the model stops.
    pub fn run_until(&mut self, horizon: Time) -> RunOutcome {
        loop {
            match self.queue.pop_at_or_before(horizon) {
                Some((t, ev)) => {
                    if self.dispatch(t, ev) {
                        return RunOutcome::Stopped;
                    }
                }
                None if self.queue.is_empty() => return RunOutcome::Drained,
                None => return RunOutcome::HorizonReached,
            }
        }
    }

    /// Runs for at most `budget` further events.
    pub fn run_for_events(&mut self, budget: u64) -> RunOutcome {
        for _ in 0..budget {
            match self.step_inner() {
                None => return RunOutcome::Drained,
                Some(true) => return RunOutcome::Stopped,
                Some(false) => {}
            }
        }
        RunOutcome::EventBudgetSpent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself `reps` times with spacing `gap`.
    struct Ticker {
        reps: u32,
        gap: Dur,
        fired_at: Vec<Time>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, _ev: (), ctx: &mut Context<()>) {
            self.fired_at.push(ctx.now());
            if (self.fired_at.len() as u32) < self.reps {
                ctx.schedule_in(self.gap, ());
            }
        }
    }

    #[test]
    fn run_drains_and_advances_clock() {
        let mut sim = Simulation::new(Ticker {
            reps: 5,
            gap: Dur::from_ticks(3),
            fired_at: Vec::new(),
        });
        sim.schedule(Time::ZERO, ());
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.now(), Time::from_ticks(12));
        assert_eq!(sim.events_handled(), 5);
        let ticks: Vec<u64> = sim.model().fired_at.iter().map(|t| t.ticks()).collect();
        assert_eq!(ticks, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn run_until_respects_horizon_inclusive() {
        let mut sim = Simulation::new(Ticker {
            reps: 100,
            gap: Dur::from_ticks(10),
            fired_at: Vec::new(),
        });
        sim.schedule(Time::ZERO, ());
        assert_eq!(
            sim.run_until(Time::from_ticks(30)),
            RunOutcome::HorizonReached
        );
        // Events at t=0,10,20,30 handled; next pending is t=40.
        assert_eq!(sim.model().fired_at.len(), 4);
        assert_eq!(sim.now(), Time::from_ticks(30));
        // Continuing picks up where we left off.
        assert_eq!(
            sim.run_until(Time::from_ticks(45)),
            RunOutcome::HorizonReached
        );
        assert_eq!(sim.now(), Time::from_ticks(40));
    }

    #[test]
    fn run_for_events_spends_budget() {
        let mut sim = Simulation::new(Ticker {
            reps: 100,
            gap: Dur::from_ticks(1),
            fired_at: Vec::new(),
        });
        sim.schedule(Time::ZERO, ());
        assert_eq!(sim.run_for_events(7), RunOutcome::EventBudgetSpent);
        assert_eq!(sim.events_handled(), 7);
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Context<u32>) {
            if ev == 3 {
                ctx.stop();
            } else {
                ctx.schedule_in(Dur::from_ticks(1), ev + 1);
            }
        }
    }

    #[test]
    fn model_can_stop_the_loop() {
        let mut sim = Simulation::new(Stopper);
        sim.schedule(Time::ZERO, 0);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.now(), Time::from_ticks(3));
    }

    #[test]
    fn stop_still_flushes_followups_to_the_queue() {
        // A model that schedules a follow-up AND stops in the same handle:
        // the follow-up must survive into the queue (the recycled pending
        // buffer is drained before the stop is reported).
        struct ScheduleAndStop;
        impl Model for ScheduleAndStop {
            type Event = u32;
            fn handle(&mut self, ev: u32, ctx: &mut Context<u32>) {
                ctx.schedule_in(Dur::from_ticks(1), ev + 1);
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(ScheduleAndStop);
        sim.schedule(Time::ZERO, 0);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        // Resuming handles the follow-up scheduled by the stopping event.
        assert_eq!(sim.run_for_events(1), RunOutcome::Stopped);
        assert_eq!(sim.now(), Time::from_ticks(1));
        assert_eq!(sim.events_handled(), 2);
    }

    #[test]
    fn run_until_between_events_reports_horizon() {
        let mut sim = Simulation::new(Ticker {
            reps: 3,
            gap: Dur::from_ticks(10),
            fired_at: Vec::new(),
        });
        sim.schedule(Time::ZERO, ());
        // Horizon strictly between two event times: queue is nonempty.
        assert_eq!(
            sim.run_until(Time::from_ticks(15)),
            RunOutcome::HorizonReached
        );
        assert_eq!(sim.model().fired_at.len(), 2);
        // Horizon past the last event: queue drains.
        assert_eq!(sim.run_until(Time::from_ticks(1000)), RunOutcome::Drained);
        assert_eq!(sim.model().fired_at.len(), 3);
    }

    #[test]
    fn heartbeat_fires_every_n_events_with_virtual_time() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let beats: Rc<RefCell<Vec<(u64, u64, usize)>>> = Rc::default();
        let mut sim = Simulation::new(Ticker {
            reps: 10,
            gap: Dur::from_ticks(5),
            fired_at: Vec::new(),
        });
        let sink = Rc::clone(&beats);
        sim.set_heartbeat(4, move |now, handled, depth| {
            sink.borrow_mut().push((now.ticks(), handled, depth));
        });
        sim.schedule(Time::ZERO, ());
        assert_eq!(sim.run(), RunOutcome::Drained);
        // 10 events → beats after events 4 and 8, at virtual times 15/35.
        assert_eq!(*beats.borrow(), vec![(15, 4, 1), (35, 8, 1)]);
        sim.clear_heartbeat();
        sim.schedule(sim.now(), ());
        sim.run();
        assert_eq!(beats.borrow().len(), 2, "cleared heartbeat must not fire");
    }

    #[test]
    fn heap_high_water_tracks_peak_queue_depth() {
        // Fan out: the first event schedules 5 follow-ups, which retire
        // one by one. Peak depth is 5, final depth 0.
        struct Fan;
        impl Model for Fan {
            type Event = bool;
            fn handle(&mut self, root: bool, ctx: &mut Context<bool>) {
                if root {
                    for k in 1..=5 {
                        ctx.schedule_in(Dur::from_ticks(k), false);
                    }
                }
            }
        }
        let mut sim = Simulation::new(Fan);
        sim.schedule(Time::ZERO, true);
        assert_eq!(sim.heap_high_water(), 0);
        sim.run();
        assert_eq!(sim.heap_high_water(), 5);
    }

    #[test]
    #[should_panic(expected = "heartbeat interval must be positive")]
    fn zero_heartbeat_interval_panics() {
        let mut sim = Simulation::new(Stopper);
        sim.set_heartbeat(0, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut Context<()>) {
                ctx.schedule(Time::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule(Time::from_ticks(5), ());
        sim.run_for_events(1);
    }
}
