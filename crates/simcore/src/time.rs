//! Integer virtual time.
//!
//! A [`Time`] is an absolute instant measured in *ticks* since the start of
//! the simulation; a [`Dur`] is a span of ticks. The meaning of one tick is
//! chosen per experiment (Study A uses "1 byte at link rate"; Study B uses
//! nanoseconds), which keeps this crate free of unit policy.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time, in ticks.
///
/// `Time` is a transparent `u64` newtype: cheap to copy, totally ordered,
/// and immune to the floating-point comparison hazards that plague
/// `f64`-clocked simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs a `Time` from a raw tick count.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        Time(t)
    }

    /// Raw tick count since the origin.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(
            earlier <= self,
            "Time::since: earlier ({earlier}) is after self ({self})"
        );
        Dur(self.0 - earlier.0)
    }

    /// Elapsed duration since `earlier`, or [`Dur::ZERO`] if `earlier` is in
    /// the future. Useful when clock skew is expected (e.g. warm-up cutoffs).
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Converts to `f64` ticks, for statistics at the measurement boundary.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Dur) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Dur {
    /// The empty duration.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable duration.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Constructs a `Dur` from a raw tick count.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        Dur(t)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Converts to `f64` ticks.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// True if this duration is zero ticks.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer scale factor.
    #[inline]
    pub const fn scaled(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Time) -> Dur {
        self.since(other)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, other: Dur) -> Dur {
        Dur(self.0 + other.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, other: Dur) {
        self.0 += other.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Dur) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, other: Dur) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_ticks(100);
        let d = Dur::from_ticks(42);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t + Dur::ZERO, t);
    }

    #[test]
    fn subtraction_of_times_yields_duration() {
        let a = Time::from_ticks(10);
        let b = Time::from_ticks(25);
        assert_eq!(b - a, Dur::from_ticks(15));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = Time::from_ticks(10);
        let b = Time::from_ticks(25);
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(b.saturating_since(a), Dur::from_ticks(15));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn since_panics_on_negative_span() {
        let _ = Time::from_ticks(1).since(Time::from_ticks(2));
    }

    #[test]
    fn duration_scaling() {
        let d = Dur::from_ticks(7);
        assert_eq!(d * 3, Dur::from_ticks(21));
        assert_eq!(d.scaled(3), Dur::from_ticks(21));
        assert_eq!(Dur::from_ticks(21) / 3, d);
    }

    #[test]
    fn duration_sum() {
        let total: Dur = (1..=4).map(Dur::from_ticks).sum();
        assert_eq!(total, Dur::from_ticks(10));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Time::MAX.checked_add(Dur::from_ticks(1)), None);
        assert_eq!(
            Time::ZERO.checked_add(Dur::from_ticks(5)),
            Some(Time::from_ticks(5))
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_ticks(1) < Time::from_ticks(2));
        assert!(Dur::from_ticks(1) < Dur::from_ticks(2));
        assert_eq!(Time::ZERO.max(Time::from_ticks(9)), Time::from_ticks(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_ticks(5).to_string(), "t5");
        assert_eq!(Dur::from_ticks(5).to_string(), "5t");
    }

    #[test]
    fn f64_conversion() {
        assert_eq!(Time::from_ticks(441).as_f64(), 441.0);
        assert_eq!(Dur::from_ticks(441).as_f64(), 441.0);
    }
}
