//! Stable priority queue of timestamped events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// Events popped from the queue come out in nondecreasing time order, and
/// events scheduled for the *same* tick come out in insertion order. The
/// latter matters for reproducibility: a packet arrival and a transmission
/// completion at the same tick must always resolve the same way.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

// Reverse ordering so the BinaryHeap (a max-heap) pops the earliest entry.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event along with its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `horizon`; leaves the queue untouched otherwise.
    ///
    /// This is the single-call replacement for a `peek_time` + `pop` pair:
    /// the run loop's bounds test and removal share one heap access, and
    /// `None` means either "empty" or "next event is past the horizon"
    /// (disambiguate with [`EventQueue::is_empty`]).
    pub fn pop_at_or_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        match self.heap.peek() {
            Some(e) if e.time <= horizon => self.heap.pop().map(|e| (e.time, e.event)),
            _ => None,
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the FIFO sequence counter keeps going).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ticks(30), "c");
        q.push(Time::from_ticks(10), "a");
        q.push(Time::from_ticks(20), "b");
        assert_eq!(q.pop(), Some((Time::from_ticks(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ticks(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ticks(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Time::from_ticks(5), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((Time::from_ticks(5), i)));
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ticks(7), ());
        q.push(Time::from_ticks(3), ());
        assert_eq!(q.peek_time(), Some(Time::from_ticks(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Time::from_ticks(7)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(Time::from_ticks(10), "late");
        q.push(Time::from_ticks(5), "due");
        assert_eq!(
            q.pop_at_or_before(Time::from_ticks(5)),
            Some((Time::from_ticks(5), "due"))
        );
        // The remaining event is past the horizon: not popped, not lost.
        assert_eq!(q.pop_at_or_before(Time::from_ticks(9)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_at_or_before(Time::from_ticks(10)),
            Some((Time::from_ticks(10), "late"))
        );
        assert_eq!(q.pop_at_or_before(Time::from_ticks(u64::MAX)), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        let mut q = EventQueue::new();
        q.push(Time::from_ticks(1), 'a');
        q.push(Time::from_ticks(1), 'b');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(Time::from_ticks(1), 'c');
        // 'b' was pushed before 'c', so it must still come first.
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    proptest! {
        /// Popping the whole queue yields times in nondecreasing order, and
        /// equal times preserve insertion order (stability).
        #[test]
        fn prop_pop_order_is_stable_sort(times in prop::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (idx, &t) in times.iter().enumerate() {
                q.push(Time::from_ticks(t), idx);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort_by_key(|&(t, i)| (t, i)); // stable order == (time, insertion)
            let mut got = Vec::new();
            while let Some((t, idx)) = q.pop() {
                got.push((t.ticks(), idx));
            }
            prop_assert_eq!(got, expected);
        }
    }
}
