//! First-come-first-served — the undifferentiated reference server.
//!
//! FCFS is also the measurement instrument for the feasibility conditions:
//! Eq. (5)/(7) compare any scheduler against "the aggregate traffic serviced
//! by a work-conserving FCFS server of the same capacity".

use std::collections::VecDeque;

use simcore::Time;

use crate::packet::Packet;
use crate::scheduler::Scheduler;

/// A single shared FIFO across all classes.
#[derive(Debug, Clone)]
pub struct Fcfs {
    num_classes: usize,
    queue: VecDeque<Packet>,
    packets: Vec<usize>,
    bytes: Vec<u64>,
}

impl Fcfs {
    /// Creates an FCFS scheduler aware of `num_classes` (for accounting).
    pub fn new(num_classes: usize) -> Self {
        Fcfs {
            num_classes,
            queue: VecDeque::new(),
            packets: vec![0; num_classes],
            bytes: vec![0; num_classes],
        }
    }
}

impl Scheduler for Fcfs {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn enqueue(&mut self, pkt: Packet) {
        let c = pkt.class as usize;
        assert!(c < self.num_classes, "class {c} out of range");
        self.packets[c] += 1;
        self.bytes[c] += pkt.size as u64;
        self.queue.push_back(pkt);
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        let c = pkt.class as usize;
        self.packets[c] -= 1;
        self.bytes[c] -= pkt.size as u64;
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.packets[class]
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        let pos = self.queue.iter().rposition(|p| p.class as usize == class)?;
        let pkt = self.queue.remove(pos).expect("position exists");
        self.packets[class] -= 1;
        self.bytes[class] -= pkt.size as u64;
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "FCFS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_fifo_order_ignores_class() {
        let mut s = Fcfs::new(3);
        s.enqueue(Packet::new(1, 2, 10, Time::from_ticks(0)));
        s.enqueue(Packet::new(2, 0, 10, Time::from_ticks(1)));
        s.enqueue(Packet::new(3, 1, 10, Time::from_ticks(2)));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(Time::from_ticks(10)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn per_class_accounting() {
        let mut s = Fcfs::new(2);
        s.enqueue(Packet::new(1, 0, 100, Time::ZERO));
        s.enqueue(Packet::new(2, 1, 50, Time::ZERO));
        assert_eq!(s.backlog_packets(0), 1);
        assert_eq!(s.backlog_bytes(1), 50);
        assert_eq!(s.total_backlog_bytes(), 150);
        s.dequeue(Time::ZERO);
        assert_eq!(s.backlog_packets(0), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn dequeue_empty_returns_none() {
        let mut s = Fcfs::new(1);
        assert_eq!(s.dequeue(Time::ZERO), None);
    }
}
