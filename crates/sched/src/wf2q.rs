//! Worst-case Fair Weighted Fair Queueing (WF²Q+) — the tightest
//! capacity-differentiation baseline.
//!
//! WFQ lets a high-weight class run arbitrarily far *ahead* of its GPS
//! fluid schedule; WF²Q+ adds an eligibility test — a head packet may be
//! served only once its GPS service would have *started*
//! (`S_i ≤ V(t)`) — and picks the smallest finish tag among eligible
//! heads. The system virtual time advances as
//! `V = max(V + L_served/Σw, min_backlogged S_i)`, which keeps V inside
//! the busy period's start-tag span with O(1) work.
//!
//! Included to show that even the *fairest* capacity differentiation still
//! cannot control delay ratios (§2.1's argument).

use std::collections::VecDeque;

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::Scheduler;

/// Per-class tag state.
#[derive(Debug, Clone, Copy, Default)]
struct Tags {
    /// Start tag of the head packet.
    start: f64,
    /// Finish tag of the head packet.
    finish: f64,
    /// Finish tag of the most recently *enqueued* packet (for arrivals).
    last_finish: f64,
}

/// The WF²Q+ scheduler with SDPs as class weights.
#[derive(Debug, Clone)]
pub struct Wf2q {
    weights: Sdp,
    queues: Vec<VecDeque<Packet>>,
    bytes: Vec<u64>,
    tags: Vec<Tags>,
    vtime: f64,
    weight_sum: f64,
}

impl Wf2q {
    /// Creates a WF²Q+ scheduler; class weights are the SDPs.
    pub fn new(weights: Sdp) -> Self {
        let n = weights.num_classes();
        let weight_sum = weights.values().iter().sum();
        Wf2q {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; n],
            tags: vec![Tags::default(); n],
            vtime: 0.0,
            weight_sum,
        }
    }

    fn reset_if_idle(&mut self) {
        if self.queues.iter().all(|q| q.is_empty()) {
            self.vtime = 0.0;
            self.tags.iter_mut().for_each(|t| *t = Tags::default());
        }
    }

    /// Recomputes the head tags of `class` after its head departed.
    fn promote_next_head(&mut self, class: usize) {
        if let Some(head) = self.queues[class].front() {
            let t = &mut self.tags[class];
            t.start = t.finish;
            t.finish = t.start + head.size as f64 / self.weights.get(class);
        }
    }
}

impl Scheduler for Wf2q {
    fn num_classes(&self) -> usize {
        self.queues.len()
    }

    fn enqueue(&mut self, pkt: Packet) {
        let c = pkt.class as usize;
        assert!(c < self.queues.len(), "class {c} out of range");
        self.reset_if_idle();
        let was_empty = self.queues[c].is_empty();
        let t = &mut self.tags[c];
        if was_empty {
            t.start = self.vtime.max(t.last_finish);
            t.finish = t.start + pkt.size as f64 / self.weights.get(c);
            t.last_finish = t.finish;
        } else {
            t.last_finish += pkt.size as f64 / self.weights.get(c);
        }
        self.bytes[c] += pkt.size as u64;
        self.queues[c].push_back(pkt);
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        if self.queues.iter().all(|q| q.is_empty()) {
            return None;
        }
        // Advance virtual time to at least the smallest start tag so at
        // least one head is always eligible (the WF²Q+ "jump" rule).
        let min_start = self
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(c, _)| self.tags[c].start)
            .fold(f64::INFINITY, f64::min);
        self.vtime = self.vtime.max(min_start);
        // Among eligible heads (S ≤ V), pick the smallest finish tag; ties
        // favor the higher class.
        let mut winner: Option<(usize, f64)> = None;
        for (c, q) in self.queues.iter().enumerate() {
            if q.is_empty() || self.tags[c].start > self.vtime + 1e-9 {
                continue;
            }
            let f = self.tags[c].finish;
            match winner {
                Some((_, bf)) if f > bf => {}
                _ => winner = Some((c, f)),
            }
        }
        let (c, _) = winner?;
        let pkt = self.queues[c].pop_front().expect("winner has a head");
        self.bytes[c] -= pkt.size as u64;
        // V advances by the served packet's normalized service.
        self.vtime += pkt.size as f64 / self.weight_sum;
        self.promote_next_head(c);
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues[class].len()
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        let pkt = self.queues[class].pop_back()?;
        self.bytes[class] -= pkt.size as u64;
        let t = &mut self.tags[class];
        t.last_finish -= pkt.size as f64 / self.weights.get(class);
        if self.queues[class].is_empty() {
            // The head tags now describe a departed packet; harmless, they
            // are rebuilt on the next arrival (start = max(V, last_finish)).
            t.finish = t.last_finish;
        }
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "WF2Q+"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, size: u32, at: u64) -> Packet {
        Packet::new(seq, class, size, Time::from_ticks(at))
    }

    #[test]
    fn weighted_share_under_saturation() {
        let mut s = Wf2q::new(Sdp::new(&[1.0, 3.0]).unwrap());
        for i in 0..400 {
            s.enqueue(pkt(2 * i, 0, 100, 0));
            s.enqueue(pkt(2 * i + 1, 1, 100, 0));
        }
        let mut high = 0;
        for _ in 0..200 {
            if s.dequeue(Time::ZERO).unwrap().class == 1 {
                high += 1;
            }
        }
        assert!((140..=160).contains(&high), "high share {high}/200");
    }

    #[test]
    fn fifo_within_class() {
        let mut s = Wf2q::new(Sdp::new(&[1.0, 2.0]).unwrap());
        for i in 0..5 {
            s.enqueue(pkt(i, 1, 100, i));
        }
        for i in 0..5 {
            assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, i);
        }
    }

    #[test]
    fn eligibility_holds_back_future_start_tags() {
        // Class 1 (weight 10) floods; its later packets' start tags exceed
        // V, so class 0 is not starved while class 1 runs ahead.
        let mut s = Wf2q::new(Sdp::new(&[1.0, 10.0]).unwrap());
        for i in 0..10 {
            s.enqueue(pkt(i, 1, 100, 0));
        }
        s.enqueue(pkt(100, 0, 100, 0));
        // Serve 11 packets; class 0's single packet must appear within the
        // first weight-proportional window (11 services · 1/11 share ≥ 1).
        let mut order = Vec::new();
        for _ in 0..11 {
            order.push(s.dequeue(Time::ZERO).unwrap().class);
        }
        assert!(
            order.iter().take(11).any(|&c| c == 0),
            "class 0 starved: {order:?}"
        );
        assert!(s.is_empty());
    }

    #[test]
    fn idle_reset_clears_tags() {
        let mut s = Wf2q::new(Sdp::new(&[1.0, 2.0]).unwrap());
        s.enqueue(pkt(1, 0, 100, 0));
        assert!(s.dequeue(Time::ZERO).is_some());
        assert!(s.dequeue(Time::from_ticks(100)).is_none());
        s.enqueue(pkt(2, 1, 100, 500));
        s.enqueue(pkt(3, 0, 100, 500));
        // Fresh busy period: higher-weight class has the smaller finish tag.
        assert_eq!(s.dequeue(Time::from_ticks(500)).unwrap().class, 1);
    }

    #[test]
    fn drop_newest_adjusts_tags() {
        let mut s = Wf2q::new(Sdp::new(&[1.0, 2.0]).unwrap());
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 0, 100, 0));
        let dropped = s.drop_newest(0).unwrap();
        assert_eq!(dropped.seq, 2);
        assert_eq!(s.backlog_packets(0), 1);
        assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, 1);
        assert!(s.is_empty());
    }
}
