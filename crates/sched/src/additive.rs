//! The additive differentiation scheduler — §2.1, Eq. (3).
//!
//! Head-of-line priority `p_i(t) = w_i(t) + s_i`: a waiting-time priority
//! with an additive head start instead of a multiplicative gain. In heavy
//! load it tends to *constant delay differences* `d̄_i − d̄_j = s_j − s_i`
//! rather than constant ratios. The SDPs here are measured in ticks.

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, ReconfigureError, Scheduler};

/// The additive (waiting-time + constant) priority scheduler.
#[derive(Debug, Clone)]
pub struct Additive {
    queues: ClassQueues,
    sdp: Sdp,
}

impl Additive {
    /// Creates an additive scheduler; `sdp` values are priority offsets in
    /// ticks (higher class = larger offset).
    pub fn new(sdp: Sdp) -> Self {
        Additive {
            queues: ClassQueues::new(sdp.num_classes()),
            sdp,
        }
    }

    /// The configured offsets.
    pub fn sdp(&self) -> &Sdp {
        &self.sdp
    }
}

impl Scheduler for Additive {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        let winner = self
            .queues
            .select_by(|c, head| head.waiting(now).as_f64() + self.sdp.get(c))?;
        self.queues.pop(winner)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        "Additive"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        if sdp.num_classes() != self.queues.num_classes() {
            return Err(ReconfigureError::ClassCountMismatch {
                have: self.queues.num_classes(),
                want: sdp.num_classes(),
            });
        }
        self.sdp = sdp.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, at: u64) -> Packet {
        Packet::new(seq, class, 100, Time::from_ticks(at))
    }

    #[test]
    fn offset_gives_fixed_head_start() {
        // s = [10, 60]: the class-1 packet wins until the class-0 packet has
        // waited 50 ticks longer than it.
        let mut s = Additive::new(Sdp::new(&[10.0, 60.0]).unwrap());
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 40));
        // At t=80: p0 = 80+10 = 90, p1 = 40+60 = 100 → class 1.
        assert_eq!(s.dequeue(Time::from_ticks(80)).unwrap().class, 1);
    }

    #[test]
    fn old_low_class_packet_eventually_wins() {
        let mut s = Additive::new(Sdp::new(&[10.0, 60.0]).unwrap());
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 100));
        // At t=200: p0 = 210, p1 = 160 → class 0 despite the offset.
        assert_eq!(s.dequeue(Time::from_ticks(200)).unwrap().class, 0);
    }

    #[test]
    fn tie_prefers_higher_class() {
        let mut s = Additive::new(Sdp::new(&[10.0, 60.0]).unwrap());
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 50));
        // At t=100: p0 = 110, p1 = 110 → class 1.
        assert_eq!(s.dequeue(Time::from_ticks(100)).unwrap().class, 1);
    }
}
