//! # sched — packet schedulers for relative delay differentiation
//!
//! This crate implements the scheduling machinery of the SIGCOMM '99
//! *Proportional Differentiated Services* paper:
//!
//! * [`Wtp`] — **Waiting-Time Priority** (§4.2, Kleinrock's
//!   Time-Dependent Priorities): head-of-line priority `p_i(t) = w_i(t)·s_i`.
//! * [`Bpr`] — **Backlog-Proportional Rate** (§4.1), in the packetized form
//!   of Appendix 3 (virtual service functions, `argmin(L_i − v_i)`).
//! * [`FluidBpr`] — the exact fluid BPR server, used to verify
//!   Proposition 1 (simultaneous queue clearing).
//! * Baselines from §2.1: [`Fcfs`], [`StrictPriority`], capacity
//!   differentiation via [`Wfq`], [`Wf2q`], [`Scfq`] and [`Drr`], and the
//!   [`Additive`] scheduler (`p_i(t) = w_i(t) + s_i`, Eq. 3).
//! * Extensions the paper's §7 calls for: [`Pad`] (Proportional Average
//!   Delay) and [`Hpd`] (Hybrid Proportional Delay) — the schedulers that
//!   hold the proportional model even at moderate loads — plus the
//!   [`PlrDropper`] (proportional loss-rate differentiation) and simple
//!   buffer policies for lossy operation.
//! * The **rank-function PIFO core** ([`PifoCore`], [`RankFn`],
//!   [`RankKind`]): one programmable engine that re-expresses WTP, PAD,
//!   HPD, Additive, Strict and FCFS as rank functions (each differentially
//!   verified against its bespoke twin by `conformance::rank_diff`) and
//!   hosts [LSTF](RankKind::Lstf) — least-slack-time-first, from the
//!   Universal Packet Scheduling line — as a rank-only discipline.
//!
//! All schedulers are **pure data structures**: they own per-class FIFO
//! queues and answer `enqueue`/`dequeue(now)` queries. A link/server owner
//! (see the `qsim` and `netsim` crates) drives them, which lets the same
//! scheduler code run under the single-link Study-A harness, the multi-hop
//! Study-B simulator, property tests, and micro-benchmarks.
//!
//! ## Conventions
//!
//! * Classes are 0-indexed; **higher index = higher class** (the paper's
//!   class N). SDPs must therefore be nondecreasing: `s[0] ≤ s[1] ≤ …`.
//! * "Queueing delay" is *waiting time*: arrival → start of transmission.
//! * Service is non-preemptive and work-conserving.
//! * Ties are broken in favor of the higher class (paper, Appendix 3).
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod additive;
mod bpr;
mod bpr_fluid;
mod class;
mod dropper;
mod drr;
mod factory;
mod fcfs;
mod hpd;
mod packet;
mod pad;
mod rank;
mod scfq;
mod scheduler;
mod strict;
mod wf2q;
mod wfq;
mod wtp;

pub use additive::Additive;
pub use bpr::Bpr;
pub use bpr_fluid::FluidBpr;
pub use class::{Sdp, SdpError};
pub use dropper::{BufferPolicy, DropDecision, PlrDropper};
pub use drr::Drr;
pub use factory::{SchedulerKind, SchedulerVisitor};
pub use fcfs::Fcfs;
pub use hpd::Hpd;
pub use packet::Packet;
pub use pad::Pad;
pub use rank::{
    AdditiveRank, FcfsRank, HpdRank, LstfRank, PadRank, PifoCore, RankFn, RankKind, StrictRank,
    WtpRank, DEFAULT_SLACK_BASE_TICKS,
};
pub use scfq::Scfq;
pub use scheduler::{ClassQueues, ReconfigureError, Scheduler};
pub use strict::StrictPriority;
pub use wf2q::Wf2q;
pub use wfq::Wfq;
pub use wtp::Wtp;

#[cfg(test)]
mod invariants;
#[cfg(test)]
pub(crate) mod testutil;
