//! Scheduler Differentiation Parameters (SDPs).

use std::fmt;

/// Errors from SDP validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SdpError {
    /// Fewer than two classes make differentiation meaningless.
    TooFewClasses(usize),
    /// An SDP was zero, negative, or non-finite.
    NonPositive(f64),
    /// SDPs must be nondecreasing with class index (s_1 ≤ s_2 ≤ … ≤ s_N).
    NotNondecreasing {
        /// Index at which the ordering broke.
        index: usize,
    },
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdpError::TooFewClasses(n) => write!(f, "need at least 2 classes, got {n}"),
            SdpError::NonPositive(s) => write!(f, "SDPs must be positive and finite, got {s}"),
            SdpError::NotNondecreasing { index } => {
                write!(f, "SDPs must be nondecreasing; violated at index {index}")
            }
        }
    }
}

impl std::error::Error for SdpError {}

/// A validated vector of Scheduler Differentiation Parameters.
///
/// Following the paper's convention, `s[0] ≤ s[1] ≤ … ≤ s[N−1]` with class
/// N−1 the highest class. In heavy load both WTP and BPR drive the delay
/// ratios to the *inverse* SDP ratios (Eq. 10): `d̄_i/d̄_j → s_j/s_i`.
/// # Example
///
/// ```
/// use sched::Sdp;
///
/// let sdp = Sdp::geometric(4, 2.0).unwrap();      // 1, 2, 4, 8
/// assert_eq!(sdp.values(), &[1.0, 2.0, 4.0, 8.0]);
/// assert_eq!(sdp.target_ratio(0), 2.0);           // d̄1/d̄2 target
/// assert!(Sdp::new(&[2.0, 1.0]).is_err());        // must be nondecreasing
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sdp(Vec<f64>);

impl Sdp {
    /// Validates and wraps a raw SDP vector.
    pub fn new(sdps: &[f64]) -> Result<Self, SdpError> {
        if sdps.len() < 2 {
            return Err(SdpError::TooFewClasses(sdps.len()));
        }
        for &s in sdps {
            if !(s > 0.0 && s.is_finite()) {
                return Err(SdpError::NonPositive(s));
            }
        }
        for (i, w) in sdps.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(SdpError::NotNondecreasing { index: i + 1 });
            }
        }
        Ok(Sdp(sdps.to_vec()))
    }

    /// Geometric SDPs `1, r, r², …` for `n` classes — the paper's Study A
    /// uses r = 2 (Figs. 1a/2a) and r = 4 (Figs. 1b/2b).
    pub fn geometric(n: usize, ratio: f64) -> Result<Self, SdpError> {
        if ratio < 1.0 || !ratio.is_finite() {
            return Err(SdpError::NonPositive(ratio));
        }
        Sdp::new(&(0..n).map(|i| ratio.powi(i as i32)).collect::<Vec<_>>())
    }

    /// The paper's Study-A default: s = 1, 2, 4, 8.
    pub fn paper_default() -> Self {
        Sdp::geometric(4, 2.0).expect("static parameters are valid")
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.0.len()
    }

    /// The raw parameter slice.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// The SDP of class `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Target delay ratio `d̄_i / d̄_{i+1} = s_{i+1} / s_i` between
    /// successive classes under the proportional model (Eq. 10/13).
    pub fn target_ratio(&self, i: usize) -> f64 {
        self.0[i + 1] / self.0[i]
    }

    /// The implied Delay Differentiation Parameters, normalized so that
    /// δ_1 = 1: δ_i = s_1/s_i (Eq. 10).
    pub fn implied_ddps(&self) -> Vec<f64> {
        self.0.iter().map(|&s| self.0[0] / s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_1_2_4_8() {
        assert_eq!(Sdp::paper_default().values(), &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn geometric_ratio_4() {
        let s = Sdp::geometric(4, 4.0).unwrap();
        assert_eq!(s.values(), &[1.0, 4.0, 16.0, 64.0]);
        assert_eq!(s.target_ratio(0), 4.0);
        assert_eq!(s.target_ratio(2), 4.0);
    }

    #[test]
    fn implied_ddps_are_inverse_sdps() {
        let s = Sdp::paper_default();
        let d = s.implied_ddps();
        assert_eq!(d, vec![1.0, 0.5, 0.25, 0.125]);
        // DDPs are ordered δ1 > δ2 > … > δN as the paper requires.
        assert!(d.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert_eq!(Sdp::new(&[1.0]), Err(SdpError::TooFewClasses(1)));
        assert_eq!(Sdp::new(&[1.0, 0.0]), Err(SdpError::NonPositive(0.0)));
        assert!(Sdp::new(&[1.0, f64::INFINITY]).is_err());
        assert_eq!(
            Sdp::new(&[2.0, 1.0]),
            Err(SdpError::NotNondecreasing { index: 1 })
        );
        assert!(Sdp::geometric(4, 0.5).is_err());
    }

    #[test]
    fn equal_sdps_are_allowed() {
        // Equal SDPs degrade gracefully to "no differentiation".
        let s = Sdp::new(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(s.target_ratio(0), 1.0);
    }

    #[test]
    fn error_display() {
        assert!(Sdp::new(&[])
            .unwrap_err()
            .to_string()
            .contains("at least 2"));
    }
}
