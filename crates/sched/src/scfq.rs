//! Self-Clocked Fair Queueing — a simpler capacity-differentiation baseline.
//!
//! SCFQ replaces WFQ's GPS virtual clock with the finish tag of the packet
//! most recently selected for service, trading some fairness bound for O(1)
//! virtual-time maintenance. Included as a second point on the
//! "capacity differentiation" axis of §2.1.

use std::collections::VecDeque;

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::Scheduler;

/// Self-Clocked Fair Queueing with per-class weights.
#[derive(Debug, Clone)]
pub struct Scfq {
    weights: Sdp,
    queues: Vec<VecDeque<(Packet, f64)>>,
    bytes: Vec<u64>,
    finish_last: Vec<f64>,
    vtime: f64,
}

impl Scfq {
    /// Creates an SCFQ scheduler; class weights are the SDPs.
    pub fn new(weights: Sdp) -> Self {
        let n = weights.num_classes();
        Scfq {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; n],
            finish_last: vec![0.0; n],
            vtime: 0.0,
        }
    }

    fn reset_if_idle(&mut self) {
        if self.queues.iter().all(|q| q.is_empty()) {
            self.vtime = 0.0;
            self.finish_last.iter_mut().for_each(|f| *f = 0.0);
        }
    }
}

impl Scheduler for Scfq {
    fn num_classes(&self) -> usize {
        self.queues.len()
    }

    fn enqueue(&mut self, pkt: Packet) {
        let c = pkt.class as usize;
        assert!(c < self.queues.len(), "class {c} out of range");
        self.reset_if_idle();
        let start = self.vtime.max(self.finish_last[c]);
        let finish = start + pkt.size as f64 / self.weights.get(c);
        self.finish_last[c] = finish;
        self.bytes[c] += pkt.size as u64;
        self.queues[c].push_back((pkt, finish));
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let mut winner: Option<(usize, f64)> = None;
        for (c, q) in self.queues.iter().enumerate() {
            if let Some(&(_, f)) = q.front() {
                match winner {
                    Some((_, bf)) if f > bf => {}
                    _ => winner = Some((c, f)),
                }
            }
        }
        let (c, f) = winner?;
        let (pkt, _) = self.queues[c].pop_front().expect("winner has a head");
        self.bytes[c] -= pkt.size as u64;
        // Self-clocking: the virtual time is the tag of the packet now in
        // service.
        self.vtime = f;
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues[class].len()
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        let (pkt, _) = self.queues[class].pop_back()?;
        self.bytes[class] -= pkt.size as u64;
        // Roll the per-class finish tag back to the new tail so future
        // arrivals don't inherit virtual service of the dropped packet.
        if let Some(&(_, f)) = self.queues[class].back() {
            self.finish_last[class] = f;
        }
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "SCFQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, size: u32, at: u64) -> Packet {
        Packet::new(seq, class, size, Time::from_ticks(at))
    }

    #[test]
    fn weighted_share_under_saturation() {
        let mut s = Scfq::new(Sdp::new(&[1.0, 3.0]).unwrap());
        for i in 0..400 {
            s.enqueue(pkt(2 * i, 0, 100, 0));
            s.enqueue(pkt(2 * i + 1, 1, 100, 0));
        }
        let mut high = 0;
        for _ in 0..200 {
            if s.dequeue(Time::ZERO).unwrap().class == 1 {
                high += 1;
            }
        }
        assert!((140..=160).contains(&high), "high share {high}/200");
    }

    #[test]
    fn late_arrival_tags_off_current_service() {
        let mut s = Scfq::new(Sdp::new(&[1.0, 1.0]).unwrap());
        s.enqueue(pkt(1, 0, 100, 0));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, 1); // vtime = 100
                                                           // Arrives while "in service": start tag is vtime (100), not 0.
        s.enqueue(pkt(2, 1, 100, 50));
        s.enqueue(pkt(3, 0, 100, 50));
        // Tags: class1 = 200, class0 = 200; tie → higher class first.
        assert_eq!(s.dequeue(Time::from_ticks(100)).unwrap().class, 1);
        assert_eq!(s.dequeue(Time::from_ticks(200)).unwrap().class, 0);
    }

    #[test]
    fn idle_reset() {
        let mut s = Scfq::new(Sdp::new(&[1.0, 1.0]).unwrap());
        s.enqueue(pkt(1, 0, 100, 0));
        s.dequeue(Time::ZERO);
        s.enqueue(pkt(2, 0, 100, 500));
        // After idle reset the new packet's tag starts from 0 again.
        assert_eq!(s.queues[0].front().unwrap().1, 100.0);
    }

    #[test]
    fn fifo_within_class() {
        let mut s = Scfq::new(Sdp::new(&[1.0, 2.0]).unwrap());
        s.enqueue(pkt(1, 1, 300, 0));
        s.enqueue(pkt(2, 1, 40, 0));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, 1);
        assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, 2);
    }
}
