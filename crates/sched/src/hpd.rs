//! Hybrid Proportional Delay (HPD) — extension from the paper's §7.
//!
//! HPD blends WTP's short-timescale responsiveness with PAD's long-term
//! accuracy: the head-of-line priority of class i is
//!
//! `p_i(t) = g · s_i·w_i(t) + (1 − g) · s_i·(D_i + w_i(t))/(n_i + 1)`
//!
//! i.e. a convex combination of the normalized *instantaneous* waiting time
//! (the WTP term) and the projected normalized *average* delay (the PAD
//! term). `g = 0.875` is the operating point reported in the follow-on
//! literature; `g = 1` degenerates to WTP and `g = 0` to PAD.

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, ReconfigureError, Scheduler};

/// The Hybrid Proportional Delay scheduler.
#[derive(Debug, Clone)]
pub struct Hpd {
    queues: ClassQueues,
    sdp: Sdp,
    g: f64,
    cum_delay: Vec<f64>,
    departed: Vec<u64>,
}

impl Hpd {
    /// Creates an HPD scheduler with mixing factor `g ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `g` is outside `[0, 1]`.
    pub fn new(sdp: Sdp, g: f64) -> Self {
        assert!((0.0..=1.0).contains(&g), "g must be in [0,1], got {g}");
        let n = sdp.num_classes();
        Hpd {
            queues: ClassQueues::new(n),
            sdp,
            g,
            cum_delay: vec![0.0; n],
            departed: vec![0; n],
        }
    }

    /// The recommended default mixing factor.
    pub fn with_default_g(sdp: Sdp) -> Self {
        Hpd::new(sdp, 0.875)
    }

    fn priority(&self, class: usize, head: &Packet, now: Time) -> f64 {
        let w = head.waiting(now).as_f64();
        let s = self.sdp.get(class);
        let wtp_term = s * w;
        let pad_term = s * (self.cum_delay[class] + w) / (self.departed[class] + 1) as f64;
        self.g * wtp_term + (1.0 - self.g) * pad_term
    }

    /// Measured long-term average delay of departed class-`class` packets.
    pub fn average_delay(&self, class: usize) -> f64 {
        if self.departed[class] == 0 {
            0.0
        } else {
            self.cum_delay[class] / self.departed[class] as f64
        }
    }
}

impl Scheduler for Hpd {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        let winner = self
            .queues
            .select_by(|c, head| self.priority(c, head, now))?;
        let pkt = self.queues.pop(winner)?;
        self.cum_delay[winner] += pkt.waiting(now).as_f64();
        self.departed[winner] += 1;
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        "HPD"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        if sdp.num_classes() != self.queues.num_classes() {
            return Err(ReconfigureError::ClassCountMismatch {
                have: self.queues.num_classes(),
                want: sdp.num_classes(),
            });
        }
        // The per-class delay history (`cum_delay`/`departed`) is kept: the
        // PAD term keeps correcting toward equal s_i·d̄_i using the delays
        // actually measured so far, so after a step the old averages steer
        // the priorities until new departures dilute them — the dynamics
        // suite measures how that shifts reconvergence relative to the
        // memoryless WTP.
        self.sdp = sdp.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_one_matches_wtp_choice() {
        let mut h = Hpd::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mut w = crate::wtp::Wtp::new(Sdp::new(&[1.0, 2.0]).unwrap());
        for s in [&mut h as &mut dyn Scheduler, &mut w as &mut dyn Scheduler] {
            s.enqueue(Packet::new(1, 0, 100, Time::ZERO));
            s.enqueue(Packet::new(2, 1, 100, Time::from_ticks(20)));
        }
        // WTP at t=30: p0 = 30, p1 = 20 → class 0 for both.
        assert_eq!(h.dequeue(Time::from_ticks(30)).unwrap().class, 0);
        assert_eq!(w.dequeue(Time::from_ticks(30)).unwrap().class, 0);
    }

    #[test]
    fn g_zero_matches_pad_choice() {
        let mut h = Hpd::new(Sdp::new(&[1.0, 2.0]).unwrap(), 0.0);
        h.enqueue(Packet::new(1, 0, 100, Time::ZERO));
        h.enqueue(Packet::new(2, 1, 100, Time::ZERO));
        // PAD projected at t=10: 10 vs 20 → class 1 (WTP would tie-break the
        // same way here, so also feed history to separate them).
        assert_eq!(h.dequeue(Time::from_ticks(10)).unwrap().class, 1);
    }

    #[test]
    #[should_panic(expected = "g must be in [0,1]")]
    fn invalid_g_rejected() {
        let _ = Hpd::new(Sdp::paper_default(), 1.5);
    }

    #[test]
    fn history_shifts_priorities() {
        let sdp = Sdp::new(&[1.0, 2.0]).unwrap();
        let mut h = Hpd::new(sdp, 0.5);
        // Give class 0 a history of large delays.
        h.enqueue(Packet::new(1, 0, 100, Time::ZERO));
        let _ = h.dequeue(Time::from_ticks(1000));
        // Fresh race with equal waiting times: class 0's PAD term is now
        // (1000 + w)/2 ≈ 505, which dominates class 1's 2·w = 20.
        h.enqueue(Packet::new(2, 0, 100, Time::from_ticks(2000)));
        h.enqueue(Packet::new(3, 1, 100, Time::from_ticks(2000)));
        assert_eq!(h.dequeue(Time::from_ticks(2010)).unwrap().class, 0);
    }
}
