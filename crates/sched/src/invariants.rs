//! Cross-scheduler property tests: invariants every work-conserving,
//! non-preemptive, lossless scheduler must satisfy, checked under random
//! traffic for all ten implementations.

use proptest::prelude::*;

use crate::class::Sdp;
use crate::factory::SchedulerKind;
use crate::rank::{PifoCore, RankFn};
use crate::testutil::{all_schedulers, arrivals_strategy, drive, drive_streaming, sorted};

/// A rank function where every rank ties: every decision falls through to
/// the core's tie-break, exposing it directly to the property tests.
#[derive(Debug, Clone, Default)]
struct ConstRank;

impl RankFn for ConstRank {
    fn rank(&self, _class: usize, _head: &crate::packet::Packet, _now: simcore::Time) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "PIFO(Const)"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No packet is lost, duplicated, or served before it arrives, and
    /// per-class departures preserve arrival (FIFO) order.
    #[test]
    fn prop_lossless_causal_and_class_fifo(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        for mut s in all_schedulers() {
            let deps = drive(s.as_mut(), &arrivals);
            prop_assert_eq!(deps.len(), arrivals.len(), "{} lost packets", s.name());
            let mut seqs: Vec<u64> = deps.iter().map(|d| d.seq).collect();
            seqs.sort_unstable();
            seqs.dedup();
            prop_assert_eq!(seqs.len(), arrivals.len(), "{} duplicated packets", s.name());
            for d in &deps {
                prop_assert!(d.start >= d.arrival, "{} served packet before arrival", s.name());
            }
            for class in 0..4u8 {
                let class_seqs: Vec<u64> = deps
                    .iter()
                    .filter(|d| d.class == class)
                    .map(|d| d.seq)
                    .collect();
                prop_assert!(
                    class_seqs.windows(2).all(|w| w[0] < w[1]),
                    "{} violated FIFO within class {class}",
                    s.name()
                );
            }
            prop_assert!(s.is_empty());
        }
    }

    /// The conservation law (Eq. 5, in byte form): the time-integral of the
    /// queued backlog, Σ_k size_k · wait_k, is identical for every
    /// work-conserving non-preemptive scheduler on the same trace.
    #[test]
    fn prop_conservation_law_across_schedulers(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        let mut weighted_waits = Vec::new();
        let mut busy_ends = Vec::new();
        for mut s in all_schedulers() {
            let deps = drive(s.as_mut(), &arrivals);
            let ww: u128 = deps
                .iter()
                .map(|d| (d.size as u128) * ((d.start - d.arrival) as u128))
                .sum();
            weighted_waits.push((s.name(), ww));
            let end = deps.iter().map(|d| d.start + d.size as u64).max().unwrap_or(0);
            busy_ends.push((s.name(), end));
        }
        let first = weighted_waits[0].1;
        for (name, ww) in &weighted_waits {
            prop_assert_eq!(*ww, first, "conservation law violated by {}", name);
        }
        // Work conservation: the last departure instant is also invariant.
        let first_end = busy_ends[0].1;
        for (name, end) in &busy_ends {
            prop_assert_eq!(*end, first_end, "busy period differs for {}", name);
        }
    }

    /// On a shared saturated queue, WTP's long-run class delay ordering
    /// follows the SDPs: higher classes see smaller average waits.
    #[test]
    fn prop_wtp_orders_classes_under_saturation(seed in 0u64..1000) {
        // Deterministic batch arrivals derived from the seed: 4 packets
        // (one per class) every 100 ticks on a link that needs 160 ticks
        // per batch — saturation with bounded queues by the end.
        let mut arrivals = Vec::new();
        for k in 0..200u64 {
            for c in 0..4u8 {
                arrivals.push((k * 100 + (seed % 7), c, 40u32));
            }
        }
        arrivals.sort_by_key(|e| e.0);
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let deps = drive(s.as_mut(), &arrivals);
        let mut sum = [0.0f64; 4];
        let mut cnt = [0u64; 4];
        for d in &deps {
            sum[d.class as usize] += (d.start - d.arrival) as f64;
            cnt[d.class as usize] += 1;
        }
        let avg: Vec<f64> = (0..4).map(|c| sum[c] / cnt[c] as f64).collect();
        for c in 0..3 {
            prop_assert!(
                avg[c] >= avg[c + 1],
                "class {} avg {} < class {} avg {}",
                c, avg[c], c + 1, avg[c + 1]
            );
        }
    }

    /// PifoCore tie-break: with every rank equal, packets of the same
    /// class depart in arrival order, cross-class ties follow the
    /// documented higher-class rule (an all-ties core is
    /// decision-identical to strict priority), and the trace (slice) and
    /// streaming (iterator) replay paths agree bit-for-bit.
    #[test]
    #[cfg_attr(
        feature = "mutate-pifo-rank",
        ignore = "tie rule deliberately flipped by the mutation feature"
    )]
    fn prop_pifo_equal_ranks_depart_in_arrival_order(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        let mut trace_core = PifoCore::new(4, ConstRank);
        let trace_deps = drive(&mut trace_core, &arrivals);
        let mut stream_core = PifoCore::new(4, ConstRank);
        let stream_deps = drive_streaming(&mut stream_core, arrivals.iter().copied());
        prop_assert_eq!(&trace_deps, &stream_deps, "replay paths diverged");
        for class in 0..4u8 {
            let class_seqs: Vec<u64> = trace_deps
                .iter()
                .filter(|d| d.class == class)
                .map(|d| d.seq)
                .collect();
            prop_assert!(
                class_seqs.windows(2).all(|w| w[0] < w[1]),
                "equal ranks violated arrival order within class {class}"
            );
        }
        let mut strict = SchedulerKind::Strict.build(&Sdp::paper_default(), 1.0);
        let strict_deps = drive(strict.as_mut(), &arrivals);
        prop_assert_eq!(&trace_deps, &strict_deps, "all-ties core is not strict priority");
    }

    /// Every shipped rank kind keeps FIFO within a class and produces
    /// identical departures on the trace and streaming replay paths.
    #[test]
    fn prop_pifo_kinds_agree_across_replay_paths(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        let sdp = Sdp::paper_default();
        for kind in SchedulerKind::PIFO_ALL {
            let mut a = kind.build(&sdp, 1.0);
            let mut b = kind.build(&sdp, 1.0);
            let trace_deps = drive(a.as_mut(), &arrivals);
            let stream_deps = drive_streaming(b.as_mut(), arrivals.iter().copied());
            prop_assert_eq!(&trace_deps, &stream_deps, "{} paths diverged", kind.name());
            for class in 0..4u8 {
                let class_seqs: Vec<u64> = trace_deps
                    .iter()
                    .filter(|d| d.class == class)
                    .map(|d| d.seq)
                    .collect();
                prop_assert!(
                    class_seqs.windows(2).all(|w| w[0] < w[1]),
                    "{} violated FIFO within class {class}",
                    kind.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `drop_newest` removes exactly the most recent packet of the class
    /// (or nothing), preserves every other packet, and keeps byte
    /// accounting consistent — for every scheduler that supports push-out.
    #[test]
    fn prop_drop_newest_removes_only_the_tail(
        arrivals in prop::collection::vec((0u64..1000, 0u8..4, 40u32..1500), 1..50),
        victim in 0usize..4,
    ) {
        let sdp = Sdp::paper_default();
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(&sdp, 1.0);
            let mut sorted = arrivals.clone();
            sorted.sort_by_key(|e| e.0);
            for (i, &(t, c, sz)) in sorted.iter().enumerate() {
                s.enqueue(crate::packet::Packet::new(
                    i as u64,
                    c,
                    sz,
                    simcore::Time::from_ticks(t),
                ));
            }
            let before_packets = s.backlog_packets(victim);
            let before_bytes = s.backlog_bytes(victim);
            let total_before = s.total_backlog_packets();
            // The newest packet of the victim class (insertion order; ties
            // in arrival time are resolved by enqueue order).
            let expected_seq = sorted
                .iter()
                .enumerate()
                .filter(|(_, e)| e.1 as usize == victim)
                .map(|(i, _)| i as u64)
                .next_back();
            match s.drop_newest(victim) {
                Some(p) => {
                    prop_assert_eq!(Some(p.seq), expected_seq, "{} dropped wrong packet", kind.name());
                    prop_assert_eq!(p.class as usize, victim);
                    prop_assert_eq!(s.backlog_packets(victim), before_packets - 1);
                    prop_assert_eq!(s.backlog_bytes(victim), before_bytes - p.size as u64);
                    prop_assert_eq!(s.total_backlog_packets(), total_before - 1);
                }
                None => {
                    // Only legal when the class was empty (every scheduler in
                    // this crate supports push-out).
                    prop_assert_eq!(before_packets, 0, "{} refused a backlogged drop", kind.name());
                }
            }
            // The remaining packets all drain normally.
            let mut drained = 0usize;
            let mut now = simcore::Time::from_ticks(10_000);
            while let Some(p) = s.dequeue(now) {
                drained += 1;
                now += simcore::Dur::from_ticks(p.size as u64);
            }
            prop_assert_eq!(drained, s.total_backlog_packets() + drained); // s now empty
            prop_assert!(s.is_empty());
        }
    }
}

#[test]
fn drive_handles_empty_input() {
    let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    assert!(drive(s.as_mut(), &[]).is_empty());
}

#[test]
fn drive_respects_idle_gaps() {
    let mut s = SchedulerKind::Fcfs.build(&Sdp::paper_default(), 1.0);
    let deps = drive(s.as_mut(), &[(0, 0, 100), (500, 1, 100)]);
    assert_eq!(deps[0].start, 0);
    assert_eq!(deps[1].start, 500); // idle from 100 to 500
}
