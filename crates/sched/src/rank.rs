//! The rank-function PIFO core — programmable scheduling over one engine.
//!
//! The programmable-scheduling line (Sivaraman et al. 2016, "Programmable
//! Packet Scheduling at Line Rate"; Mittal et al. 2015, "Universal Packet
//! Scheduling") observes that most work-conserving disciplines are a single
//! priority-queue core parameterized by a *rank function*. This module
//! provides that core for the paper's scheduler family:
//!
//! * [`PifoCore`] owns the per-class FIFO queues and serves, at each
//!   decision instant, the head-of-line packet with the **largest rank**
//!   (ties to the higher class, FIFO within a class — exactly the
//!   [`ClassQueues::select_by`] rule every bespoke scheduler uses).
//! * [`RankFn`] is the discipline: a pure `(class, head, now) → f64` rank
//!   plus an optional departure hook for history-keeping disciplines
//!   (PAD/HPD) and an optional live-SDP swap.
//! * [`RankKind`] enumerates the shipped rank functions: re-expressions of
//!   WTP, PAD, HPD, Additive, Strict and FCFS — each verified
//!   decision-by-decision against its bespoke twin by
//!   `conformance::rank_diff` — plus [LSTF](RankKind::Lstf)
//!   (least-slack-time-first), a discipline that exists *only* as a rank
//!   function.
//!
//! ## Dynamic ranks
//!
//! A textbook PIFO computes the rank once at push time. The paper's
//! disciplines are *time-dependent* (WTP priority grows while a packet
//! waits), which a push-time rank cannot express, so [`PifoCore`]
//! re-evaluates ranks on the head-of-line packets at every decision
//! instant. With FIFO order within a class and per-class monotone rank
//! functions this is equivalent to an idealized PIFO evaluated lazily, and
//! it is exactly the evaluation model of the bespoke schedulers — which is
//! what makes bit-identical differential verification possible.
//!
//! ## Exactness contract
//!
//! Rank functions that mirror a bespoke scheduler reproduce its priority
//! expression **verbatim** (same operations, same operand order) so that
//! ranks are bit-identical `f64`s, not merely close: the conformance layer
//! diffs decision sequences and departure timestamps exactly.

use simcore::Time;

use crate::class::Sdp;
use crate::factory::SchedulerKind;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, ReconfigureError, Scheduler};

/// A scheduling discipline expressed as a rank function for [`PifoCore`].
///
/// The core serves the backlogged class whose head has the **largest**
/// rank; ties go to the higher class. Implementations must be
/// deterministic functions of their own state and the arguments — the
/// differential harness replays workloads and expects identical decisions.
pub trait RankFn {
    /// Rank of `head` (the head-of-line packet of `class`) at `now`.
    fn rank(&self, class: usize, head: &Packet, now: Time) -> f64;

    /// Called after the core dequeues `pkt` from `class` at `now`.
    ///
    /// History-keeping disciplines (PAD/HPD) update their per-class
    /// departure statistics here; memoryless ranks ignore it.
    fn on_depart(&mut self, _class: usize, _pkt: &Packet, _now: Time) {}

    /// Display name of the discipline this rank function implements.
    fn name(&self) -> &'static str;

    /// Swaps the differentiation parameters at runtime.
    ///
    /// The default refuses, naming the discipline — mirroring
    /// [`Scheduler::reconfigure`]'s contract. The core has already
    /// verified the class count before delegating here.
    fn reconfigure(&mut self, _sdp: &Sdp) -> Result<(), ReconfigureError> {
        Err(ReconfigureError::Unsupported(self.name()))
    }
}

/// The PIFO engine: per-class FIFOs plus one rank function.
///
/// ```
/// use sched::{Packet, PifoCore, Scheduler, Sdp, WtpRank};
/// use simcore::Time;
///
/// let sdp = Sdp::geometric(2, 2.0).unwrap();
/// let mut s = PifoCore::new(sdp.num_classes(), WtpRank::new(sdp));
/// s.enqueue(Packet::new(0, 0, 100, Time::from_ticks(0)));
/// s.enqueue(Packet::new(1, 1, 100, Time::from_ticks(0)));
/// // Equal waits ⇒ the higher SDP accrues rank faster and wins.
/// assert_eq!(s.dequeue(Time::from_ticks(10)).unwrap().class, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PifoCore<R: RankFn> {
    queues: ClassQueues,
    rank: R,
}

impl<R: RankFn> PifoCore<R> {
    /// Creates a core over `num_classes` classes driven by `rank`.
    pub fn new(num_classes: usize, rank: R) -> Self {
        PifoCore {
            queues: ClassQueues::new(num_classes),
            rank,
        }
    }

    /// The rank function (for inspection in tests and analyses).
    pub fn rank_fn(&self) -> &R {
        &self.rank
    }

    /// The class [`dequeue`](Scheduler::dequeue) would serve at `now`,
    /// without dequeuing — the decision-instant audit hook
    /// `conformance::rank_diff` diffs against, mirroring
    /// [`Wtp::peek_winner`](crate::Wtp::peek_winner).
    pub fn peek_winner(&self, now: Time) -> Option<usize> {
        self.select_winner(now)
    }

    #[cfg(not(feature = "mutate-pifo-rank"))]
    fn select_winner(&self, now: Time) -> Option<usize> {
        self.queues
            .select_by(|c, head| self.rank.rank(c, head, now))
    }

    /// MUTATED selection for the conformance smoke-runner: identical
    /// ranks, but ties go to the **lower** class — the exact tie-break
    /// drift `rank_diff` exists to catch in every twin at once.
    #[cfg(feature = "mutate-pifo-rank")]
    fn select_winner(&self, now: Time) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (c, head) in self.queues.heads().enumerate() {
            let Some(head) = head else { continue };
            let p = self.rank.rank(c, head, now);
            match best {
                // `<=` keeps the earlier (lower) class on ties.
                Some((_, bp)) if p <= bp => {}
                _ => best = Some((c, p)),
            }
        }
        best.map(|(c, _)| c)
    }
}

impl<R: RankFn> Scheduler for PifoCore<R> {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        let winner = self.select_winner(now)?;
        let pkt = self.queues.pop(winner)?;
        self.rank.on_depart(winner, &pkt, now);
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        self.rank.name()
    }

    fn decision_values(&self, now: Time, out: &mut Vec<(usize, f64)>) {
        for (c, head) in self.queues.heads().enumerate() {
            if let Some(head) = head {
                out.push((c, self.rank.rank(c, head, now)));
            }
        }
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        if sdp.num_classes() != self.queues.num_classes() {
            return Err(ReconfigureError::ClassCountMismatch {
                have: self.queues.num_classes(),
                want: sdp.num_classes(),
            });
        }
        self.rank.reconfigure(sdp)
    }
}

/// WTP as a rank: `rank = w_i(t) · s_i` (§4.2).
#[derive(Debug, Clone)]
pub struct WtpRank {
    sdp: Sdp,
}

impl WtpRank {
    /// Creates the WTP rank function with the given SDPs.
    pub fn new(sdp: Sdp) -> Self {
        WtpRank { sdp }
    }
}

impl RankFn for WtpRank {
    fn rank(&self, class: usize, head: &Packet, now: Time) -> f64 {
        head.waiting(now).as_f64() * self.sdp.get(class)
    }

    fn name(&self) -> &'static str {
        "PIFO(WTP)"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        self.sdp = sdp.clone();
        Ok(())
    }
}

/// PAD as a rank: `rank = s_i · (D_i + w_i(t)) / (n_i + 1)`, with the
/// departure history updated through [`RankFn::on_depart`].
#[derive(Debug, Clone)]
pub struct PadRank {
    sdp: Sdp,
    cum_delay: Vec<f64>,
    departed: Vec<u64>,
}

impl PadRank {
    /// Creates the PAD rank function with the given SDPs.
    pub fn new(sdp: Sdp) -> Self {
        let n = sdp.num_classes();
        PadRank {
            sdp,
            cum_delay: vec![0.0; n],
            departed: vec![0; n],
        }
    }
}

impl RankFn for PadRank {
    fn rank(&self, class: usize, head: &Packet, now: Time) -> f64 {
        let w = head.waiting(now).as_f64();
        self.sdp.get(class) * (self.cum_delay[class] + w) / (self.departed[class] + 1) as f64
    }

    fn on_depart(&mut self, class: usize, pkt: &Packet, now: Time) {
        self.cum_delay[class] += pkt.waiting(now).as_f64();
        self.departed[class] += 1;
    }

    fn name(&self) -> &'static str {
        "PIFO(PAD)"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        // History is kept across swaps — same policy as the bespoke Pad.
        self.sdp = sdp.clone();
        Ok(())
    }
}

/// HPD as a rank: the `g`-blend of the WTP and PAD terms (§7 extension).
#[derive(Debug, Clone)]
pub struct HpdRank {
    sdp: Sdp,
    g: f64,
    cum_delay: Vec<f64>,
    departed: Vec<u64>,
}

impl HpdRank {
    /// Creates the HPD rank function with mixing factor `g ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `g` is outside `[0, 1]`.
    pub fn new(sdp: Sdp, g: f64) -> Self {
        assert!((0.0..=1.0).contains(&g), "g must be in [0,1], got {g}");
        let n = sdp.num_classes();
        HpdRank {
            sdp,
            g,
            cum_delay: vec![0.0; n],
            departed: vec![0; n],
        }
    }

    /// The recommended default mixing factor (g = 0.875), matching
    /// [`Hpd::with_default_g`](crate::Hpd::with_default_g).
    pub fn with_default_g(sdp: Sdp) -> Self {
        HpdRank::new(sdp, 0.875)
    }
}

impl RankFn for HpdRank {
    fn rank(&self, class: usize, head: &Packet, now: Time) -> f64 {
        let w = head.waiting(now).as_f64();
        let s = self.sdp.get(class);
        let wtp_term = s * w;
        let pad_term = s * (self.cum_delay[class] + w) / (self.departed[class] + 1) as f64;
        self.g * wtp_term + (1.0 - self.g) * pad_term
    }

    fn on_depart(&mut self, class: usize, pkt: &Packet, now: Time) {
        self.cum_delay[class] += pkt.waiting(now).as_f64();
        self.departed[class] += 1;
    }

    fn name(&self) -> &'static str {
        "PIFO(HPD)"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        self.sdp = sdp.clone();
        Ok(())
    }
}

/// Additive (Eq. 3) as a rank: `rank = w_i(t) + s_i`.
#[derive(Debug, Clone)]
pub struct AdditiveRank {
    sdp: Sdp,
}

impl AdditiveRank {
    /// Creates the additive rank function; SDPs are tick offsets.
    pub fn new(sdp: Sdp) -> Self {
        AdditiveRank { sdp }
    }
}

impl RankFn for AdditiveRank {
    fn rank(&self, class: usize, head: &Packet, now: Time) -> f64 {
        head.waiting(now).as_f64() + self.sdp.get(class)
    }

    fn name(&self) -> &'static str {
        "PIFO(Additive)"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        self.sdp = sdp.clone();
        Ok(())
    }
}

/// Strict priority as a rank: `rank = i` (the class index itself).
///
/// Ranks are distinct across classes, so the core's argmax reduces to
/// "highest backlogged class" — the bespoke [`StrictPriority`](crate::StrictPriority)
/// (crate::StrictPriority) rule, tie-free by construction.
#[derive(Debug, Clone, Default)]
pub struct StrictRank;

impl RankFn for StrictRank {
    fn rank(&self, class: usize, _head: &Packet, _now: Time) -> f64 {
        class as f64
    }

    fn name(&self) -> &'static str {
        "PIFO(Strict)"
    }
}

/// FCFS as a rank: `rank = −seq`.
///
/// Sequence numbers are unique and assigned in admission order by every
/// harness in this workspace (see [`Packet::seq`]), so the head with the
/// smallest `seq` — i.e. the largest `−seq` — is exactly the globally
/// oldest packet. Using `seq` rather than the arrival *time* keeps the
/// twin bit-identical to the bespoke shared-FIFO [`Fcfs`](crate::Fcfs)
/// even when packets of different classes arrive on the same tick (an
/// arrival-time rank would tie there and fall to the class tie-break).
/// Exact in `f64` up to `2^53` packets.
#[derive(Debug, Clone, Default)]
pub struct FcfsRank;

impl RankFn for FcfsRank {
    fn rank(&self, _class: usize, head: &Packet, _now: Time) -> f64 {
        -(head.seq as f64)
    }

    fn name(&self) -> &'static str {
        "PIFO(FCFS)"
    }
}

/// Default slack base for [`LstfRank`] budgets, in ticks.
///
/// Class `i` gets a slack budget of `base / s_i`, so the paper-default
/// SDPs `[1, 2, 4, 8]` yield budgets `[8000, 4000, 2000, 1000]` — a few
/// mean packet-transmission times apart at the 1 byte/tick reference
/// link, enough to differentiate without starving class 0.
pub const DEFAULT_SLACK_BASE_TICKS: f64 = 8_000.0;

/// Least-Slack-Time-First (Mittal et al. 2015, "Universal Packet
/// Scheduling") — a discipline that exists **only** as a rank function.
///
/// Each class carries a slack budget `δ_i = base / s_i` (higher class ⇒
/// tighter budget) and the core serves the head with the least remaining
/// slack, i.e. the largest `rank = w_i(t) − δ_i`. On a single hop this is
/// an earliest-deadline-style discipline with *constant rank differences*
/// between classes — the universality probe in the `rank` experiment
/// suite measures how close that gets to the paper's *proportional* model
/// across the fig1 load grid.
#[derive(Debug, Clone)]
pub struct LstfRank {
    sdp: Sdp,
    base: f64,
    budget: Vec<f64>,
}

impl LstfRank {
    /// Creates an LSTF rank with budgets `base / s_i` ticks.
    pub fn new(sdp: Sdp, base: f64) -> Self {
        let budget = sdp.values().iter().map(|s| base / s).collect();
        LstfRank { sdp, base, budget }
    }

    /// Creates an LSTF rank with the default slack base.
    pub fn with_default_base(sdp: Sdp) -> Self {
        LstfRank::new(sdp, DEFAULT_SLACK_BASE_TICKS)
    }

    /// The slack budget of `class`, in ticks.
    pub fn budget(&self, class: usize) -> f64 {
        self.budget[class]
    }
}

impl RankFn for LstfRank {
    fn rank(&self, class: usize, head: &Packet, now: Time) -> f64 {
        head.waiting(now).as_f64() - self.budget[class]
    }

    fn name(&self) -> &'static str {
        "LSTF"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        self.budget = sdp.values().iter().map(|s| self.base / s).collect();
        self.sdp = sdp.clone();
        Ok(())
    }
}

/// Every rank function the factory can build, for use in
/// [`SchedulerKind::Pifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankKind {
    /// WTP re-expressed as a rank (twin of [`SchedulerKind::Wtp`]).
    Wtp,
    /// PAD re-expressed as a rank (twin of [`SchedulerKind::Pad`]).
    Pad,
    /// HPD (g = 0.875) re-expressed as a rank (twin of
    /// [`SchedulerKind::Hpd`]).
    Hpd,
    /// Additive (Eq. 3) re-expressed as a rank (twin of
    /// [`SchedulerKind::Additive`]).
    Additive,
    /// Strict priority re-expressed as a rank (twin of
    /// [`SchedulerKind::Strict`]).
    Strict,
    /// FCFS re-expressed as a rank (twin of [`SchedulerKind::Fcfs`]).
    Fcfs,
    /// Least-Slack-Time-First — rank-only, no bespoke twin.
    Lstf,
}

impl RankKind {
    /// All rank kinds, twins first, in the bespoke report order.
    pub const ALL: [RankKind; 7] = [
        RankKind::Fcfs,
        RankKind::Strict,
        RankKind::Additive,
        RankKind::Wtp,
        RankKind::Pad,
        RankKind::Hpd,
        RankKind::Lstf,
    ];

    /// Builds the boxed PIFO core for this rank kind.
    pub fn build(&self, sdp: &Sdp) -> Box<dyn Scheduler> {
        let n = sdp.num_classes();
        match self {
            RankKind::Wtp => Box::new(PifoCore::new(n, WtpRank::new(sdp.clone()))),
            RankKind::Pad => Box::new(PifoCore::new(n, PadRank::new(sdp.clone()))),
            RankKind::Hpd => Box::new(PifoCore::new(n, HpdRank::with_default_g(sdp.clone()))),
            RankKind::Additive => Box::new(PifoCore::new(n, AdditiveRank::new(sdp.clone()))),
            RankKind::Strict => Box::new(PifoCore::new(n, StrictRank)),
            RankKind::Fcfs => Box::new(PifoCore::new(n, FcfsRank)),
            RankKind::Lstf => Box::new(PifoCore::new(n, LstfRank::with_default_base(sdp.clone()))),
        }
    }

    /// Builds the core **unboxed** and hands it to `visitor` — the
    /// static-dispatch arm behind
    /// [`SchedulerKind::build_and_visit`].
    pub fn build_and_visit<V: crate::factory::SchedulerVisitor>(&self, sdp: &Sdp, v: V) -> V::Out {
        let n = sdp.num_classes();
        match self {
            RankKind::Wtp => v.visit(PifoCore::new(n, WtpRank::new(sdp.clone()))),
            RankKind::Pad => v.visit(PifoCore::new(n, PadRank::new(sdp.clone()))),
            RankKind::Hpd => v.visit(PifoCore::new(n, HpdRank::with_default_g(sdp.clone()))),
            RankKind::Additive => v.visit(PifoCore::new(n, AdditiveRank::new(sdp.clone()))),
            RankKind::Strict => v.visit(PifoCore::new(n, StrictRank)),
            RankKind::Fcfs => v.visit(PifoCore::new(n, FcfsRank)),
            RankKind::Lstf => v.visit(PifoCore::new(n, LstfRank::with_default_base(sdp.clone()))),
        }
    }

    /// Display name of the rank-core scheduler.
    pub fn name(&self) -> &'static str {
        match self {
            RankKind::Wtp => "PIFO(WTP)",
            RankKind::Pad => "PIFO(PAD)",
            RankKind::Hpd => "PIFO(HPD)",
            RankKind::Additive => "PIFO(Additive)",
            RankKind::Strict => "PIFO(Strict)",
            RankKind::Fcfs => "PIFO(FCFS)",
            RankKind::Lstf => "LSTF",
        }
    }

    /// A lowercase, filesystem-safe identifier (used by the orchestrator
    /// cache keys and accepted by `SchedulerKind::from_str`).
    pub fn slug(&self) -> &'static str {
        match self {
            RankKind::Wtp => "pifo-wtp",
            RankKind::Pad => "pifo-pad",
            RankKind::Hpd => "pifo-hpd",
            RankKind::Additive => "pifo-additive",
            RankKind::Strict => "pifo-strict",
            RankKind::Fcfs => "pifo-fcfs",
            RankKind::Lstf => "lstf",
        }
    }

    /// The bespoke scheduler this rank re-expresses (`None` for the
    /// rank-only LSTF). `conformance::rank_diff` derives its twin pairs
    /// from this.
    pub fn bespoke_twin(&self) -> Option<SchedulerKind> {
        match self {
            RankKind::Wtp => Some(SchedulerKind::Wtp),
            RankKind::Pad => Some(SchedulerKind::Pad),
            RankKind::Hpd => Some(SchedulerKind::Hpd),
            RankKind::Additive => Some(SchedulerKind::Additive),
            RankKind::Strict => Some(SchedulerKind::Strict),
            RankKind::Fcfs => Some(SchedulerKind::Fcfs),
            RankKind::Lstf => None,
        }
    }

    /// Whether this rank supports [`Scheduler::reconfigure`] — mirrors the
    /// bespoke support matrix, plus LSTF.
    pub fn supports_reconfigure(&self) -> bool {
        !matches!(self, RankKind::Strict | RankKind::Fcfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, at: u64) -> Packet {
        Packet::new(seq, class, 100, Time::from_ticks(at))
    }

    #[test]
    fn wtp_rank_equal_waits_highest_sdp_wins() {
        let sdp = Sdp::new(&[1.0, 2.0]).unwrap();
        let mut s = PifoCore::new(2, WtpRank::new(sdp));
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 0));
        assert_eq!(s.dequeue(Time::from_ticks(10)).unwrap().class, 1);
        assert_eq!(s.dequeue(Time::from_ticks(10)).unwrap().class, 0);
    }

    #[test]
    #[cfg_attr(
        feature = "mutate-pifo-rank",
        ignore = "tie rule deliberately flipped by the mutation feature"
    )]
    fn exact_rank_tie_goes_to_higher_class() {
        // WTP rank at t=20: class 0 waited 20 (s=1) vs class 1 waited 10
        // (s=2) — an exact 20.0 == 20.0 crossover.
        let sdp = Sdp::new(&[1.0, 2.0]).unwrap();
        let mut s = PifoCore::new(2, WtpRank::new(sdp));
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 10));
        assert_eq!(s.dequeue(Time::from_ticks(20)).unwrap().class, 1);
    }

    #[test]
    fn fifo_within_class() {
        let mut s = PifoCore::new(2, StrictRank);
        s.enqueue(pkt(1, 1, 0));
        s.enqueue(pkt(2, 1, 1));
        s.enqueue(pkt(3, 1, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(Time::from_ticks(50)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn strict_rank_serves_highest_backlogged_class() {
        let mut s = PifoCore::new(3, StrictRank);
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 2, 0));
        s.enqueue(pkt(3, 1, 0));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 2);
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 1);
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 0);
    }

    #[test]
    fn fcfs_rank_is_global_fifo_even_on_same_tick_arrivals() {
        let mut s = PifoCore::new(3, FcfsRank);
        // Same arrival tick across classes: admission (seq) order decides.
        s.enqueue(pkt(1, 2, 5));
        s.enqueue(pkt(2, 0, 5));
        s.enqueue(pkt(3, 1, 5));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(Time::from_ticks(10)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pad_rank_keeps_departure_history() {
        // A class-0 departure with a huge delay loads the PAD history;
        // a later fresh race then goes to class 0 despite its smaller SDP.
        let mut s = PifoCore::new(2, PadRank::new(Sdp::new(&[1.0, 2.0]).unwrap()));
        s.enqueue(pkt(1, 0, 0));
        s.dequeue(Time::from_ticks(1000));
        s.enqueue(pkt(2, 0, 2000));
        s.enqueue(pkt(3, 1, 2000));
        // class-0 rank = 1·(1000+10)/2 = 505 vs class-1 rank = 2·10 = 20.
        assert_eq!(s.dequeue(Time::from_ticks(2010)).unwrap().class, 0);
    }

    #[test]
    fn lstf_tighter_budget_wins_at_equal_waits() {
        let sdp = Sdp::paper_default(); // budgets [8000, 4000, 2000, 1000]
        let mut s = PifoCore::new(4, LstfRank::with_default_base(sdp));
        for c in 0..4u8 {
            s.enqueue(pkt(c as u64, c, 0));
        }
        // Equal waits: least slack = tightest budget = highest class.
        let order: Vec<u8> = std::iter::from_fn(|| s.dequeue(Time::from_ticks(10)))
            .map(|p| p.class)
            .collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn lstf_overdue_low_class_overtakes() {
        let sdp = Sdp::new(&[1.0, 8.0]).unwrap(); // budgets [8000, 1000]
        let mut s = PifoCore::new(2, LstfRank::new(sdp, 8_000.0));
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 9_000));
        // At t=9500: slack_0 = 8000−9500 = −1500 < slack_1 = 1000−500.
        assert_eq!(s.dequeue(Time::from_ticks(9_500)).unwrap().class, 0);
    }

    #[test]
    fn lstf_reconfigure_rederives_budgets() {
        let mut s = LstfRank::with_default_base(Sdp::paper_default());
        assert_eq!(s.budget(3), 1_000.0);
        s.reconfigure(&Sdp::geometric(4, 4.0).unwrap()).unwrap();
        assert_eq!(s.budget(0), 8_000.0);
        assert_eq!(s.budget(3), 8_000.0 / 64.0);
    }

    #[test]
    fn peek_winner_matches_dequeue() {
        let sdp = Sdp::paper_default();
        let mut s = PifoCore::new(4, WtpRank::new(sdp));
        assert_eq!(s.peek_winner(Time::from_ticks(5)), None);
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 3, 20));
        for now in [25u64, 45] {
            let t = Time::from_ticks(now);
            let peeked = s.peek_winner(t).unwrap();
            assert_eq!(s.dequeue(t).unwrap().class as usize, peeked);
        }
    }

    #[test]
    fn decision_values_report_ranks_per_backlogged_head() {
        let sdp = Sdp::new(&[1.0, 2.0]).unwrap();
        let mut s = PifoCore::new(2, WtpRank::new(sdp));
        let mut out = Vec::new();
        s.decision_values(Time::from_ticks(10), &mut out);
        assert!(out.is_empty());
        s.enqueue(pkt(1, 1, 4));
        s.enqueue(pkt(2, 0, 6));
        s.decision_values(Time::from_ticks(10), &mut out);
        assert_eq!(out, vec![(0, 4.0), (1, 12.0)]);
    }

    #[test]
    fn reconfigure_support_follows_the_rank_kind() {
        let sdp = Sdp::paper_default();
        let steeper = Sdp::geometric(4, 4.0).unwrap();
        for rk in RankKind::ALL {
            let mut s = rk.build(&sdp);
            let got = s.reconfigure(&steeper);
            if rk.supports_reconfigure() {
                assert_eq!(got, Ok(()), "{} should accept reconfigure", rk.name());
                let narrow = Sdp::new(&[1.0, 2.0]).unwrap();
                assert_eq!(
                    s.reconfigure(&narrow),
                    Err(ReconfigureError::ClassCountMismatch { have: 4, want: 2 }),
                    "{}",
                    rk.name()
                );
            } else {
                assert_eq!(
                    got,
                    Err(ReconfigureError::Unsupported(rk.name())),
                    "{} should refuse reconfigure",
                    rk.name()
                );
            }
        }
    }

    #[test]
    fn drop_newest_removes_the_class_tail() {
        for rk in RankKind::ALL {
            let mut s = rk.build(&Sdp::paper_default());
            s.enqueue(pkt(1, 1, 0));
            s.enqueue(pkt(2, 1, 5));
            s.enqueue(pkt(3, 2, 5));
            let dropped = s.drop_newest(1).unwrap();
            assert_eq!(dropped.seq, 2, "{}", rk.name());
            assert_eq!(s.backlog_packets(1), 1, "{}", rk.name());
            assert_eq!(s.backlog_packets(2), 1, "{}", rk.name());
        }
    }

    #[test]
    #[cfg_attr(
        feature = "mutate-pifo-rank",
        ignore = "tie rule deliberately flipped by the mutation feature"
    )]
    fn twin_decisions_match_bespoke_on_a_smoke_workload() {
        // The real differential harness lives in conformance::rank_diff;
        // this is the in-crate smoke version over the shared drive loop.
        let arrivals = crate::testutil::sorted(
            (0..120u64)
                .map(|i| (i * 37 % 900, (i % 4) as u8, 40 + (i % 3) as u32 * 500))
                .collect(),
        );
        let sdp = Sdp::paper_default();
        for rk in RankKind::ALL {
            let Some(twin) = rk.bespoke_twin() else {
                continue;
            };
            let mut bespoke = twin.build(&sdp, 1.0);
            let mut rank = SchedulerKind::Pifo(rk).build(&sdp, 1.0);
            let b = crate::testutil::drive(bespoke.as_mut(), &arrivals);
            let r = crate::testutil::drive(rank.as_mut(), &arrivals);
            assert_eq!(b, r, "{} diverged from {}", rk.name(), twin.name());
        }
    }
}
