//! Backlog-Proportional Rate (BPR) — §4.1, packetized per Appendix 3.
//!
//! The fluid BPR server assigns each backlogged queue a service rate
//! proportional to `s_i · q_i(t)` (Eq. 8), normalized to the link capacity
//! (Eq. 9). The packetized approximation tracks, for each queue, a *virtual
//! service function* `v_i` — the service the head packet would have received
//! from the fluid server since it reached the head — and transmits the
//! packet with the smallest remaining virtual work `L_i − v_i`, ties to the
//! higher class.
//!
//! Two approximations are inherited from the paper: rates are held constant
//! between departures, and `v_i` accrues from when the packet reaches the
//! head of the queue in the *packet* scheduler.

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, ReconfigureError, Scheduler};

/// The packetized Backlog-Proportional Rate scheduler.
#[derive(Debug, Clone)]
pub struct Bpr {
    queues: ClassQueues,
    sdp: Sdp,
    /// Link capacity in bytes/tick; used to convert elapsed time into
    /// virtual service (bytes).
    link_rate: f64,
    /// Virtual service accrued by each head packet, in bytes.
    v: Vec<f64>,
    /// Service rates (bytes/tick) computed at the last decision instant.
    rates: Vec<f64>,
    /// Time of the last decision (departure) instant.
    last_decision: Time,
}

impl Bpr {
    /// Creates a BPR scheduler with the given SDPs for a link of
    /// `link_rate` bytes per tick.
    ///
    /// # Panics
    /// Panics if `link_rate` is not positive and finite.
    pub fn new(sdp: Sdp, link_rate: f64) -> Self {
        assert!(
            link_rate > 0.0 && link_rate.is_finite(),
            "link_rate must be positive, got {link_rate}"
        );
        let n = sdp.num_classes();
        Bpr {
            queues: ClassQueues::new(n),
            sdp,
            link_rate,
            v: vec![0.0; n],
            rates: vec![0.0; n],
            last_decision: Time::ZERO,
        }
    }

    /// The configured SDPs.
    pub fn sdp(&self) -> &Sdp {
        &self.sdp
    }

    /// Recomputes per-class service rates from current backlogs
    /// (Eq. 8 + 9): `r_i = R · s_i q_i / Σ_j s_j q_j` over backlogged
    /// queues, 0 for empty queues.
    fn recompute_rates(&mut self) {
        let denom: f64 = self
            .queues
            .backlogged()
            .map(|c| self.sdp.get(c) * self.queues.bytes(c) as f64)
            .sum();
        for c in 0..self.queues.num_classes() {
            self.rates[c] = if denom > 0.0 && self.queues.len(c) > 0 {
                self.link_rate * self.sdp.get(c) * self.queues.bytes(c) as f64 / denom
            } else {
                0.0
            };
        }
    }

    /// The current virtual-service vector (for tests/diagnostics).
    pub fn virtual_service(&self) -> &[f64] {
        &self.v
    }
}

impl Scheduler for Bpr {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        if self.queues.is_empty() {
            return None;
        }
        let elapsed = now.saturating_since(self.last_decision).as_f64();
        // One sweep over the class heads (Appendix 3): accrue each
        // backlogged head's virtual service — resetting it if the head
        // arrived after the previous decision instant — and pick
        // argmin(L_i − v_i) in the same pass, ties to the higher class.
        let mut winner = None;
        let mut best = f64::INFINITY;
        let sweep = self.queues.heads().zip(self.v.iter_mut()).zip(&self.rates);
        for (c, ((head, v), &rate)) in sweep.enumerate() {
            let Some(head) = head else {
                *v = 0.0;
                continue;
            };
            if head.arrival <= self.last_decision {
                *v += rate * elapsed;
            } else {
                *v = 0.0;
            }
            let remaining = head.size as f64 - *v;
            if remaining <= best {
                best = remaining;
                winner = Some(c);
            }
        }
        let winner = winner?;
        let pkt = self.queues.pop(winner);
        // The departing head's successor starts with zero virtual service.
        self.v[winner] = 0.0;
        self.recompute_rates();
        self.last_decision = now;
        pkt
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        let pkt = self.queues.pop_tail(class)?;
        // Backlogs changed; refresh the fluid rates. If the dropped packet
        // was the head, the stale v resets when a fresh head arrives (its
        // arrival postdates the last decision instant).
        self.recompute_rates();
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "BPR"
    }

    fn decision_values(&self, now: Time, out: &mut Vec<(usize, f64)>) {
        // Read-only replica of the dequeue sweep: what each backlogged
        // head's remaining virtual work L_i − v_i(t) *would* be at `now`,
        // without committing the accrual.
        let elapsed = now.saturating_since(self.last_decision).as_f64();
        for (c, (head, &v)) in self.queues.heads().zip(&self.v).enumerate() {
            let Some(head) = head else { continue };
            let accrued = if head.arrival <= self.last_decision {
                v + self.rates[c] * elapsed
            } else {
                0.0
            };
            out.push((c, head.size as f64 - accrued));
        }
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        if sdp.num_classes() != self.queues.num_classes() {
            return Err(ReconfigureError::ClassCountMismatch {
                have: self.queues.num_classes(),
                want: sdp.num_classes(),
            });
        }
        self.sdp = sdp.clone();
        // The fluid rates (Eq. 8 + 9) depend on the SDPs; refresh them so
        // virtual service accrues at the new shares from this instant on.
        // Already-accrued virtual service is kept — it is service the heads
        // genuinely received.
        self.recompute_rates();
        Ok(())
    }

    fn set_link_rate(&mut self, rate: f64) {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "link_rate must be positive, got {rate}"
        );
        self.link_rate = rate;
        self.recompute_rates();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, size: u32, at: u64) -> Packet {
        Packet::new(seq, class, size, Time::from_ticks(at))
    }

    #[test]
    fn single_class_behaves_like_fifo() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        for i in 0..5 {
            s.enqueue(pkt(i, 0, 100, i));
        }
        let mut now = Time::from_ticks(10);
        for i in 0..5 {
            let p = s.dequeue(now).unwrap();
            assert_eq!(p.seq, i);
            now += simcore::Dur::from_ticks(100);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn equal_backlogs_favor_higher_sdp_rate() {
        // Two classes, same backlog, SDPs 1:3 => rates 0.25 : 0.75 of link.
        // After the first departure, the high class accrues virtual service
        // three times faster and must get the lion's share of departures.
        let mut s = Bpr::new(Sdp::new(&[1.0, 3.0]).unwrap(), 1.0);
        for i in 0..50 {
            s.enqueue(pkt(2 * i, 0, 100, 0));
            s.enqueue(pkt(2 * i + 1, 1, 100, 0));
        }
        let mut now = Time::ZERO;
        let mut first20 = Vec::new();
        for _ in 0..20 {
            let p = s.dequeue(now).unwrap();
            first20.push(p.class);
            now += simcore::Dur::from_ticks(100);
        }
        let high = first20.iter().filter(|&&c| c == 1).count();
        assert!(high >= 13, "expected high class to dominate, got {high}/20");
    }

    #[test]
    fn ties_at_start_go_to_higher_class() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 1, 100, 0));
        // Both v=0, both remaining 100 => higher class wins.
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 1);
    }

    #[test]
    fn smaller_remaining_work_wins_over_class() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 40, 0));
        s.enqueue(pkt(2, 1, 1500, 0));
        // v=0 for both; remaining 40 < 1500 even though class 1 is higher.
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 0);
    }

    #[test]
    fn virtual_service_resets_for_fresh_arrivals() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 1, 100, 0));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 1);
        // A packet arriving *after* the last decision must start at v=0.
        s.enqueue(pkt(3, 1, 100, 50));
        let _ = s.dequeue(Time::from_ticks(100));
        // Heads that arrived post-decision were reset, not accrued.
        assert!(s.virtual_service().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn work_conserving_with_sparse_queues() {
        let mut s = Bpr::new(Sdp::paper_default(), 1.0);
        s.enqueue(pkt(1, 3, 100, 0));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, 1);
        assert_eq!(s.dequeue(Time::from_ticks(100)), None);
        s.enqueue(pkt(2, 0, 100, 200));
        assert_eq!(s.dequeue(Time::from_ticks(200)).unwrap().seq, 2);
    }

    #[test]
    fn decision_values_match_the_dequeue_sweep_without_mutating() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 3.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 1, 100, 0));
        s.enqueue(pkt(3, 1, 50, 0));
        let _ = s.dequeue(Time::ZERO); // establish rates and last_decision
        let now = Time::from_ticks(40);
        let mut out = Vec::new();
        s.decision_values(now, &mut out);
        // The audited argmin (ties to higher class) predicts the dequeue.
        let predicted = out
            .iter()
            .rev()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        let mut again = Vec::new();
        s.decision_values(now, &mut again); // read-only: identical replay
        assert_eq!(out, again);
        assert_eq!(s.dequeue(now).unwrap().class as usize, predicted);
    }

    #[test]
    fn decision_values_reset_for_post_decision_arrivals() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 1, 100, 0));
        let _ = s.dequeue(Time::ZERO);
        // Fresh head arriving after the decision instant starts at v = 0:
        // its remaining work is its full size regardless of elapsed time.
        s.enqueue(pkt(3, 1, 80, 10));
        let mut out = Vec::new();
        s.decision_values(Time::from_ticks(60), &mut out);
        let high = out.iter().find(|(c, _)| *c == 1).unwrap();
        assert_eq!(high.1, 80.0);
    }

    #[test]
    #[should_panic(expected = "link_rate must be positive")]
    fn rejects_bad_link_rate() {
        let _ = Bpr::new(Sdp::paper_default(), 0.0);
    }

    #[test]
    fn reconfigure_refreshes_fluid_rates_immediately() {
        // Equal 100-byte backlogs under s = [1, 1] split the link evenly;
        // after a live swap to s = [1, 3] the very next accrual window must
        // run at the 1:3 split, visible through decision_values: in 40
        // elapsed ticks the high head accrues 30 bytes, the low head 10.
        let mut s = Bpr::new(Sdp::new(&[1.0, 1.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 1, 100, 0));
        s.enqueue(pkt(3, 0, 100, 0));
        s.enqueue(pkt(4, 1, 100, 0));
        let _ = s.dequeue(Time::ZERO); // establish rates + last_decision
        s.reconfigure(&Sdp::new(&[1.0, 3.0]).unwrap()).unwrap();
        let mut out = Vec::new();
        s.decision_values(Time::from_ticks(40), &mut out);
        // Backlogs after the tie-win departure: class0 = 200 B, class1 =
        // 100 B. Shares s_i·q_i: 200 vs 300 → rates 0.4 and 0.6 bytes/tick.
        let low = out.iter().find(|(c, _)| *c == 0).unwrap().1;
        let high = out.iter().find(|(c, _)| *c == 1).unwrap().1;
        assert!((low - (100.0 - 0.4 * 40.0)).abs() < 1e-9, "low {low}");
        assert!((high - (100.0 - 0.6 * 40.0)).abs() < 1e-9, "high {high}");
    }

    #[test]
    fn set_link_rate_rescales_accrual() {
        let mut s = Bpr::new(Sdp::new(&[1.0, 1.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 1, 100, 0));
        let _ = s.dequeue(Time::ZERO);
        s.set_link_rate(2.0);
        // Single backlogged class now owns the whole doubled link.
        let mut out = Vec::new();
        s.decision_values(Time::from_ticks(10), &mut out);
        assert_eq!(out, vec![(0, 100.0 - 2.0 * 10.0)]);
    }
}
