//! The exact fluid BPR server — the model behind Proposition 1.
//!
//! In the fluid server, backlogs evolve as the coupled ODE system
//! `dq_i/dt = −R·s_i·q_i / Σ_j s_j q_j` during busy periods without
//! arrivals. Substituting `du = R·dt / Σ_j s_j q_j` decouples it:
//! `q_i(u) = q_i(0)·e^{−s_i u}`, and real time maps back through
//! `t(u) = (1/R)·Σ_j q_j(0)·(1 − e^{−s_j u})` (monotone in `u`, inverted by
//! bisection). Because `t(∞) = W(0)/R`, the total backlog drains exactly at
//! the work-conserving instant and — since every `q_i(u) > 0` for finite
//! `u` — **all backlogged queues empty at the same moment** (Proposition 1).

use crate::class::Sdp;

/// Exact fluid Backlog-Proportional Rate server state.
#[derive(Debug, Clone)]
pub struct FluidBpr {
    sdp: Sdp,
    rate: f64,
    q: Vec<f64>,
}

impl FluidBpr {
    /// Creates an empty fluid server with capacity `rate` bytes/tick.
    ///
    /// # Panics
    /// Panics if `rate` is not positive and finite.
    pub fn new(sdp: Sdp, rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        let n = sdp.num_classes();
        FluidBpr {
            sdp,
            rate,
            q: vec![0.0; n],
        }
    }

    /// Adds `bytes` of fluid to `class` (an arrival impulse).
    pub fn add(&mut self, class: usize, bytes: f64) {
        assert!(bytes >= 0.0, "cannot add negative fluid");
        self.q[class] += bytes;
    }

    /// Current backlog vector in bytes.
    pub fn backlogs(&self) -> &[f64] {
        &self.q
    }

    /// Total backlog in bytes.
    pub fn total_backlog(&self) -> f64 {
        self.q.iter().sum()
    }

    /// Instantaneous service rate of `class` (Eq. 8 + 9).
    pub fn service_rate(&self, class: usize) -> f64 {
        let denom: f64 = self
            .q
            .iter()
            .enumerate()
            .map(|(j, &qj)| self.sdp.get(j) * qj)
            .sum();
        if denom <= 0.0 || self.q[class] <= 0.0 {
            0.0
        } else {
            self.rate * self.sdp.get(class) * self.q[class] / denom
        }
    }

    /// Time until the server drains completely, assuming no further
    /// arrivals. By work conservation this is exactly `W/R`.
    pub fn drain_time(&self) -> f64 {
        self.total_backlog() / self.rate
    }

    /// Advances the fluid system by `dt` ticks with no arrivals in between.
    ///
    /// Uses the exact solution via the change of variable described in the
    /// module docs, so there is no integration error to tune.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be nonnegative");
        let w0 = self.total_backlog();
        if w0 <= 0.0 || dt == 0.0 {
            return;
        }
        if dt >= self.drain_time() - 1e-12 {
            // Drained (all queues empty simultaneously — Proposition 1).
            self.q.iter_mut().for_each(|q| *q = 0.0);
            return;
        }
        // Solve t(u) = dt for u by bisection; t is increasing in u.
        let t_of_u = |u: f64| -> f64 {
            self.q
                .iter()
                .enumerate()
                .map(|(j, &qj)| qj * (1.0 - (-self.sdp.get(j) * u).exp()))
                .sum::<f64>()
                / self.rate
        };
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        while t_of_u(hi) < dt {
            hi *= 2.0;
            if hi > 1e18 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if t_of_u(mid) < dt {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let u = 0.5 * (lo + hi);
        for (j, q) in self.q.iter_mut().enumerate() {
            *q *= (-self.sdp.get(j) * u).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> FluidBpr {
        FluidBpr::new(Sdp::new(&[1.0, 2.0, 4.0]).unwrap(), 1.0)
    }

    #[test]
    fn work_conservation_total_drains_linearly() {
        let mut s = server();
        s.add(0, 300.0);
        s.add(1, 200.0);
        s.add(2, 100.0);
        let w0 = s.total_backlog();
        s.advance(250.0);
        assert!((s.total_backlog() - (w0 - 250.0)).abs() < 1e-6);
    }

    #[test]
    fn proposition_1_simultaneous_clearing() {
        // Advance to just before the drain instant: every queue must still
        // be strictly backlogged. One more epsilon drains them all at once.
        let mut s = server();
        s.add(0, 500.0);
        s.add(1, 100.0);
        s.add(2, 50.0);
        let drain = s.drain_time();
        s.advance(drain - 1e-3);
        for (i, &q) in s.backlogs().iter().enumerate() {
            assert!(q > 0.0, "queue {i} emptied early: {q}");
        }
        s.advance(2e-3);
        for &q in s.backlogs() {
            assert_eq!(q, 0.0);
        }
    }

    #[test]
    fn rates_are_backlog_and_sdp_proportional() {
        let mut s = server();
        s.add(0, 100.0);
        s.add(1, 100.0);
        // r1/r0 = s1*q1 / (s0*q0) = 2.
        let r0 = s.service_rate(0);
        let r1 = s.service_rate(1);
        assert!((r1 / r0 - 2.0).abs() < 1e-12);
        // Work conservation: rates sum to link capacity.
        assert!((r0 + r1 + s.service_rate(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_queue_gets_zero_rate() {
        let mut s = server();
        s.add(1, 100.0);
        assert_eq!(s.service_rate(0), 0.0);
        assert!((s.service_rate(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_sdp_class_drains_proportionally_faster() {
        let mut s = server();
        s.add(0, 100.0);
        s.add(2, 100.0);
        s.advance(20.0);
        let b = s.backlogs();
        // Class 2 accrues service 4x faster while backlogs are equal, so it
        // must be well below class 0.
        assert!(b[2] < b[0], "b = {b:?}");
        // Exact relation from the decoupled solution: q2/q2(0) = (q0/q0(0))^4.
        let ratio0 = b[0] / 100.0;
        let ratio2 = b[2] / 100.0;
        assert!((ratio2 - ratio0.powi(4)).abs() < 1e-6);
    }

    #[test]
    fn advance_past_drain_is_idempotent() {
        let mut s = server();
        s.add(0, 10.0);
        s.advance(1e9);
        assert_eq!(s.total_backlog(), 0.0);
        s.advance(5.0);
        assert_eq!(s.total_backlog(), 0.0);
    }

    #[test]
    fn sawtooth_mechanism_small_backlog_small_rate() {
        // The paper's §4.1 pathology: a queue with a tiny relative backlog
        // receives a tiny service rate, so its last bytes linger.
        let mut s = server();
        s.add(0, 1.0);
        s.add(2, 1000.0);
        let r0 = s.service_rate(0);
        assert!(r0 < 0.001, "tiny backlog should get tiny rate, got {r0}");
    }
}
