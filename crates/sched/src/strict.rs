//! Strict (static) priority — §2.1's uncontrollable baseline.
//!
//! "The highest backlogged class is serviced first." Differentiation is
//! consistent but offers no tuning knobs, and low classes can starve — the
//! two defects that motivate the proportional model.

use simcore::Time;

use crate::packet::Packet;
use crate::scheduler::{ClassQueues, Scheduler};

/// Serve the highest-indexed backlogged class, FIFO within a class.
#[derive(Debug, Clone)]
pub struct StrictPriority {
    queues: ClassQueues,
}

impl StrictPriority {
    /// Creates a strict-priority scheduler over `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        StrictPriority {
            queues: ClassQueues::new(num_classes),
        }
    }
}

impl Scheduler for StrictPriority {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let c = self.queues.backlogged().max()?;
        self.queues.pop(c)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        "Strict"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_class_always_wins() {
        let mut s = StrictPriority::new(3);
        s.enqueue(Packet::new(1, 0, 10, Time::ZERO));
        s.enqueue(Packet::new(2, 2, 10, Time::ZERO));
        s.enqueue(Packet::new(3, 1, 10, Time::ZERO));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 2);
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 1);
        assert_eq!(s.dequeue(Time::ZERO).unwrap().class, 0);
    }

    #[test]
    fn starvation_of_low_class_under_high_load() {
        // A steady stream of class-1 packets starves class 0 indefinitely.
        let mut s = StrictPriority::new(2);
        s.enqueue(Packet::new(0, 0, 10, Time::ZERO));
        for i in 1..=50 {
            s.enqueue(Packet::new(i, 1, 10, Time::from_ticks(i)));
        }
        for _ in 0..50 {
            assert_eq!(s.dequeue(Time::from_ticks(100)).unwrap().class, 1);
        }
        assert_eq!(s.dequeue(Time::from_ticks(100)).unwrap().class, 0);
    }

    #[test]
    fn fifo_within_class() {
        let mut s = StrictPriority::new(2);
        s.enqueue(Packet::new(1, 1, 10, Time::from_ticks(0)));
        s.enqueue(Packet::new(2, 1, 10, Time::from_ticks(1)));
        assert_eq!(s.dequeue(Time::from_ticks(5)).unwrap().seq, 1);
        assert_eq!(s.dequeue(Time::from_ticks(5)).unwrap().seq, 2);
    }
}
