//! Test-only single-server driver and shared property-test setup
//! (arrival strategies, all-scheduler construction) used by the unit and
//! property tests across this crate.

use proptest::prelude::*;
use simcore::Time;

use crate::class::Sdp;
use crate::factory::SchedulerKind;
use crate::packet::Packet;
use crate::scheduler::Scheduler;

/// Random arrival sequences: up to 200 packets over 4 classes with
/// paper-like sizes, clustered tightly enough in time that queues build
/// up.
///
/// Deliberately **unsorted** (no `prop_map`, which would block the shim's
/// shrinker): run the result through [`sorted`] before driving a
/// scheduler, so failing cases still shrink to a minimal arrival set.
pub(crate) fn arrivals_strategy() -> impl Strategy<Value = Vec<(u64, u8, u32)>> {
    prop::collection::vec(
        (
            0u64..20_000,
            0u8..4,
            prop_oneof![Just(40u32), Just(550), Just(1500)],
        ),
        1..200,
    )
}

/// Stable time-sort of an arrival sequence (the order [`drive`] expects).
pub(crate) fn sorted(mut arrivals: Vec<(u64, u8, u32)>) -> Vec<(u64, u8, u32)> {
    arrivals.sort_by_key(|e| e.0);
    arrivals
}

/// One instance of every [`SchedulerKind`] built on the paper-default SDPs
/// at unit link rate.
pub(crate) fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    let sdp = Sdp::paper_default();
    SchedulerKind::ALL
        .iter()
        .chain(SchedulerKind::PIFO_ALL.iter())
        .map(|k| k.build(&sdp, 1.0))
        .collect()
}

/// One departed packet as observed by the test driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Departure {
    pub seq: u64,
    pub class: u8,
    pub size: u32,
    pub arrival: u64,
    pub start: u64,
}

impl Departure {
    /// Queueing (waiting) delay in ticks.
    pub fn wait(&self) -> u64 {
        self.start - self.arrival
    }
}

/// Drives a scheduler over a time-sorted arrival sequence on a 1 byte/tick
/// link. Arrivals at or before a decision instant are enqueued before the
/// decision (arrival-before-departure tie rule).
pub(crate) fn drive(s: &mut dyn Scheduler, arrivals: &[(u64, u8, u32)]) -> Vec<Departure> {
    debug_assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut out = Vec::with_capacity(arrivals.len());
    let mut next = 0usize;
    let mut free = 0u64;
    let mut seq = 0u64;
    loop {
        if s.is_empty() {
            if next >= arrivals.len() {
                break;
            }
            let (t, c, sz) = arrivals[next];
            next += 1;
            s.enqueue(Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
            free = free.max(t);
        }
        while next < arrivals.len() && arrivals[next].0 <= free {
            let (t, c, sz) = arrivals[next];
            next += 1;
            s.enqueue(Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
        }
        let pkt = s
            .dequeue(Time::from_ticks(free))
            .expect("work conservation: backlogged scheduler must yield a packet");
        out.push(Departure {
            seq: pkt.seq,
            class: pkt.class,
            size: pkt.size,
            arrival: pkt.arrival.ticks(),
            start: free,
        });
        free += pkt.size as u64;
    }
    out
}

/// Streaming variant of [`drive`]: identical replay loop and admission
/// semantics, but pulls arrivals lazily from an iterator (one-entry
/// lookahead) instead of a materialized slice — the shape of qsim's
/// streaming replay path, without a qsim dependency.
pub(crate) fn drive_streaming<I>(s: &mut dyn Scheduler, arrivals: I) -> Vec<Departure>
where
    I: IntoIterator<Item = (u64, u8, u32)>,
{
    let mut it = arrivals.into_iter().peekable();
    let mut out = Vec::new();
    let mut free = 0u64;
    let mut seq = 0u64;
    loop {
        if s.is_empty() {
            let Some((t, c, sz)) = it.next() else { break };
            s.enqueue(Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
            free = free.max(t);
        }
        while it.peek().is_some_and(|&(t, _, _)| t <= free) {
            let (t, c, sz) = it.next().expect("peeked");
            s.enqueue(Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
        }
        let pkt = s
            .dequeue(Time::from_ticks(free))
            .expect("work conservation: backlogged scheduler must yield a packet");
        out.push(Departure {
            seq: pkt.seq,
            class: pkt.class,
            size: pkt.size,
            arrival: pkt.arrival.ticks(),
            start: free,
        });
        free += pkt.size as u64;
    }
    out
}

/// Per-class average waiting delays over a departure record.
pub(crate) fn class_average_waits(deps: &[Departure], num_classes: usize) -> Vec<f64> {
    let mut sum = vec![0.0f64; num_classes];
    let mut cnt = vec![0u64; num_classes];
    for d in deps {
        sum[d.class as usize] += d.wait() as f64;
        cnt[d.class as usize] += 1;
    }
    (0..num_classes)
        .map(|c| {
            if cnt[c] == 0 {
                0.0
            } else {
                sum[c] / cnt[c] as f64
            }
        })
        .collect()
}
