//! Weighted Fair Queueing — the §2.1 *capacity differentiation* baseline.
//!
//! WFQ emulates a GPS fluid server with static weights: packet finish tags
//! `F = max(V, F_last) + L/w_i` are assigned at arrival against a virtual
//! clock `V` that advances at rate `R / Σ_{i∈B} w_i`, and the head with the
//! smallest finish tag is served first. As the paper argues, this gives
//! controllable *bandwidth* differentiation but load-dependent *delay*
//! differentiation — the defect the proportional model repairs.
//!
//! The virtual clock uses the standard practical approximation (weight sum
//! held constant between scheduler interactions; exact GPS tracking would
//! need iterated deletion).

use std::collections::VecDeque;

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::Scheduler;

/// Packetized Weighted Fair Queueing with per-class weights.
#[derive(Debug, Clone)]
pub struct Wfq {
    weights: Sdp,
    link_rate: f64,
    queues: Vec<VecDeque<(Packet, f64)>>,
    bytes: Vec<u64>,
    finish_last: Vec<f64>,
    vtime: f64,
    last_update: Time,
}

impl Wfq {
    /// Creates a WFQ scheduler; class weights are the SDPs, link capacity
    /// is `link_rate` bytes/tick.
    ///
    /// # Panics
    /// Panics if `link_rate` is not positive and finite.
    pub fn new(weights: Sdp, link_rate: f64) -> Self {
        assert!(
            link_rate > 0.0 && link_rate.is_finite(),
            "link_rate must be positive"
        );
        let n = weights.num_classes();
        Wfq {
            weights,
            link_rate,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; n],
            finish_last: vec![0.0; n],
            vtime: 0.0,
            last_update: Time::ZERO,
        }
    }

    fn active_weight_sum(&self) -> f64 {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| self.weights.get(i))
            .sum()
    }

    /// Advances the virtual clock to real time `now`.
    fn advance_vtime(&mut self, now: Time) {
        let dt = now.saturating_since(self.last_update).as_f64();
        if dt > 0.0 {
            let w = self.active_weight_sum();
            if w > 0.0 {
                self.vtime += dt * self.link_rate / w;
            }
        }
        self.last_update = now;
    }

    /// Resets the GPS busy-period state once the system empties.
    fn reset_if_idle(&mut self) {
        if self.queues.iter().all(|q| q.is_empty()) {
            self.vtime = 0.0;
            self.finish_last.iter_mut().for_each(|f| *f = 0.0);
        }
    }
}

impl Scheduler for Wfq {
    fn num_classes(&self) -> usize {
        self.queues.len()
    }

    fn enqueue(&mut self, pkt: Packet) {
        let c = pkt.class as usize;
        assert!(c < self.queues.len(), "class {c} out of range");
        self.reset_if_idle();
        self.advance_vtime(pkt.arrival);
        let start = self.vtime.max(self.finish_last[c]);
        let finish = start + pkt.size as f64 / self.weights.get(c);
        self.finish_last[c] = finish;
        self.bytes[c] += pkt.size as u64;
        self.queues[c].push_back((pkt, finish));
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.advance_vtime(now);
        let mut winner: Option<(usize, f64)> = None;
        for (c, q) in self.queues.iter().enumerate() {
            if let Some(&(_, f)) = q.front() {
                match winner {
                    Some((_, bf)) if f > bf => {}
                    // `>=`-style update favors the higher class on ties.
                    _ => winner = Some((c, f)),
                }
            }
        }
        let (c, _) = winner?;
        let (pkt, _) = self.queues[c].pop_front().expect("winner has a head");
        self.bytes[c] -= pkt.size as u64;
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues[class].len()
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        let (pkt, _) = self.queues[class].pop_back()?;
        self.bytes[class] -= pkt.size as u64;
        // Roll the per-class finish tag back to the new tail so future
        // arrivals don't inherit virtual service of the dropped packet.
        if let Some(&(_, f)) = self.queues[class].back() {
            self.finish_last[class] = f;
        }
        Some(pkt)
    }

    fn name(&self) -> &'static str {
        "WFQ"
    }

    fn set_link_rate(&mut self, rate: f64) {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "link_rate must be positive, got {rate}"
        );
        // Already-assigned finish tags keep their virtual timestamps; only
        // the rate at which the virtual clock advances changes.
        self.link_rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, size: u32, at: u64) -> Packet {
        Packet::new(seq, class, size, Time::from_ticks(at))
    }

    #[test]
    fn equal_weights_approximate_round_robin() {
        let mut s = Wfq::new(Sdp::new(&[1.0, 1.0]).unwrap(), 1.0);
        for i in 0..6 {
            s.enqueue(pkt(i, (i % 2) as u8, 100, 0));
        }
        let mut classes = Vec::new();
        let mut now = Time::ZERO;
        while let Some(p) = s.dequeue(now) {
            classes.push(p.class);
            now += simcore::Dur::from_ticks(100);
        }
        // Perfect alternation with equal weights and equal sizes.
        assert_eq!(classes, vec![1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn weight_3_to_1_bandwidth_split() {
        // Saturate both queues; class 1 (weight 3) should get ~3/4 of the
        // departures over a long busy period.
        let mut s = Wfq::new(Sdp::new(&[1.0, 3.0]).unwrap(), 1.0);
        for i in 0..400 {
            s.enqueue(pkt(2 * i, 0, 100, 0));
            s.enqueue(pkt(2 * i + 1, 1, 100, 0));
        }
        let mut now = Time::ZERO;
        let mut high = 0;
        for _ in 0..200 {
            if s.dequeue(now).unwrap().class == 1 {
                high += 1;
            }
            now += simcore::Dur::from_ticks(100);
        }
        assert!((140..=160).contains(&high), "high share {high}/200");
    }

    #[test]
    fn finish_tags_respect_fifo_within_class() {
        let mut s = Wfq::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        s.enqueue(pkt(2, 0, 50, 5));
        let a = s.dequeue(Time::from_ticks(10)).unwrap();
        let b = s.dequeue(Time::from_ticks(110)).unwrap();
        assert_eq!((a.seq, b.seq), (1, 2));
    }

    #[test]
    fn idle_reset_prevents_stale_tags() {
        let mut s = Wfq::new(Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        s.enqueue(pkt(1, 0, 100, 0));
        assert!(s.dequeue(Time::ZERO).is_some());
        assert!(s.dequeue(Time::from_ticks(100)).is_none());
        // Long idle gap; new busy period must not inherit huge vtime.
        s.enqueue(pkt(2, 1, 100, 1_000_000));
        s.enqueue(pkt(3, 0, 100, 1_000_000));
        // Class 1 (higher weight => smaller finish) goes first.
        assert_eq!(s.dequeue(Time::from_ticks(1_000_000)).unwrap().class, 1);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut s = Wfq::new(Sdp::paper_default(), 1.0);
        assert!(s.dequeue(Time::ZERO).is_none());
    }
}
