//! Waiting-Time Priority (WTP) — §4.2.
//!
//! Kleinrock's Time-Dependent Priorities (1964): the head-of-line packet of
//! class i has priority `p_i(t) = w_i(t) · s_i`, where `w_i(t)` is its
//! waiting time so far. The SDPs `s_i` set the rate at which priority
//! accrues, and in heavy load the long-term delay ratios converge to the
//! inverse SDP ratios (Eq. 10/13): `d̄_i/d̄_j → s_j/s_i`.
//!
//! The per-decision cost is O(N) over the backlogged classes — cheap for
//! the small N the DiffServ class-selector model envisions.

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, ReconfigureError, Scheduler};

/// The Waiting-Time Priority scheduler.
///
/// ```
/// use sched::{Packet, Scheduler, Sdp, Wtp};
/// use simcore::Time;
///
/// // Two classes with SDP spacing 2: class 1 accrues priority twice as fast.
/// let mut wtp = Wtp::new(Sdp::geometric(2, 2.0).unwrap());
/// wtp.enqueue(Packet::new(0, 0, 100, Time::from_ticks(0)));
/// wtp.enqueue(Packet::new(1, 1, 100, Time::from_ticks(0)));
/// // Equal waits ⇒ the higher SDP wins the decision.
/// assert_eq!(wtp.dequeue(Time::from_ticks(10)).unwrap().class, 1);
/// assert_eq!(wtp.dequeue(Time::from_ticks(20)).unwrap().class, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Wtp {
    queues: ClassQueues,
    sdp: Sdp,
}

impl Wtp {
    /// Creates a WTP scheduler with the given SDPs.
    pub fn new(sdp: Sdp) -> Self {
        Wtp {
            queues: ClassQueues::new(sdp.num_classes()),
            sdp,
        }
    }

    /// The configured SDPs.
    pub fn sdp(&self) -> &Sdp {
        &self.sdp
    }

    /// The head-of-line priority of `class` at `now` (`None` if idle).
    ///
    /// Exposed for the Proposition-2 starvation analysis and for tests.
    pub fn head_priority(&self, class: usize, now: Time) -> Option<f64> {
        self.queues
            .head(class)
            .map(|p| p.waiting(now).as_f64() * self.sdp.get(class))
    }

    /// The class [`dequeue`](Scheduler::dequeue) would serve at `now`,
    /// without dequeuing — the decision-instant hook the conformance
    /// oracle diffs against.
    pub fn peek_winner(&self, now: Time) -> Option<usize> {
        self.select_winner(now)
    }

    #[cfg(not(feature = "mutate-wtp-tiebreak"))]
    fn select_winner(&self, now: Time) -> Option<usize> {
        self.queues
            .select_by(|c, head| head.waiting(now).as_f64() * self.sdp.get(c))
    }

    /// MUTATED selection for the conformance smoke-runner: identical
    /// priorities, but ties go to the **lower** class — the kind of silent
    /// tie-break drift the differential harness exists to catch.
    #[cfg(feature = "mutate-wtp-tiebreak")]
    fn select_winner(&self, now: Time) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (c, head) in self.queues.heads().enumerate() {
            let Some(head) = head else { continue };
            let p = head.waiting(now).as_f64() * self.sdp.get(c);
            match best {
                // `<=` keeps the earlier (lower) class on ties.
                Some((_, bp)) if p <= bp => {}
                _ => best = Some((c, p)),
            }
        }
        best.map(|(c, _)| c)
    }
}

impl Scheduler for Wtp {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        let winner = self.select_winner(now)?;
        self.queues.pop(winner)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        "WTP"
    }

    fn decision_values(&self, now: Time, out: &mut Vec<(usize, f64)>) {
        for (c, head) in self.queues.heads().enumerate() {
            if let Some(head) = head {
                out.push((c, head.waiting(now).as_f64() * self.sdp.get(c)));
            }
        }
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        if sdp.num_classes() != self.queues.num_classes() {
            return Err(ReconfigureError::ClassCountMismatch {
                have: self.queues.num_classes(),
                want: sdp.num_classes(),
            });
        }
        // Backlogged packets keep their waiting time; only the accrual
        // slopes change, so priorities jump to the new SDPs at the very
        // next decision instant.
        self.sdp = sdp.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wtp_1_2() -> Wtp {
        Wtp::new(Sdp::new(&[1.0, 2.0]).unwrap())
    }

    fn pkt(seq: u64, class: u8, at: u64) -> Packet {
        Packet::new(seq, class, 100, Time::from_ticks(at))
    }

    #[test]
    fn higher_sdp_wins_at_equal_waiting_time() {
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 0));
        // Both waited 10 ticks: class 1 has priority 20 vs 10.
        assert_eq!(s.dequeue(Time::from_ticks(10)).unwrap().class, 1);
    }

    #[test]
    fn long_waiting_low_class_overtakes() {
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 0, 0)); // by t=30 has waited 30, priority 30
        s.enqueue(pkt(2, 1, 20)); // by t=30 has waited 10, priority 20
        assert_eq!(s.dequeue(Time::from_ticks(30)).unwrap().class, 0);
    }

    #[test]
    #[cfg_attr(
        feature = "mutate-wtp-tiebreak",
        ignore = "tie rule deliberately flipped by the mutation feature"
    )]
    fn exact_crossover_tie_goes_to_higher_class() {
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 0, 0)); // priority at t=20: 20
        s.enqueue(pkt(2, 1, 10)); // priority at t=20: 2*10 = 20
        assert_eq!(s.dequeue(Time::from_ticks(20)).unwrap().class, 1);
    }

    #[test]
    #[cfg_attr(
        feature = "mutate-wtp-tiebreak",
        ignore = "tie rule deliberately flipped by the mutation feature"
    )]
    fn zero_waiting_time_tie_prefers_higher_class() {
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 0, 5));
        s.enqueue(pkt(2, 1, 5));
        assert_eq!(s.dequeue(Time::from_ticks(5)).unwrap().class, 1);
    }

    #[test]
    fn fifo_within_class() {
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 1, 0));
        s.enqueue(pkt(2, 1, 1));
        s.enqueue(pkt(3, 1, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(Time::from_ticks(50)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_winner_matches_dequeue() {
        let mut s = wtp_1_2();
        assert_eq!(s.peek_winner(Time::from_ticks(5)), None);
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 20));
        for now in [25u64, 45] {
            let t = Time::from_ticks(now);
            let peeked = s.peek_winner(t).unwrap();
            assert_eq!(s.dequeue(t).unwrap().class as usize, peeked);
        }
    }

    #[test]
    fn decision_values_report_backlogged_priorities_in_class_order() {
        let mut s = wtp_1_2();
        let mut out = Vec::new();
        s.decision_values(Time::from_ticks(10), &mut out);
        assert!(out.is_empty());
        s.enqueue(pkt(1, 1, 4));
        s.enqueue(pkt(2, 0, 6));
        s.decision_values(Time::from_ticks(10), &mut out);
        // Class 0 waited 4 (s=1), class 1 waited 6 (s=2).
        assert_eq!(out, vec![(0, 4.0), (1, 12.0)]);
        // Appends without clearing, and dequeue agrees with the argmax.
        s.decision_values(Time::from_ticks(10), &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(s.dequeue(Time::from_ticks(10)).unwrap().class, 1);
    }

    #[test]
    fn reconfigure_changes_the_next_decision_without_draining() {
        // Two backlogged heads: under s = [1, 2] at t=30 the priorities are
        // 30 vs 20 (class 0 wins); after a live swap to s = [1, 8] they are
        // 30 vs 80 and class 1 wins — same queues, same waiting times.
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 0, 0));
        s.enqueue(pkt(2, 1, 20));
        s.reconfigure(&Sdp::new(&[1.0, 8.0]).unwrap()).unwrap();
        assert_eq!(s.backlog_packets(0) + s.backlog_packets(1), 2);
        assert_eq!(s.dequeue(Time::from_ticks(30)).unwrap().class, 1);
        assert_eq!(s.sdp().values(), &[1.0, 8.0]);
    }

    #[test]
    fn reconfigure_rejects_class_count_mismatch() {
        use crate::scheduler::ReconfigureError;
        let mut s = wtp_1_2();
        s.enqueue(pkt(1, 0, 0));
        let err = s.reconfigure(&Sdp::paper_default()).unwrap_err();
        assert_eq!(
            err,
            ReconfigureError::ClassCountMismatch { have: 2, want: 4 }
        );
        // The running configuration is untouched on failure.
        assert_eq!(s.sdp().values(), &[1.0, 2.0]);
        assert_eq!(s.backlog_packets(0), 1);
    }

    #[test]
    fn head_priority_reports_w_times_s() {
        let mut s = wtp_1_2();
        assert_eq!(s.head_priority(0, Time::from_ticks(10)), None);
        s.enqueue(pkt(1, 1, 4));
        assert_eq!(s.head_priority(1, Time::from_ticks(10)), Some(12.0));
    }

    #[test]
    #[cfg_attr(
        feature = "mutate-wtp-tiebreak",
        ignore = "exact priority crossovers in this construction hit the flipped tie rule"
    )]
    fn proposition_2_starvation_pattern() {
        // Proposition 2: with peak input rate R1 and service rate R, if
        // 1 − R/R1 > s_i/s_j, a back-to-back class-j burst starting at t0 is
        // fully serviced before any class-i packet that arrived at t0.
        //
        // Construction: unit-size packets (size 100 bytes, tx time 100 ticks
        // at rate 1), R1 = 2R (gap 50 ticks), s = [1, 4]:
        // 1 − 1/2 = 0.5 > s1/s2 = 0.25, so starvation must occur.
        let mut s = Wtp::new(Sdp::new(&[1.0, 4.0]).unwrap());
        let burst = 40u64;
        s.enqueue(Packet::new(0, 0, 100, Time::ZERO)); // the class-i victim
        for k in 0..burst {
            s.enqueue(Packet::new(k + 1, 1, 100, Time::from_ticks(50 * k)));
        }
        // Serve at full rate: each service takes 100 ticks.
        let mut now = Time::ZERO;
        let mut served = Vec::new();
        while let Some(p) = s.dequeue(now) {
            served.push(p.class);
            now += simcore::Dur::from_ticks(100);
        }
        // The entire class-1 burst precedes the class-0 packet.
        assert_eq!(served.len() as u64, burst + 1);
        assert!(served[..burst as usize].iter().all(|&c| c == 1));
        assert_eq!(served[burst as usize], 0);
    }

    #[test]
    fn no_starvation_when_condition_fails() {
        // Same pattern but s = [1, 4/3]: 0.5 < s1/s2 = 0.75, so the class-0
        // packet's priority eventually overtakes the burst.
        let mut s = Wtp::new(Sdp::new(&[3.0, 4.0]).unwrap());
        s.enqueue(Packet::new(0, 0, 100, Time::ZERO));
        for k in 0..40u64 {
            s.enqueue(Packet::new(k + 1, 1, 100, Time::from_ticks(50 * k)));
        }
        let mut now = Time::ZERO;
        let mut class0_pos = None;
        let mut idx = 0;
        while let Some(p) = s.dequeue(now) {
            if p.class == 0 {
                class0_pos = Some(idx);
            }
            idx += 1;
            now += simcore::Dur::from_ticks(100);
        }
        let pos = class0_pos.expect("class-0 packet served");
        assert!(pos < 40, "class-0 packet was served at position {pos}");
    }
}
