//! Proportional Average Delay (PAD) — an extension from the paper's §7.
//!
//! The paper observes that WTP/BPR only approach the proportional model in
//! heavy load and asks for "an optimal proportional differentiation
//! scheduler". PAD (proposed by the same authors in follow-on work) drives
//! the *long-term* normalized average delays to equality directly: it
//! serves the backlogged class whose normalized average delay — projected
//! as if its head departed now — is largest:
//!
//! `argmax_i  s_i · (D_i + w_i(t)) / (n_i + 1)`
//!
//! where `D_i`/`n_i` are the cumulative delay and count of departed class-i
//! packets and `w_i(t)` is the head's current waiting time (δ_i = 1/s_i).
//! PAD nails Eq. (1) at any load but has weaker short-timescale behaviour —
//! the trade HPD balances.

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, ReconfigureError, Scheduler};

/// The Proportional Average Delay scheduler.
#[derive(Debug, Clone)]
pub struct Pad {
    queues: ClassQueues,
    sdp: Sdp,
    cum_delay: Vec<f64>,
    departed: Vec<u64>,
}

impl Pad {
    /// Creates a PAD scheduler with the given SDPs.
    pub fn new(sdp: Sdp) -> Self {
        let n = sdp.num_classes();
        Pad {
            queues: ClassQueues::new(n),
            sdp,
            cum_delay: vec![0.0; n],
            departed: vec![0; n],
        }
    }

    /// Projected normalized average delay of `class` if its head (`head`)
    /// were served at `now`.
    fn projected(&self, class: usize, head: &Packet, now: Time) -> f64 {
        let w = head.waiting(now).as_f64();
        self.sdp.get(class) * (self.cum_delay[class] + w) / (self.departed[class] + 1) as f64
    }

    /// Measured long-term average delay of departed class-`class` packets.
    pub fn average_delay(&self, class: usize) -> f64 {
        if self.departed[class] == 0 {
            0.0
        } else {
            self.cum_delay[class] / self.departed[class] as f64
        }
    }
}

impl Scheduler for Pad {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        self.queues.push(pkt);
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        let winner = self
            .queues
            .select_by(|c, head| self.projected(c, head, now))?;
        let pkt = self.queues.pop(winner)?;
        self.cum_delay[winner] += pkt.waiting(now).as_f64();
        self.departed[winner] += 1;
        Some(pkt)
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        "PAD"
    }

    fn reconfigure(&mut self, sdp: &Sdp) -> Result<(), ReconfigureError> {
        if sdp.num_classes() != self.queues.num_classes() {
            return Err(ReconfigureError::ClassCountMismatch {
                have: self.queues.num_classes(),
                want: sdp.num_classes(),
            });
        }
        // Delay history is kept; the normalized averages re-equalize under
        // the new SDPs only as new departures accumulate.
        self.sdp = sdp.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_class_with_largest_normalized_average() {
        let mut s = Pad::new(Sdp::new(&[1.0, 2.0]).unwrap());
        s.enqueue(Packet::new(1, 0, 100, Time::ZERO));
        s.enqueue(Packet::new(2, 1, 100, Time::ZERO));
        // Projected at t=10: class0 -> 1·10/1 = 10, class1 -> 2·10/1 = 20.
        assert_eq!(s.dequeue(Time::from_ticks(10)).unwrap().class, 1);
    }

    #[test]
    fn average_delay_bookkeeping() {
        let mut s = Pad::new(Sdp::new(&[1.0, 2.0]).unwrap());
        s.enqueue(Packet::new(1, 0, 100, Time::ZERO));
        s.dequeue(Time::from_ticks(30));
        s.enqueue(Packet::new(2, 0, 100, Time::from_ticks(40)));
        s.dequeue(Time::from_ticks(50));
        assert!((s.average_delay(0) - 20.0).abs() < 1e-12);
        assert_eq!(s.average_delay(1), 0.0);
    }

    #[test]
    fn long_run_ratio_approaches_target_in_stable_heavy_load() {
        // Poisson-ish traffic at ρ = 0.92 on a 1 byte/tick link: PAD should
        // hold the long-term delay ratio at s1/s0 = 2 even though the load
        // is not extreme — the property that motivates it as the paper's
        // "optimal proportional scheduler" candidate.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        for _ in 0..120_000 {
            // Aggregate mean gap 109 ticks for 100-byte packets => ρ ≈ 0.92.
            t += -109.0 * (1.0 - rng.random::<f64>()).ln();
            let class = if rng.random::<f64>() < 0.5 { 0 } else { 1 };
            arrivals.push((t.round() as u64, class, 100u32));
        }
        let mut s = Pad::new(Sdp::new(&[1.0, 2.0]).unwrap());
        let deps = crate::testutil::drive(&mut s, &arrivals);
        let avg = crate::testutil::class_average_waits(&deps, 2);
        let ratio = avg[0] / avg[1];
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }
}
