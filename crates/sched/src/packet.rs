//! The packet record seen by schedulers.

use simcore::Time;

/// A packet queued at one hop.
///
/// `arrival` is the arrival time *at this hop* — WTP priorities and waiting
/// times are always local. `tag` is an opaque caller-owned value (the
/// multi-hop simulator stores a flow/packet correlation id in it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Monotone sequence number assigned by the producer (unique per hop).
    pub seq: u64,
    /// Service class, 0-based; higher index = higher class.
    pub class: u8,
    /// Length in bytes.
    pub size: u32,
    /// Arrival time at this hop.
    pub arrival: Time,
    /// Opaque caller tag (flow id, experiment id, …).
    pub tag: u64,
}

impl Packet {
    /// Convenience constructor with a zero tag.
    pub fn new(seq: u64, class: u8, size: u32, arrival: Time) -> Self {
        Packet {
            seq,
            class,
            size,
            arrival,
            tag: 0,
        }
    }

    /// Waiting time if service starts at `now`.
    pub fn waiting(&self, now: Time) -> simcore::Dur {
        now.saturating_since(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Dur;

    #[test]
    fn waiting_time_is_now_minus_arrival() {
        let p = Packet::new(1, 0, 100, Time::from_ticks(10));
        assert_eq!(p.waiting(Time::from_ticks(25)), Dur::from_ticks(15));
        assert_eq!(p.waiting(Time::from_ticks(10)), Dur::ZERO);
        // Saturates rather than panicking if clocks are skewed.
        assert_eq!(p.waiting(Time::from_ticks(5)), Dur::ZERO);
    }
}
