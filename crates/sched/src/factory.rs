//! Scheduler construction by name — used by the experiment harness and the
//! ablation binaries.

use std::fmt;
use std::str::FromStr;

use crate::additive::Additive;
use crate::bpr::Bpr;
use crate::class::Sdp;
use crate::drr::Drr;
use crate::fcfs::Fcfs;
use crate::hpd::Hpd;
use crate::pad::Pad;
use crate::rank::RankKind;
use crate::scfq::Scfq;
use crate::scheduler::Scheduler;
use crate::strict::StrictPriority;
use crate::wf2q::Wf2q;
use crate::wfq::Wfq;
use crate::wtp::Wtp;

/// Every scheduler this crate can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come-first-served (no differentiation).
    Fcfs,
    /// Strict static priority.
    Strict,
    /// Waiting-Time Priority (§4.2).
    Wtp,
    /// Backlog-Proportional Rate, packetized (§4.1, Appendix 3).
    Bpr,
    /// Weighted Fair Queueing (capacity differentiation).
    Wfq,
    /// Worst-case Fair WFQ (WF²Q+, capacity differentiation).
    Wf2q,
    /// Self-Clocked Fair Queueing (capacity differentiation).
    Scfq,
    /// Deficit Round Robin (capacity differentiation).
    Drr,
    /// Additive waiting-time priority (Eq. 3).
    Additive,
    /// Proportional Average Delay (extension).
    Pad,
    /// Hybrid Proportional Delay with g = 0.875 (extension).
    Hpd,
    /// A rank-function discipline on the PIFO core (`sched::rank`).
    Pifo(RankKind),
}

impl SchedulerKind {
    /// All kinds, in report order.
    pub const ALL: [SchedulerKind; 11] = [
        SchedulerKind::Fcfs,
        SchedulerKind::Strict,
        SchedulerKind::Wfq,
        SchedulerKind::Wf2q,
        SchedulerKind::Scfq,
        SchedulerKind::Drr,
        SchedulerKind::Additive,
        SchedulerKind::Wtp,
        SchedulerKind::Bpr,
        SchedulerKind::Pad,
        SchedulerKind::Hpd,
    ];

    /// Every rank-core kind, in [`RankKind::ALL`] order. Kept separate
    /// from [`SchedulerKind::ALL`] so the paper-report iterations stay
    /// over the eleven bespoke schedulers; conformance and the `rank`
    /// experiment suite iterate this list.
    pub const PIFO_ALL: [SchedulerKind; 7] = [
        SchedulerKind::Pifo(RankKind::Fcfs),
        SchedulerKind::Pifo(RankKind::Strict),
        SchedulerKind::Pifo(RankKind::Additive),
        SchedulerKind::Pifo(RankKind::Wtp),
        SchedulerKind::Pifo(RankKind::Pad),
        SchedulerKind::Pifo(RankKind::Hpd),
        SchedulerKind::Pifo(RankKind::Lstf),
    ];

    /// Builds a boxed scheduler.
    ///
    /// `sdp` supplies the differentiation parameters (interpreted per
    /// scheduler: gains for WTP/BPR/PAD/HPD, weights for WFQ/SCFQ/DRR, tick
    /// offsets for Additive; ignored by FCFS/Strict except for the class
    /// count). `link_rate` (bytes/tick) is needed by the rate-based
    /// schedulers.
    pub fn build(&self, sdp: &Sdp, link_rate: f64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(Fcfs::new(sdp.num_classes())),
            SchedulerKind::Strict => Box::new(StrictPriority::new(sdp.num_classes())),
            SchedulerKind::Wtp => Box::new(Wtp::new(sdp.clone())),
            SchedulerKind::Bpr => Box::new(Bpr::new(sdp.clone(), link_rate)),
            SchedulerKind::Wfq => Box::new(Wfq::new(sdp.clone(), link_rate)),
            SchedulerKind::Wf2q => Box::new(Wf2q::new(sdp.clone())),
            SchedulerKind::Scfq => Box::new(Scfq::new(sdp.clone())),
            SchedulerKind::Drr => Box::new(Drr::new(sdp.clone(), 1500)),
            SchedulerKind::Additive => Box::new(Additive::new(sdp.clone())),
            SchedulerKind::Pad => Box::new(Pad::new(sdp.clone())),
            SchedulerKind::Hpd => Box::new(Hpd::with_default_g(sdp.clone())),
            SchedulerKind::Pifo(rk) => rk.build(sdp),
        }
    }

    /// Builds the scheduler **unboxed** and hands it to `visitor`,
    /// monomorphizing the visitor's body once per concrete scheduler type.
    ///
    /// This is the static-dispatch counterpart of [`SchedulerKind::build`]:
    /// hot loops written against a generic `S: Scheduler` (such as
    /// `qsim::run_trace_on`) get devirtualized per-packet calls while the
    /// scheduler choice stays a runtime value.
    pub fn build_and_visit<V: SchedulerVisitor>(&self, sdp: &Sdp, link_rate: f64, v: V) -> V::Out {
        match self {
            SchedulerKind::Fcfs => v.visit(Fcfs::new(sdp.num_classes())),
            SchedulerKind::Strict => v.visit(StrictPriority::new(sdp.num_classes())),
            SchedulerKind::Wtp => v.visit(Wtp::new(sdp.clone())),
            SchedulerKind::Bpr => v.visit(Bpr::new(sdp.clone(), link_rate)),
            SchedulerKind::Wfq => v.visit(Wfq::new(sdp.clone(), link_rate)),
            SchedulerKind::Wf2q => v.visit(Wf2q::new(sdp.clone())),
            SchedulerKind::Scfq => v.visit(Scfq::new(sdp.clone())),
            SchedulerKind::Drr => v.visit(Drr::new(sdp.clone(), 1500)),
            SchedulerKind::Additive => v.visit(Additive::new(sdp.clone())),
            SchedulerKind::Pad => v.visit(Pad::new(sdp.clone())),
            SchedulerKind::Hpd => v.visit(Hpd::with_default_g(sdp.clone())),
            SchedulerKind::Pifo(rk) => rk.build_and_visit(sdp, v),
        }
    }

    /// The scheduler's display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::Strict => "Strict",
            SchedulerKind::Wtp => "WTP",
            SchedulerKind::Bpr => "BPR",
            SchedulerKind::Wfq => "WFQ",
            SchedulerKind::Wf2q => "WF2Q+",
            SchedulerKind::Scfq => "SCFQ",
            SchedulerKind::Drr => "DRR",
            SchedulerKind::Additive => "Additive",
            SchedulerKind::Pad => "PAD",
            SchedulerKind::Hpd => "HPD",
            SchedulerKind::Pifo(rk) => rk.name(),
        }
    }
}

/// A computation generic over the concrete scheduler type, for use with
/// [`SchedulerKind::build_and_visit`].
pub trait SchedulerVisitor {
    /// What the computation returns.
    type Out;

    /// Runs the computation with a freshly built scheduler.
    fn visit<S: Scheduler>(self, scheduler: S) -> Self::Out;
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SchedulerKind::Fcfs),
            "strict" => Ok(SchedulerKind::Strict),
            "wtp" => Ok(SchedulerKind::Wtp),
            "bpr" => Ok(SchedulerKind::Bpr),
            "wfq" => Ok(SchedulerKind::Wfq),
            "wf2q" | "wf2q+" => Ok(SchedulerKind::Wf2q),
            "scfq" => Ok(SchedulerKind::Scfq),
            "drr" => Ok(SchedulerKind::Drr),
            "additive" => Ok(SchedulerKind::Additive),
            "pad" => Ok(SchedulerKind::Pad),
            "hpd" => Ok(SchedulerKind::Hpd),
            // Rank-core kinds: both the display form ("pifo(wtp)") and the
            // filesystem-safe slug ("pifo-wtp") parse.
            "pifo(fcfs)" | "pifo-fcfs" => Ok(SchedulerKind::Pifo(RankKind::Fcfs)),
            "pifo(strict)" | "pifo-strict" => Ok(SchedulerKind::Pifo(RankKind::Strict)),
            "pifo(additive)" | "pifo-additive" => Ok(SchedulerKind::Pifo(RankKind::Additive)),
            "pifo(wtp)" | "pifo-wtp" => Ok(SchedulerKind::Pifo(RankKind::Wtp)),
            "pifo(pad)" | "pifo-pad" => Ok(SchedulerKind::Pifo(RankKind::Pad)),
            "pifo(hpd)" | "pifo-hpd" => Ok(SchedulerKind::Pifo(RankKind::Hpd)),
            "lstf" | "pifo(lstf)" | "pifo-lstf" => Ok(SchedulerKind::Pifo(RankKind::Lstf)),
            other => Err(format!(
                "unknown scheduler '{other}' (expected one of: fcfs, strict, wtp, bpr, wfq, wf2q, scfq, drr, additive, pad, hpd, pifo-<rank>, lstf)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use simcore::Time;

    #[test]
    fn every_kind_builds_and_round_trips() {
        let sdp = Sdp::paper_default();
        for kind in SchedulerKind::ALL
            .into_iter()
            .chain(SchedulerKind::PIFO_ALL)
        {
            let mut s = kind.build(&sdp, 1.0);
            assert_eq!(s.num_classes(), 4);
            assert_eq!(s.name(), kind.name());
            s.enqueue(Packet::new(1, 2, 100, Time::ZERO));
            assert_eq!(s.dequeue(Time::from_ticks(5)).unwrap().seq, 1);
            assert!(s.is_empty());
            // Name string parses back to the same kind.
            assert_eq!(kind.name().parse::<SchedulerKind>().unwrap(), kind);
        }
    }

    #[test]
    fn from_str_rejects_unknown() {
        assert!("nope".parse::<SchedulerKind>().is_err());
        assert!("pifo(bpr)".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn pifo_slugs_parse_to_their_kind() {
        for rk in RankKind::ALL {
            assert_eq!(
                rk.slug().parse::<SchedulerKind>().unwrap(),
                SchedulerKind::Pifo(rk),
                "{}",
                rk.slug()
            );
        }
    }

    #[test]
    fn pifo_reconfigure_mirrors_the_rank_support_matrix() {
        use crate::scheduler::ReconfigureError;
        let sdp = Sdp::paper_default();
        let steeper = Sdp::geometric(4, 4.0).unwrap();
        for rk in RankKind::ALL {
            let mut s = SchedulerKind::Pifo(rk).build(&sdp, 1.0);
            let got = s.reconfigure(&steeper);
            if rk.supports_reconfigure() {
                assert_eq!(got, Ok(()), "{} should accept reconfigure", rk.name());
            } else {
                assert_eq!(
                    got,
                    Err(ReconfigureError::Unsupported(rk.name())),
                    "{} should refuse reconfigure",
                    rk.name()
                );
            }
        }
    }

    #[test]
    fn reconfigure_support_matrix() {
        use crate::scheduler::ReconfigureError;
        // The proportional family accepts live SDP swaps; the baselines
        // refuse with Unsupported naming themselves.
        let supported = [
            SchedulerKind::Wtp,
            SchedulerKind::Bpr,
            SchedulerKind::Pad,
            SchedulerKind::Hpd,
            SchedulerKind::Additive,
        ];
        let sdp = Sdp::paper_default();
        let steeper = Sdp::geometric(4, 4.0).unwrap();
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(&sdp, 1.0);
            let got = s.reconfigure(&steeper);
            if supported.contains(&kind) {
                assert_eq!(got, Ok(()), "{kind} should accept reconfigure");
                // Same-scheduler class-count mismatch is always refused.
                let narrow = Sdp::new(&[1.0, 2.0]).unwrap();
                assert_eq!(
                    s.reconfigure(&narrow),
                    Err(ReconfigureError::ClassCountMismatch { have: 4, want: 2 }),
                    "{kind}"
                );
            } else {
                assert_eq!(
                    got,
                    Err(ReconfigureError::Unsupported(kind.name())),
                    "{kind} should refuse reconfigure"
                );
            }
        }
    }

    #[test]
    fn visitor_sees_every_kind_unboxed() {
        struct DrainOne;
        impl SchedulerVisitor for DrainOne {
            type Out = (usize, bool);
            fn visit<S: Scheduler>(self, mut s: S) -> (usize, bool) {
                s.enqueue(Packet::new(0, 1, 100, Time::ZERO));
                let got = s.dequeue(Time::from_ticks(1)).is_some();
                (s.num_classes(), got)
            }
        }
        let sdp = Sdp::paper_default();
        for kind in SchedulerKind::ALL
            .into_iter()
            .chain(SchedulerKind::PIFO_ALL)
        {
            assert_eq!(
                kind.build_and_visit(&sdp, 1.0, DrainOne),
                (4, true),
                "{kind}"
            );
        }
    }
}
