//! Deficit Round Robin — an O(1) capacity-differentiation baseline.
//!
//! Each class gets a quantum proportional to its SDP; a round-robin ring of
//! backlogged classes accumulates deficit and transmits head packets while
//! the deficit covers them. Included as the third point on the §2.1
//! "capacity differentiation" axis (bandwidth is controllable, delay isn't).

use std::collections::VecDeque;

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;
use crate::scheduler::{ClassQueues, Scheduler};

/// Deficit Round Robin with SDP-proportional quanta.
#[derive(Debug, Clone)]
pub struct Drr {
    queues: ClassQueues,
    quanta: Vec<f64>,
    deficit: Vec<f64>,
    ring: VecDeque<usize>,
    in_ring: Vec<bool>,
}

impl Drr {
    /// Creates a DRR scheduler. Quanta are `base_quantum · s_i / s_0` bytes;
    /// `base_quantum` should be at least the maximum packet size to keep
    /// per-round work O(1).
    ///
    /// # Panics
    /// Panics if `base_quantum` is zero.
    pub fn new(weights: Sdp, base_quantum: u32) -> Self {
        assert!(base_quantum > 0, "base_quantum must be positive");
        let n = weights.num_classes();
        let s0 = weights.get(0);
        Drr {
            queues: ClassQueues::new(n),
            quanta: (0..n)
                .map(|i| base_quantum as f64 * weights.get(i) / s0)
                .collect(),
            deficit: vec![0.0; n],
            ring: VecDeque::new(),
            in_ring: vec![false; n],
        }
    }
}

impl Scheduler for Drr {
    fn num_classes(&self) -> usize {
        self.queues.num_classes()
    }

    fn enqueue(&mut self, pkt: Packet) {
        let c = pkt.class as usize;
        self.queues.push(pkt);
        if !self.in_ring[c] {
            self.in_ring[c] = true;
            self.deficit[c] = 0.0;
            self.ring.push_back(c);
        }
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        if self.queues.is_empty() {
            return None;
        }
        loop {
            let c = *self.ring.front().expect("nonempty backlog implies ring");
            let head_size = match self.queues.head(c) {
                Some(h) => h.size as f64,
                None => {
                    // Defensive: class left the backlog without leaving the
                    // ring (cannot happen through this API, but cheap to fix).
                    self.ring.pop_front();
                    self.in_ring[c] = false;
                    continue;
                }
            };
            if self.deficit[c] >= head_size {
                self.deficit[c] -= head_size;
                let pkt = self.queues.pop(c);
                if self.queues.len(c) == 0 {
                    self.ring.pop_front();
                    self.in_ring[c] = false;
                    self.deficit[c] = 0.0;
                }
                return pkt;
            }
            // Visit over: grant the quantum and rotate.
            self.deficit[c] += self.quanta[c];
            self.ring.rotate_left(1);
        }
    }

    fn backlog_packets(&self, class: usize) -> usize {
        self.queues.len(class)
    }

    fn backlog_bytes(&self, class: usize) -> u64 {
        self.queues.bytes(class)
    }

    fn drop_newest(&mut self, class: usize) -> Option<Packet> {
        // The lazy ring cleanup in `dequeue` handles a class that empties
        // here without leaving the ring.
        self.queues.pop_tail(class)
    }

    fn name(&self) -> &'static str {
        "DRR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, size: u32) -> Packet {
        Packet::new(seq, class, size, Time::ZERO)
    }

    #[test]
    fn equal_quanta_alternate_equal_sizes() {
        let mut s = Drr::new(Sdp::new(&[1.0, 1.0]).unwrap(), 100);
        for i in 0..6 {
            s.enqueue(pkt(i, (i % 2) as u8, 100));
        }
        let mut counts = [0usize; 2];
        for _ in 0..6 {
            counts[s.dequeue(Time::ZERO).unwrap().class as usize] += 1;
        }
        assert_eq!(counts, [3, 3]);
    }

    #[test]
    fn quanta_proportional_to_weights() {
        let mut s = Drr::new(Sdp::new(&[1.0, 3.0]).unwrap(), 1500);
        for i in 0..600 {
            s.enqueue(pkt(2 * i, 0, 100));
            s.enqueue(pkt(2 * i + 1, 1, 100));
        }
        let mut high = 0;
        for _ in 0..400 {
            if s.dequeue(Time::ZERO).unwrap().class == 1 {
                high += 1;
            }
        }
        let share = high as f64 / 400.0;
        assert!((share - 0.75).abs() < 0.08, "share {share}");
    }

    #[test]
    fn deficit_carries_for_large_packets() {
        // Quantum 100 but packet 250 bytes: needs three visits to send.
        let mut s = Drr::new(Sdp::new(&[1.0, 1.0]).unwrap(), 100);
        s.enqueue(pkt(1, 0, 250));
        s.enqueue(pkt(2, 1, 100));
        let order: Vec<u8> = (0..2)
            .map(|_| s.dequeue(Time::ZERO).unwrap().class)
            .collect();
        // Class 1's 100-byte packet fits in its first quantum; class 0 needs
        // accumulated deficit, so class 1 goes out first.
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn ring_membership_resets_after_drain() {
        let mut s = Drr::new(Sdp::new(&[1.0, 1.0]).unwrap(), 100);
        s.enqueue(pkt(1, 0, 100));
        assert!(s.dequeue(Time::ZERO).is_some());
        assert!(s.dequeue(Time::ZERO).is_none());
        s.enqueue(pkt(2, 0, 100));
        assert_eq!(s.dequeue(Time::ZERO).unwrap().seq, 2);
    }
}
