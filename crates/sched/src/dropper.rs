//! Buffer policies and loss-rate differentiation (extension).
//!
//! The paper defers coupled delay+loss differentiation to future work (§7);
//! this module supplies the first building blocks: a shared finite buffer
//! ([`BufferPolicy`]) and a **Proportional Loss Rate** dropper that keeps
//! per-class loss fractions ratioed to loss differentiation parameters
//! σ_1 ≥ σ_2 ≥ … ≥ σ_N (higher classes lose less), the loss-side mirror of
//! Eq. (1).

use std::fmt;

/// What to do with an arriving packet when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropDecision {
    /// Admit the packet (buffer has room).
    Admit,
    /// Drop the arriving packet itself.
    DropArriving,
    /// Push out the tail packet of the given class, then admit.
    DropFrom(usize),
}

/// A shared-buffer admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Infinite buffers — the paper's lossless ECN-regulated regime (§3).
    Unbounded,
    /// A shared byte limit across all classes; overflow triggers a drop
    /// decision from the configured dropper.
    SharedBytes(u64),
}

impl BufferPolicy {
    /// True if admitting `incoming` bytes on top of `queued` bytes would
    /// overflow the buffer.
    pub fn overflows(&self, queued: u64, incoming: u32) -> bool {
        match *self {
            BufferPolicy::Unbounded => false,
            BufferPolicy::SharedBytes(limit) => queued + incoming as u64 > limit,
        }
    }
}

/// Error from PLR parameter validation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlrError(String);

impl fmt::Display for PlrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PLR parameters: {}", self.0)
    }
}

impl std::error::Error for PlrError {}

/// The Proportional Loss Rate dropper.
///
/// Maintains per-class arrival and drop counters; when a drop is required it
/// victimizes the backlogged class whose *normalized loss fraction*
/// `(drops_i / arrivals_i) / σ_i` is smallest — the class furthest below its
/// proportional share — which drives the ratios toward
/// `loss_i / loss_j = σ_i / σ_j`.
/// # Example
///
/// ```
/// use sched::PlrDropper;
///
/// let mut d = PlrDropper::new(&[2.0, 1.0]).unwrap(); // class 0 loses 2x
/// for _ in 0..10 {
///     d.on_arrival(0);
///     d.on_arrival(1);
/// }
/// // First victim: the class furthest below its loss share (tie → lower).
/// assert_eq!(d.choose_victim(&[0, 1]), Some(0));
/// // Now class 0 is at 0.1/2 = 0.05 normalized vs class 1 at 0 → victim 1.
/// assert_eq!(d.choose_victim(&[0, 1]), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct PlrDropper {
    sigma: Vec<f64>,
    arrivals: Vec<u64>,
    drops: Vec<u64>,
}

impl PlrDropper {
    /// Creates a PLR dropper with loss differentiation parameters
    /// σ_1 ≥ σ_2 ≥ … ≥ σ_N > 0 (class N loses least).
    pub fn new(sigma: &[f64]) -> Result<Self, PlrError> {
        if sigma.len() < 2 {
            return Err(PlrError(format!("need ≥2 classes, got {}", sigma.len())));
        }
        if sigma.iter().any(|&s| !(s > 0.0 && s.is_finite())) {
            return Err(PlrError("σ must be positive and finite".into()));
        }
        if sigma.windows(2).any(|w| w[1] > w[0]) {
            return Err(PlrError("σ must be nonincreasing with class".into()));
        }
        Ok(PlrDropper {
            sigma: sigma.to_vec(),
            arrivals: vec![0; sigma.len()],
            drops: vec![0; sigma.len()],
        })
    }

    /// Records an arrival of `class` (call for every arrival, admitted or
    /// not).
    pub fn on_arrival(&mut self, class: usize) {
        self.arrivals[class] += 1;
    }

    /// Chooses the victim class among `candidates` (typically the currently
    /// backlogged classes plus the arriving packet's class) and records the
    /// drop. Returns `None` if `candidates` is empty.
    pub fn choose_victim(&mut self, candidates: &[usize]) -> Option<usize> {
        let victim = self.preview_victim(candidates)?;
        self.record_drop(victim);
        Some(victim)
    }

    /// Like [`Self::choose_victim`] but without recording the drop — for
    /// callers that must first verify the victim can actually be removed
    /// (e.g. the scheduler may not support push-out).
    pub fn preview_victim(&self, candidates: &[usize]) -> Option<usize> {
        candidates.iter().copied().min_by(|&a, &b| {
            self.normalized_loss(a)
                .partial_cmp(&self.normalized_loss(b))
                .expect("loss fractions are finite")
                // Tie: drop from the lower class.
                .then(a.cmp(&b))
        })
    }

    /// Records a drop of `class` (pairs with [`Self::preview_victim`]).
    pub fn record_drop(&mut self, class: usize) {
        self.drops[class] += 1;
    }

    /// Normalized loss fraction `(drops/arrivals)/σ` of `class`.
    pub fn normalized_loss(&self, class: usize) -> f64 {
        self.loss_fraction(class) / self.sigma[class]
    }

    /// Raw loss fraction of `class` (0 if it has no arrivals yet).
    pub fn loss_fraction(&self, class: usize) -> f64 {
        if self.arrivals[class] == 0 {
            0.0
        } else {
            self.drops[class] as f64 / self.arrivals[class] as f64
        }
    }

    /// Per-class `(arrivals, drops)` counters.
    pub fn counters(&self) -> Vec<(u64, u64)> {
        self.arrivals
            .iter()
            .zip(&self.drops)
            .map(|(&a, &d)| (a, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_policy_overflow() {
        assert!(!BufferPolicy::Unbounded.overflows(u64::MAX - 10, 5));
        let p = BufferPolicy::SharedBytes(1000);
        assert!(!p.overflows(900, 100));
        assert!(p.overflows(901, 100));
    }

    #[test]
    fn plr_validation() {
        assert!(PlrDropper::new(&[1.0]).is_err());
        assert!(PlrDropper::new(&[1.0, 2.0]).is_err()); // increasing
        assert!(PlrDropper::new(&[1.0, 0.0]).is_err());
        assert!(PlrDropper::new(&[2.0, 1.0]).is_ok());
    }

    #[test]
    fn victim_is_class_below_its_share() {
        let mut p = PlrDropper::new(&[2.0, 1.0]).unwrap();
        for _ in 0..100 {
            p.on_arrival(0);
            p.on_arrival(1);
        }
        // No drops yet: both normalized losses are 0; tie goes to the lower
        // class.
        assert_eq!(p.choose_victim(&[0, 1]), Some(0));
        // Class 0 now has loss 0.01/2 = 0.005 vs class 1 at 0 → victim 1.
        assert_eq!(p.choose_victim(&[0, 1]), Some(1));
    }

    #[test]
    fn long_run_loss_ratio_tracks_sigma() {
        let mut p = PlrDropper::new(&[3.0, 1.0]).unwrap();
        // Equal arrivals; drop 1 packet per 4 arrivals of each class.
        for round in 0..40_000u64 {
            p.on_arrival(0);
            p.on_arrival(1);
            if round % 4 == 0 {
                p.choose_victim(&[0, 1]);
            }
        }
        let r = p.loss_fraction(0) / p.loss_fraction(1);
        assert!((r - 3.0).abs() < 0.05, "loss ratio {r}");
    }

    #[test]
    fn victim_restricted_to_candidates() {
        let mut p = PlrDropper::new(&[2.0, 1.5, 1.0]).unwrap();
        for c in 0..3 {
            p.on_arrival(c);
        }
        // Only class 2 is backlogged: it must be the victim even though its
        // σ is smallest.
        assert_eq!(p.choose_victim(&[2]), Some(2));
        assert_eq!(p.choose_victim(&[]), None);
    }
}
