//! The scheduler trait and the shared per-class FIFO structure.

use std::collections::VecDeque;
use std::fmt;

use simcore::Time;

use crate::class::Sdp;
use crate::packet::Packet;

/// Why a live [`Scheduler::reconfigure`] call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigureError {
    /// The scheduler has no differentiation parameters to swap (FCFS,
    /// strict priority, the fair-queueing baselines, …).
    Unsupported(&'static str),
    /// The new SDP vector has a different class count than the running
    /// scheduler — queues cannot be re-mapped mid-flight.
    ClassCountMismatch {
        /// Classes the scheduler was built with.
        have: usize,
        /// Classes the new SDP vector describes.
        want: usize,
    },
}

impl fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigureError::Unsupported(name) => {
                write!(f, "{name} does not support live reconfiguration")
            }
            ReconfigureError::ClassCountMismatch { have, want } => {
                write!(f, "scheduler has {have} classes, new SDPs describe {want}")
            }
        }
    }
}

impl std::error::Error for ReconfigureError {}

/// A work-conserving, non-preemptive, class-based packet scheduler.
///
/// The owner (a link/server) calls [`enqueue`](Scheduler::enqueue) on packet
/// arrival and [`dequeue`](Scheduler::dequeue) whenever the output link goes
/// idle; `now` is the decision instant (the previous packet's departure time
/// or, after an idle period, the triggering arrival time). The returned
/// packet starts transmission immediately at `now`.
pub trait Scheduler {
    /// Number of service classes.
    fn num_classes(&self) -> usize;

    /// Accepts `pkt` into its class queue.
    ///
    /// # Panics
    /// Panics if `pkt.class` is out of range.
    fn enqueue(&mut self, pkt: Packet);

    /// Selects the next packet to transmit at decision time `now`, or
    /// `None` if all queues are empty.
    fn dequeue(&mut self, now: Time) -> Option<Packet>;

    /// Queued packets of `class` (excluding any packet in service — the
    /// scheduler never sees the one being transmitted).
    fn backlog_packets(&self, class: usize) -> usize;

    /// Queued bytes of `class`.
    fn backlog_bytes(&self, class: usize) -> u64;

    /// Total queued packets across classes.
    fn total_backlog_packets(&self) -> usize {
        (0..self.num_classes())
            .map(|c| self.backlog_packets(c))
            .sum()
    }

    /// Total queued bytes across classes.
    fn total_backlog_bytes(&self) -> u64 {
        (0..self.num_classes()).map(|c| self.backlog_bytes(c)).sum()
    }

    /// True if no packet is queued.
    fn is_empty(&self) -> bool {
        self.total_backlog_packets() == 0
    }

    /// Short static name for reports ("WTP", "BPR", …).
    fn name(&self) -> &'static str;

    /// Removes and returns the most recently enqueued packet of `class`,
    /// for push-out droppers in finite-buffer (lossy) operation.
    ///
    /// Returns `None` if the class is empty **or** the scheduler does not
    /// support removal (the default); droppers must then fall back to
    /// dropping the arriving packet.
    fn drop_newest(&mut self, _class: usize) -> Option<Packet> {
        None
    }

    /// Appends this scheduler's internal decision record at decision
    /// instant `now` to `out`, one `(class, value)` pair per backlogged
    /// class in class order. Read-only: must not change what a subsequent
    /// [`dequeue`](Scheduler::dequeue) at the same `now` returns.
    ///
    /// The value's meaning is per scheduler — WTP reports the normalized
    /// head-of-line priority `w_i(t)·s_i`, BPR the head's remaining virtual
    /// work `L_i − v_i(t)`. Schedulers without an audit hook append nothing
    /// (the default), which telemetry renders as an empty record.
    ///
    /// `out` is caller-owned scratch so instrumented replay loops can reuse
    /// one allocation across every decision; implementations append without
    /// clearing.
    fn decision_values(&self, _now: Time, _out: &mut Vec<(usize, f64)>) {}

    /// Swaps the differentiation parameters **mid-run**, without draining
    /// the queues: packets already backlogged stay where they are and the
    /// very next decision uses the new SDPs.
    ///
    /// The new vector must describe the same number of classes. The default
    /// refuses ([`ReconfigureError::Unsupported`]); the proportional
    /// schedulers (WTP, BPR, PAD, HPD, Additive) accept.
    fn reconfigure(&mut self, _sdp: &Sdp) -> Result<(), ReconfigureError> {
        Err(ReconfigureError::Unsupported(self.name()))
    }

    /// Informs the scheduler that the link it serves now runs at `rate`
    /// bytes/tick. Only rate-based schedulers (BPR, WFQ) hold the link rate
    /// internally; for everything else this is a no-op (the default).
    ///
    /// # Panics
    /// Implementations may panic if `rate` is not positive and finite.
    fn set_link_rate(&mut self, _rate: f64) {}
}

/// Per-class FIFO queues with byte accounting — the storage shared by every
/// scheduler implementation in this crate.
#[derive(Debug, Clone)]
pub struct ClassQueues {
    queues: Vec<VecDeque<Packet>>,
    bytes: Vec<u64>,
}

impl ClassQueues {
    /// Creates `n` empty class queues.
    pub fn new(n: usize) -> Self {
        ClassQueues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; n],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.queues.len()
    }

    /// Appends a packet to its class queue.
    ///
    /// # Panics
    /// Panics if the packet's class is out of range.
    pub fn push(&mut self, pkt: Packet) {
        let c = pkt.class as usize;
        assert!(
            c < self.queues.len(),
            "packet class {c} out of range (num_classes = {})",
            self.queues.len()
        );
        self.bytes[c] += pkt.size as u64;
        self.queues[c].push_back(pkt);
    }

    /// Removes and returns the head of `class`.
    pub fn pop(&mut self, class: usize) -> Option<Packet> {
        let pkt = self.queues[class].pop_front()?;
        self.bytes[class] -= pkt.size as u64;
        Some(pkt)
    }

    /// The head of `class` without removing it.
    pub fn head(&self, class: usize) -> Option<&Packet> {
        self.queues[class].front()
    }

    /// Queued packets in `class`.
    pub fn len(&self, class: usize) -> usize {
        self.queues[class].len()
    }

    /// Queued bytes in `class`.
    pub fn bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }

    /// True if every class queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Iterator over the indices of backlogged (non-empty) classes.
    pub fn backlogged(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.queues.len()).filter(|&c| !self.queues[c].is_empty())
    }

    /// Removes and returns the *tail* packet of `class` (used by droppers
    /// that push out the most recent arrival).
    pub fn pop_tail(&mut self, class: usize) -> Option<Packet> {
        let pkt = self.queues[class].pop_back()?;
        self.bytes[class] -= pkt.size as u64;
        Some(pkt)
    }

    /// Iterator over every class's head-of-line packet, in class order
    /// (`None` for empty classes). One sweep over the queues with no
    /// per-class index lookups — the building block of the schedulers'
    /// single-pass decision loops.
    pub fn heads(&self) -> impl Iterator<Item = Option<&Packet>> {
        self.queues.iter().map(VecDeque::front)
    }

    /// Picks the winning class by maximizing `priority(class, head)` over
    /// backlogged classes in a single pass, breaking ties toward the
    /// **higher** class index (the paper's tie rule). Returns `None` when
    /// nothing is backlogged.
    ///
    /// Unlike scanning [`ClassQueues::backlogged`] and re-fetching each
    /// head, the head-of-line packet is handed to the priority function
    /// directly: one queue access per class per decision.
    pub fn select_by<F: FnMut(usize, &Packet) -> f64>(&self, mut priority: F) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (c, queue) in self.queues.iter().enumerate() {
            let Some(head) = queue.front() else { continue };
            let p = priority(c, head);
            match best {
                // `>=` favors the later (higher) class on ties.
                Some((_, bp)) if p < bp => {}
                _ => best = Some((c, p)),
            }
        }
        best.map(|(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, class: u8, size: u32, at: u64) -> Packet {
        Packet::new(seq, class, size, Time::from_ticks(at))
    }

    #[test]
    fn push_pop_is_fifo_per_class() {
        let mut q = ClassQueues::new(2);
        q.push(pkt(1, 0, 10, 0));
        q.push(pkt(2, 1, 20, 1));
        q.push(pkt(3, 0, 30, 2));
        assert_eq!(q.pop(0).unwrap().seq, 1);
        assert_eq!(q.pop(0).unwrap().seq, 3);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1).unwrap().seq, 2);
    }

    #[test]
    fn byte_accounting_tracks_push_and_pop() {
        let mut q = ClassQueues::new(1);
        q.push(pkt(1, 0, 100, 0));
        q.push(pkt(2, 0, 50, 0));
        assert_eq!(q.bytes(0), 150);
        q.pop(0);
        assert_eq!(q.bytes(0), 50);
        q.pop_tail(0);
        assert_eq!(q.bytes(0), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn backlogged_lists_nonempty_classes() {
        let mut q = ClassQueues::new(4);
        q.push(pkt(1, 1, 10, 0));
        q.push(pkt(2, 3, 10, 0));
        let b: Vec<usize> = q.backlogged().collect();
        assert_eq!(b, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_class() {
        let mut q = ClassQueues::new(2);
        q.push(pkt(1, 5, 10, 0));
    }

    #[test]
    fn select_by_breaks_ties_toward_higher_class() {
        let mut q = ClassQueues::new(3);
        q.push(pkt(1, 0, 10, 0));
        q.push(pkt(2, 2, 10, 0));
        assert_eq!(q.select_by(|_, _| 1.0), Some(2));
        assert_eq!(q.select_by(|c, _| if c == 0 { 2.0 } else { 1.0 }), Some(0));
        let empty = ClassQueues::new(3);
        assert_eq!(empty.select_by(|_, _| 1.0), None);
    }

    #[test]
    fn select_by_hands_the_actual_head_to_the_priority() {
        let mut q = ClassQueues::new(2);
        q.push(pkt(1, 0, 10, 3));
        q.push(pkt(2, 0, 10, 9)); // queued behind; must not be consulted
        q.push(pkt(3, 1, 10, 7));
        let mut seen = Vec::new();
        q.select_by(|c, head| {
            seen.push((c, head.seq, head.arrival.ticks()));
            0.0
        });
        assert_eq!(seen, vec![(0, 1, 3), (1, 3, 7)]);
    }

    #[test]
    fn heads_reports_every_class_in_order() {
        let mut q = ClassQueues::new(3);
        q.push(pkt(1, 0, 10, 0));
        q.push(pkt(2, 2, 10, 0));
        let seqs: Vec<Option<u64>> = q.heads().map(|h| h.map(|p| p.seq)).collect();
        assert_eq!(seqs, vec![Some(1), None, Some(2)]);
    }

    #[test]
    fn pop_tail_removes_most_recent() {
        let mut q = ClassQueues::new(1);
        q.push(pkt(1, 0, 10, 0));
        q.push(pkt(2, 0, 10, 1));
        assert_eq!(q.pop_tail(0).unwrap().seq, 2);
        assert_eq!(q.head(0).unwrap().seq, 1);
    }
}
