//! # proptest (offline stand-in)
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the real `proptest` API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], [`Just`], [`prop_oneof!`],
//! [`bool::ANY`], [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in three deliberate ways:
//!
//! * generation is seeded deterministically per test (no persistence
//!   files);
//! * failing cases **are shrunk**, but with a simpler scheme than
//!   upstream's value trees: strategies expose [`Strategy::shrink`]
//!   candidates (halve-and-retry for [`collection::vec`], binary search
//!   toward the range minimum for scalar ranges) and the runner greedily
//!   keeps the smallest still-failing candidate within a bounded budget.
//!   `prop_map`ped strategies do not shrink (the map is not invertible
//!   without upstream's value trees) — keep the outermost strategy a
//!   range/vec/tuple when minimal counterexamples matter;
//! * the `PROPTEST_CASES` environment variable overrides the case count of
//!   **every** config, including explicit `with_cases` values. Upstream
//!   only overrides the default; here the variable is the operator knob CI
//!   uses to elevate whole suites (see the conformance job), so it wins
//!   unconditionally.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Maximum number of candidate re-executions one shrink pass may spend.
/// Each candidate runs the full test body, so this bounds the extra time a
/// failure costs (successful runs never pay it).
const SHRINK_BUDGET: usize = 512;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test (before the `PROPTEST_CASES`
    /// override — see [`ProptestConfig::resolved_cases`]).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually used: `PROPTEST_CASES` from the environment
    /// when set and parseable, the configured value otherwise.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.trim().parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on one core
        // while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner keeps the first candidate that still fails and
    /// repeats, so repeated halving/bisection converges in O(log) passes.
    ///
    /// The default is no shrinking (an empty candidate list).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    ///
    /// Mapped strategies do **not** shrink: without upstream's value trees
    /// the pre-map value of a failing case is unknown.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.random_below(span) as $t
            }

            /// Binary search toward the range minimum: the minimum itself,
            /// then geometrically closer points `v - gap/2, v - gap/4, …,
            /// v - 1`. The greedy runner takes the first failing candidate,
            /// so each pass at least halves the distance to the true
            /// minimum, and the `v - 1` fixed point guarantees the result
            /// is the smallest failing value, not a bisection boundary.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v <= self.start {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                let mut step = (v - self.start) / 2;
                while step > 0 {
                    out.push(v - step);
                    step /= 2;
                }
                out.push(v - 1);
                out.dedup();
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }

    /// Bisection toward the range minimum: the minimum itself, then
    /// geometrically closer points `v - gap/2, v - gap/4, …`. Floats have
    /// no "minus one" step, so the result is minimal only up to a
    /// `gap / 2³²` interval.
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        // NaN or already at/below the start: nothing to shrink toward.
        if v.partial_cmp(&self.start) != Some(std::cmp::Ordering::Greater) {
            return Vec::new();
        }
        let mut out = vec![self.start];
        let mut frac = 0.5;
        for _ in 0..32 {
            let cand = v - (v - self.start) * frac;
            if cand > self.start && cand < v {
                out.push(cand);
            }
            frac /= 2.0;
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*)
        where
            $($name::Value: Clone,)*
        {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }

            /// Shrinks one component at a time, holding the others fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )*
                out
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// A uniform choice between several strategies of the same type — the
/// backing type of [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Builds a union over `options` (must be nonempty).
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.random_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }

    /// Offers each member strategy's candidates (the value's originating
    /// member is unknown, but a candidate only survives if the test still
    /// fails on it, so wrong-member candidates are merely wasted tries).
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.options.iter().flat_map(|s| s.shrink(value)).collect()
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::{RngExt, Strategy, TestRng};

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.random::<core::primitive::bool>()
        }

        /// `false` is the simpler boolean.
        fn shrink(&self, value: &core::primitive::bool) -> Vec<core::primitive::bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{RngExt, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.random_below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Halve-and-retry on the length (keep either half, then drop
        /// single elements), followed by element-wise shrinking.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let len = value.len();
            let min = self.len.start;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            if len > min {
                let half = (len / 2).max(min);
                if half < len {
                    out.push(value[..half].to_vec()); // front half
                    out.push(value[len - half..].to_vec()); // back half
                }
                out.push(value[..len - 1].to_vec()); // drop tail element
                out.push(value[1..].to_vec()); // drop head element
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Greedily minimizes a failing value: repeatedly takes the first
/// [`Strategy::shrink`] candidate on which `still_fails` returns true,
/// until no candidate fails or `budget` re-executions are spent.
///
/// Exposed so the shrinker itself is unit-testable; [`run_cases`] uses it
/// with "the test body panics" as the failure predicate.
pub fn shrink_to_minimal<S: Strategy>(
    strategy: &S,
    mut failing: S::Value,
    mut still_fails: impl FnMut(&S::Value) -> bool,
    mut budget: usize,
) -> S::Value
where
    S::Value: Clone,
{
    loop {
        let mut advanced = false;
        for cand in strategy.shrink(&failing) {
            if budget == 0 {
                return failing;
            }
            budget -= 1;
            if still_fails(&cand) {
                failing = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return failing;
        }
    }
}

/// Runs the configured number of deterministic random cases of `body`
/// against values drawn from `strategy`. On failure the value is shrunk
/// (see [`shrink_to_minimal`]) and the **minimal** failing case is
/// reported alongside the case index and seed, then the panic resumes.
///
/// Used by the [`proptest!`] macro expansion.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(&S::Value),
) where
    S::Value: Clone + std::fmt::Debug,
{
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let fails = |value: &S::Value| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value))).is_err()
    };
    for case in 0..config.resolved_cases() {
        let case_seed = seed.wrapping_add(case as u64);
        let mut rng = TestRng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&value)));
        if let Err(payload) = result {
            let minimal = shrink_to_minimal(strategy, value, fails, SHRINK_BUDGET);
            eprintln!(
                "proptest: {test_name} failed at case {case} (seed {case_seed});\n\
                 minimal failing case after shrinking: {minimal:#?}"
            );
            // Re-raise with the minimal case's panic payload when it still
            // reproduces (it should, by construction), else the original.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&minimal))) {
                Err(min_payload) => std::panic::resume_unwind(min_payload),
                Ok(()) => std::panic::resume_unwind(payload),
            }
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over random draws from the
/// strategies, shrinking failures to a minimal case.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expansion backend of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                // All argument strategies combine into one tuple strategy
                // so the whole argument pack shrinks coherently.
                let strategy = ($($strategy,)+);
                $crate::run_cases(stringify!($name), &config, &strategy, |__proptest_value| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__proptest_value);
                    $body
                });
            }
        )*
    };
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -0.5f64..0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-0.5..0.5).contains(&y));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(prop_oneof![Just(1u32), Just(2)], 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_map_applies(n in (0u8..10).prop_map(|x| x as u32 * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }

        #[test]
        fn bool_any_generates(b in prop::bool::ANY) {
            let _: bool = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(0u64..100, 5..6);
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    // ---- shrinker unit tests (the satellite's "unit-test the shrinker") --

    #[test]
    fn scalar_shrink_bisects_to_the_boundary() {
        // Failure predicate: v >= 10. Starting from any failing value the
        // shrinker must land exactly on 10 (binary search + final -1 step).
        for start in [10u64, 11, 37, 77, 99] {
            let min = crate::shrink_to_minimal(&(3u64..100), start, |&v| v >= 10, 10_000);
            assert_eq!(min, 10, "from {start}");
        }
    }

    #[test]
    fn scalar_shrink_stops_at_range_minimum() {
        // Everything fails: the minimum of the range is the fixed point.
        let min = crate::shrink_to_minimal(&(7u64..100), 63, |_| true, 10_000);
        assert_eq!(min, 7);
    }

    #[test]
    fn float_shrink_approaches_minimum() {
        // Failure predicate: v >= 0.5; bisection should get close to 0.5
        // from above (floats have no exact final step).
        let min = crate::shrink_to_minimal(&(0.0f64..1.0), 0.9375, |&v| v >= 0.5, 10_000);
        assert!((0.5..0.51).contains(&min), "got {min}");
    }

    #[test]
    fn vec_shrink_halves_to_single_culprit() {
        // Failure: any element >= 50. A minimal case is one element == 50.
        let strat = prop::collection::vec(0u32..100, 1..50);
        let start = vec![3, 52, 7, 99, 14, 61];
        let min = crate::shrink_to_minimal(&strat, start, |v| v.iter().any(|&x| x >= 50), 10_000);
        assert_eq!(min, vec![50]);
    }

    #[test]
    fn vec_shrink_respects_min_length() {
        let strat = prop::collection::vec(0u32..100, 3..50);
        let start = vec![9, 9, 9, 9, 9, 9, 9];
        // Everything fails; the floor is min length with minimal elements.
        let min = crate::shrink_to_minimal(&strat, start, |_| true, 10_000);
        assert_eq!(min, vec![0, 0, 0]);
    }

    #[test]
    fn tuple_shrink_minimizes_each_component() {
        let strat = (0u64..100, 0u32..10);
        let min = crate::shrink_to_minimal(&strat, (80, 7), |&(a, b)| a >= 20 && b >= 2, 10_000);
        assert_eq!(min, (20, 2));
    }

    #[test]
    fn shrink_budget_is_respected() {
        // With a zero budget the original failing value must come back
        // untouched.
        let min = crate::shrink_to_minimal(&(0u64..100), 77, |&v| v >= 10, 0);
        assert_eq!(min, 77);
    }

    #[test]
    fn unshrinkable_strategies_return_no_candidates() {
        assert!(Strategy::shrink(&Just(5u32), &5).is_empty());
        let mapped = (0u8..10).prop_map(|x| x as u32);
        assert!(Strategy::shrink(&mapped, &3).is_empty());
    }

    #[test]
    fn failing_case_is_shrunk_and_reported() {
        // End-to-end through run_cases: the panic must carry the *minimal*
        // case's message, proving the shrinker ran before re-raising.
        let config = ProptestConfig::with_cases(64);
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("shrink_e2e", &config, &(0u64..1000,), |&(v,)| {
                assert!(v < 10, "saw {v}");
            });
        });
        let payload = result.expect_err("a case >= 10 must occur");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "saw 10", "panic should come from the minimal case");
    }

    #[test]
    fn env_var_overrides_case_count() {
        // Runs in-process: set, observe, and restore the variable.
        let config = ProptestConfig::with_cases(5);
        assert_eq!(config.resolved_cases(), 5);
        std::env::set_var("PROPTEST_CASES", "17");
        assert_eq!(config.resolved_cases(), 17);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(config.resolved_cases(), 5);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(config.resolved_cases(), 5);
    }
}
