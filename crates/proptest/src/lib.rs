//! # proptest (offline stand-in)
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the real `proptest` API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], [`Just`], [`prop_oneof!`],
//! [`bool::ANY`], [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! seeded deterministically per test (no persistence files), and failing
//! cases are not shrunk — the panic message reports the failing case index
//! and seed instead.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on one core
        // while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.random_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// A uniform choice between several strategies of the same type — the
/// backing type of [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Builds a union over `options` (must be nonempty).
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.random_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::{RngExt, Strategy, TestRng};

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.random::<core::primitive::bool>()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{RngExt, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.random_below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `cases` deterministic random cases of `body`, reporting the case
/// index and seed on panic. Used by the [`proptest!`] macro expansion.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let case_seed = seed.wrapping_add(case as u64);
        let mut rng = TestRng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest: {test_name} failed at case {case} (seed {case_seed})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over random draws from the
/// strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expansion backend of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(stringify!($name), &config, |proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -0.5f64..0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-0.5..0.5).contains(&y));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(prop_oneof![Just(1u32), Just(2)], 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_map_applies(n in (0u8..10).prop_map(|x| x as u32 * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }

        #[test]
        fn bool_any_generates(b in prop::bool::ANY) {
            let _: bool = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(0u64..100, 5..6);
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
