//! End-to-end smoke test for the `propdiff-trace` binary: a WTP Study-A
//! workload must yield a schema-valid JSONL trace and a Chrome trace where
//! every departed packet has matched begin/end events and every decision
//! record names the winning class.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "propdiff_trace_smoke_{}_{name}",
        std::process::id()
    ))
}

/// Pulls the numeric value of `"key":` out of a JSONL line.
fn field(line: &str, key: &str) -> i64 {
    let pat = format!("\"{key}\":");
    let rest = &line[line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {line}"))
}

#[test]
fn wtp_study_a_trace_is_valid_and_spans_are_matched() {
    let jsonl = tmp("trace.jsonl");
    let chrome = tmp("trace.json");

    let output = Command::new(env!("CARGO_BIN_EXE_propdiff-trace"))
        .args([
            "run",
            "--scheduler",
            "wtp",
            "--punits",
            "400",
            "--seed",
            "7",
            "--jsonl",
            jsonl.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
            "--validate",
        ])
        .output()
        .expect("propdiff-trace should launch");
    assert!(
        output.status.success(),
        "propdiff-trace failed:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("schema:"),
        "--validate should report: {stdout}"
    );

    // The JSONL export passes the schema checker independently of --validate.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let lines = pdd::telemetry::schema::validate_jsonl(&text).expect("schema-valid JSONL");
    assert!(lines > 0);

    // Every decision record names a winning class that is among its
    // candidate values, and every departure pairs with one decision
    // (single link, work-conserving, lossless).
    let mut decisions = 0u64;
    let mut departs = 0u64;
    for line in text.lines() {
        if line.starts_with("{\"ev\":\"decision\"") {
            decisions += 1;
            let winner = field(line, "winner");
            assert!(
                line.contains(&format!("[[{winner},")) || line.contains(&format!(",[{winner},")),
                "winner class {winner} missing from values: {line}"
            );
        } else if line.starts_with("{\"ev\":\"depart\"") {
            departs += 1;
        }
    }
    // `eol` is serialized as true/false, so check it textually.
    let eol_true = text.lines().filter(|l| l.contains("\"eol\":true")).count() as u64;
    assert_eq!(
        eol_true, departs,
        "single-link departures are all end-of-life"
    );
    assert!(decisions > 0);
    assert_eq!(
        decisions, departs,
        "one decision per departure on a lossless link"
    );

    // Chrome trace: every async span that begins also ends, exactly once.
    let trace = std::fs::read_to_string(&chrome).unwrap();
    assert!(
        trace.trim_end().ends_with("]}"),
        "trace JSON must be closed"
    );
    let mut begins: HashMap<i64, u64> = HashMap::new();
    let mut ends: HashMap<i64, u64> = HashMap::new();
    for line in trace.lines() {
        if line.contains("\"ph\":\"b\"") {
            *begins.entry(field(line, "id")).or_default() += 1;
        } else if line.contains("\"ph\":\"e\"") {
            *ends.entry(field(line, "id")).or_default() += 1;
        }
    }
    assert!(!begins.is_empty(), "trace should contain packet spans");
    assert_eq!(
        begins, ends,
        "every departed packet has matched begin/end events"
    );
    assert!(
        begins.values().all(|&n| n == 1),
        "span ids are unique per packet"
    );
    assert_eq!(begins.len() as u64, departs, "one span per departed packet");

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(&chrome);
}
