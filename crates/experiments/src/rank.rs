//! Rank suite: the LSTF universality probe over the Figure-1 load grid.
//!
//! "Universal Packet Scheduling" (Mittal et al.) argues LSTF —
//! least-slack-time-first, the discipline the rank-function core adds to
//! this repo (`sched::LstfRank`) — can replay the behavior of a wide range
//! of schedulers *given the right slack assignments*. This study asks the
//! natural follow-up for proportional differentiation: how close does a
//! single **static** per-class slack assignment (budgets ∝ 1/sᵢ, the
//! obvious proportional choice) get to WTP's ratio targets across the
//! paper's whole utilization sweep?
//!
//! The answer shapes the table: LSTF's slack budgets impose *constant
//! delay offsets* between classes, so the achieved successive-class ratios
//! drift with load — toward 1 as queues grow past the budget scale, away
//! from the target as they shrink below it — while WTP holds its ratios
//! nearly load-independent. Static-slack LSTF is additive (Eq. 3), not
//! proportional (Eq. 2) differentiation: universality in the replay sense
//! does not survive averaging over unknown future loads with one static
//! assignment.
//!
//! Every cell runs through the same probed `qsim::Experiment` harness as
//! Figure 1, so the orchestrator caches and audits these cells like any
//! figure cell.

use pdd::qsim::Experiment;
use pdd::sched::{RankKind, SchedulerKind, Sdp};
use pdd::stats::Table;
use pdd::telemetry::{NoopProbe, Probe};

use crate::{banner, fig1, parallel_map, Scale};

/// The two schedulers each cell compares: the static-slack LSTF rank core
/// and bespoke WTP (the proportional reference).
pub const SCHEDULERS: [SchedulerKind; 2] =
    [SchedulerKind::Pifo(RankKind::Lstf), SchedulerKind::Wtp];

/// The SDP spacings probed (the Figure-1 panels).
pub const SDP_RATIOS: [f64; 2] = [2.0, 4.0];

/// One (spacing, utilization) measurement of the probe.
#[derive(Debug, Clone)]
pub struct RankRow {
    /// Successive-class spacing ratio (the target ratio).
    pub sdp_ratio: f64,
    /// Link utilization ρ.
    pub utilization: f64,
    /// LSTF's successive-class ratios d̄1/d̄2, d̄2/d̄3, d̄3/d̄4.
    pub lstf: Vec<f64>,
    /// WTP's successive-class ratios on the identical workload.
    pub wtp: Vec<f64>,
}

/// Mean |r/target − 1| over a row's successive ratios.
pub fn mean_deviation(ratios: &[f64], target: f64) -> f64 {
    ratios.iter().map(|r| (r / target - 1.0).abs()).sum::<f64>() / ratios.len() as f64
}

/// Measures one probe cell: one spacing × one utilization, LSTF and WTP,
/// averaged over the scale's seeds.
pub fn cell(sdp_ratio: f64, utilization: f64, scale: Scale) -> RankRow {
    cell_probed(sdp_ratio, utilization, scale, &mut NoopProbe)
}

/// As [`cell`], streaming packet-lifecycle events into `probe`.
///
/// Implemented as the canonical shard pipeline ([`cell_seed_probed`] per
/// seed, folded by [`merge_seeds`] in seed order), so multi-process runs
/// reproduce it bit-for-bit.
pub fn cell_probed<P: Probe>(
    sdp_ratio: f64,
    utilization: f64,
    scale: Scale,
    probe: &mut P,
) -> RankRow {
    let per_seed: Vec<Vec<Vec<f64>>> = scale
        .seeds()
        .iter()
        .map(|&seed| cell_seed_probed(sdp_ratio, utilization, scale, seed, probe))
        .collect();
    merge_seeds(sdp_ratio, utilization, &per_seed)
}

/// Measures **one seed** of a rank cell — the farm's shard unit. Returns
/// each scheduler's successive-class delay ratios in [`SCHEDULERS`] order,
/// `[lstf, wtp]`.
pub fn cell_seed_probed<P: Probe>(
    sdp_ratio: f64,
    utilization: f64,
    scale: Scale,
    seed: u64,
    probe: &mut P,
) -> Vec<Vec<f64>> {
    let sdp = Sdp::geometric(4, sdp_ratio).expect("static");
    let e = Experiment::paper(utilization, sdp, scale.punits(), vec![seed]);
    e.run_seed_probed(&SCHEDULERS, seed, probe)
        .iter()
        .map(|sr| sr.successive_ratios())
        .collect()
}

/// Folds per-seed partials (**seed order**) into the cell row with the
/// single-process aggregation's exact float arithmetic.
pub fn merge_seeds(sdp_ratio: f64, utilization: f64, per_seed: &[Vec<Vec<f64>>]) -> RankRow {
    let kind = |ki: usize| -> Vec<Vec<f64>> { per_seed.iter().map(|s| s[ki].clone()).collect() };
    RankRow {
        sdp_ratio,
        utilization,
        lstf: pdd::qsim::average_rows(&kind(0)),
        wtp: pdd::qsim::average_rows(&kind(1)),
    }
}

/// The full probe: both spacings × the Figure-1 utilization sweep.
#[derive(Debug, Clone)]
pub struct RankStudy {
    /// Rows, spacing-major then utilization-ascending.
    pub rows: Vec<RankRow>,
}

/// Regenerates the rank study.
pub fn run(scale: Scale) -> RankStudy {
    let mut jobs = Vec::new();
    for &sdp_ratio in &SDP_RATIOS {
        for &utilization in &fig1::UTILIZATIONS {
            jobs.push(move || cell(sdp_ratio, utilization, scale));
        }
    }
    RankStudy {
        rows: parallel_map(jobs),
    }
}

impl RankStudy {
    /// Renders the universality table.
    pub fn render(&self) -> String {
        let mut out = banner("Rank suite: static-slack LSTF vs WTP across the Fig.-1 load grid");
        let mut t = Table::new([
            "target", "util", "LSTF 1/2", "LSTF 2/3", "LSTF 3/4", "LSTF dev", "WTP dev",
        ]);
        for row in &self.rows {
            let mut cells = vec![
                format!("{:.0}", row.sdp_ratio),
                format!("{:.1}%", row.utilization * 100.0),
            ];
            cells.extend(row.lstf.iter().map(|r| format!("{r:.2}")));
            cells.push(format!(
                "{:.0}%",
                mean_deviation(&row.lstf, row.sdp_ratio) * 100.0
            ));
            cells.push(format!(
                "{:.0}%",
                mean_deviation(&row.wtp, row.sdp_ratio) * 100.0
            ));
            t.row(cells);
        }
        out.push_str(&t.to_string());
        out.push_str(
            "\nLSTF's static slack budgets (∝ 1/s_i) impose constant delay offsets:\n\
             the achieved ratios drift with load instead of holding the target,\n\
             while WTP's deviation stays small across the sweep — one static slack\n\
             assignment is not universal over unknown loads.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: Scale = Scale::Custom {
        punits: 6_000,
        nseeds: 2,
    };

    #[test]
    fn lstf_orders_classes_but_drifts_from_the_target() {
        let heavy = cell(2.0, 0.95, TEST_SCALE);
        // LSTF still differentiates (smaller budgets ⇒ smaller delays)...
        for &r in &heavy.lstf {
            assert!(r > 1.0, "LSTF lost class ordering: {:?}", heavy.lstf);
        }
        // ...and WTP tracks the proportional target tighter than static
        // slack does at heavy load, where backlogs dwarf the budgets.
        let lstf_dev = mean_deviation(&heavy.lstf, 2.0);
        let wtp_dev = mean_deviation(&heavy.wtp, 2.0);
        assert!(
            wtp_dev < lstf_dev,
            "expected WTP ({wtp_dev:.3}) to beat static-slack LSTF ({lstf_dev:.3})"
        );
    }

    #[test]
    fn render_lists_the_full_grid() {
        let s = run(Scale::Custom {
            punits: 1_000,
            nseeds: 1,
        });
        assert_eq!(s.rows.len(), SDP_RATIOS.len() * fig1::UTILIZATIONS.len());
        let text = s.render();
        assert!(text.contains("LSTF"));
        assert!(text.contains("99.9%"));
    }
}
