//! Figure 2: average-delay ratios under seven class-load distributions at
//! ρ = 0.95, SDP spacing 2 (panel a) and 4 (panel b).
//!
//! Paper reference points: WTP holds the specified ratio "in a very precise
//! manner" independent of the load split; BPR deviates when the load is
//! skewed (heavily loaded classes get more delay than specified).

use pdd::qsim::Experiment;
use pdd::sched::{SchedulerKind, Sdp};
use pdd::stats::Table;
use pdd::telemetry::{NoopProbe, Probe};

use crate::{banner, parallel_map, Scale};

/// The seven class-load distributions on the paper's x-axis (percent per
/// class, class 1 first).
pub const DISTRIBUTIONS: [[f64; 4]; 7] = [
    [0.40, 0.30, 0.20, 0.10],
    [0.10, 0.20, 0.30, 0.40],
    [0.25, 0.25, 0.25, 0.25],
    [0.70, 0.10, 0.10, 0.10],
    [0.10, 0.10, 0.10, 0.70],
    [0.40, 0.40, 0.10, 0.10],
    [0.10, 0.10, 0.40, 0.40],
];

/// One (panel, distribution) measurement.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The class-load split.
    pub fractions: [f64; 4],
    /// WTP's successive-class ratios.
    pub wtp: Vec<f64>,
    /// BPR's successive-class ratios.
    pub bpr: Vec<f64>,
}

/// One panel (one SDP spacing).
#[derive(Debug, Clone)]
pub struct Fig2Panel {
    /// The spacing ratio (2 for Fig. 2a, 4 for Fig. 2b).
    pub sdp_ratio: f64,
    /// Rows, one per distribution.
    pub rows: Vec<Fig2Row>,
}

/// Both panels.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Panels a and b.
    pub panels: Vec<Fig2Panel>,
}

/// Measures one Figure-2 cell: one SDP spacing × one class-load split at
/// ρ = 0.95, both schedulers, averaged over the scale's seeds.
pub fn cell(sdp_ratio: f64, fractions: [f64; 4], scale: Scale) -> Fig2Row {
    cell_probed(sdp_ratio, fractions, scale, &mut NoopProbe)
}

/// As [`cell`], streaming packet-lifecycle events into `probe`.
///
/// Implemented as the canonical shard pipeline ([`cell_seed_probed`] per
/// seed, folded by [`merge_seeds`] in seed order), so multi-process runs
/// reproduce it bit-for-bit.
pub fn cell_probed<P: Probe>(
    sdp_ratio: f64,
    fractions: [f64; 4],
    scale: Scale,
    probe: &mut P,
) -> Fig2Row {
    let per_seed: Vec<Vec<Vec<f64>>> = scale
        .seeds()
        .iter()
        .map(|&seed| cell_seed_probed(sdp_ratio, fractions, scale, seed, probe))
        .collect();
    merge_seeds(fractions, &per_seed)
}

/// Measures **one seed** of a Figure-2 cell — the farm's shard unit.
/// Returns each scheduler's successive-class delay ratios, `[wtp, bpr]`.
pub fn cell_seed_probed<P: Probe>(
    sdp_ratio: f64,
    fractions: [f64; 4],
    scale: Scale,
    seed: u64,
    probe: &mut P,
) -> Vec<Vec<f64>> {
    let sdp = Sdp::geometric(4, sdp_ratio).expect("static");
    let mut e = Experiment::paper(0.95, sdp, scale.punits(), vec![seed]);
    e.class_fractions = fractions.to_vec();
    e.run_seed_probed(&[SchedulerKind::Wtp, SchedulerKind::Bpr], seed, probe)
        .iter()
        .map(|sr| sr.successive_ratios())
        .collect()
}

/// Folds per-seed partials (**seed order**) into the cell row with the
/// single-process aggregation's exact float arithmetic.
pub fn merge_seeds(fractions: [f64; 4], per_seed: &[Vec<Vec<f64>>]) -> Fig2Row {
    let kind = |ki: usize| -> Vec<Vec<f64>> { per_seed.iter().map(|s| s[ki].clone()).collect() };
    Fig2Row {
        fractions,
        wtp: pdd::qsim::average_rows(&kind(0)),
        bpr: pdd::qsim::average_rows(&kind(1)),
    }
}

/// Regenerates Figure 2 (utilization fixed at 95 %).
pub fn run(scale: Scale) -> Fig2 {
    let panels = [2.0, 4.0]
        .into_iter()
        .map(|ratio| {
            let jobs: Vec<_> = DISTRIBUTIONS
                .iter()
                .map(|&fractions| move || cell(ratio, fractions, scale))
                .collect();
            Fig2Panel {
                sdp_ratio: ratio,
                rows: parallel_map(jobs),
            }
        })
        .collect();
    Fig2 { panels }
}

impl Fig2 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for panel in &self.panels {
            out.push_str(&banner(&format!(
                "Figure 2{}: desired ratio = {:.1}, utilization 95%",
                if panel.sdp_ratio == 2.0 { "a" } else { "b" },
                panel.sdp_ratio
            )));
            let mut t = Table::new([
                "loads %", "WTP 1/2", "WTP 2/3", "WTP 3/4", "BPR 1/2", "BPR 2/3", "BPR 3/4",
            ]);
            for row in &panel.rows {
                let label = row
                    .fractions
                    .iter()
                    .map(|f| format!("{}", (f * 100.0).round() as u64))
                    .collect::<Vec<_>>()
                    .join("/");
                let mut cells = vec![label];
                cells.extend(row.wtp.iter().map(|r| format!("{r:.2}")));
                cells.extend(row.bpr.iter().map(|r| format!("{r:.2}")));
                t.row(cells);
            }
            out.push_str(&t.to_string());
        }
        out.push_str(
            "\npaper shape: WTP holds the target ratio across every load split;\n\
             BPR drifts when class loads are skewed.\n",
        );
        out
    }

    /// Mean absolute deviation from the panel's target across all rows and
    /// pairs, per scheduler: `(wtp_dev, bpr_dev)`.
    pub fn deviations(&self, panel: usize) -> (f64, f64) {
        let p = &self.panels[panel];
        let target = p.sdp_ratio;
        let dev = |rows: &[Fig2Row], pick: fn(&Fig2Row) -> &Vec<f64>| {
            let mut sum = 0.0;
            let mut n = 0.0;
            for r in rows {
                for v in pick(r) {
                    sum += (v - target).abs() / target;
                    n += 1.0;
                }
            }
            sum / n
        };
        (dev(&p.rows, |r| &r.wtp), dev(&p.rows, |r| &r.bpr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wtp_is_load_distribution_insensitive() {
        let f = run(Scale::Bench);
        let (wtp_dev, bpr_dev) = f.deviations(0);
        // WTP within a loose band of the target for every split at 95%.
        assert!(wtp_dev < 0.25, "WTP deviation {wtp_dev}");
        // The paper's qualitative claim: WTP beats BPR in this regime.
        assert!(
            wtp_dev < bpr_dev + 0.05,
            "WTP dev {wtp_dev} vs BPR dev {bpr_dev}"
        );
        assert!(f.render().contains("Figure 2a"));
    }
}
