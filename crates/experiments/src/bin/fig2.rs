//! Regenerates Figure 2 (delay ratios vs class load distribution).
//!
//! Usage: `fig2 [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::fig2::run(scale).render());
}
