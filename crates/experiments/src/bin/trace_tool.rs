//! Workload trace utility: generate, inspect, replay, and feasibility-check
//! CSV packet traces (`ticks,class,size` format, 1 tick = 1 byte at link
//! rate 1).
//!
//! ```text
//! trace_tool gen --out trace.csv [--rho 0.9] [--punits 50000] [--seed 1]
//!                [--fractions 40,30,20,10] [--dist pareto|poisson]
//! trace_tool stats trace.csv
//! trace_tool replay trace.csv [--scheduler wtp] [--sdp 1,2,4,8]
//! trace_tool feasibility trace.csv [--spacing 2.0]
//! ```

use std::io::Write;
use std::process::ExitCode;

use pdd::model::{Ddp, ProportionalModel};
use pdd::qsim::Session;
use pdd::sched::{SchedulerKind, Sdp};
use pdd::simcore::Time;
use pdd::stats::{hurst_estimate, idc_curve, variance_time, Summary, Table};
use pdd::traffic::{IatDist, LoadPlan, SizeDist, Trace};

/// Prints to stdout, ignoring broken pipes (e.g. `trace_tool stats | head`).
fn out(text: std::fmt::Arguments<'_>) {
    let stdout = std::io::stdout();
    let _ = writeln!(stdout.lock(), "{text}");
}

macro_rules! say {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("feasibility") => cmd_feasibility(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  trace_tool gen --out FILE [--rho 0.9] [--punits 50000] [--seed 1]
                 [--fractions 40,30,20,10] [--dist pareto|poisson]
  trace_tool stats FILE
  trace_tool replay FILE [--scheduler wtp] [--sdp 1,2,4,8]
  trace_tool feasibility FILE [--spacing 2.0]";

/// Looks up `--key value` in an argument list.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Option<&str> {
    args.iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && (i == 0 || !args[i - 1].starts_with("--")))
        .map(|(_, a)| a.as_str())
        .next()
}

fn parse_fractions(s: &str) -> Result<Vec<f64>, String> {
    let parts: Result<Vec<f64>, _> = s.split(',').map(str::parse::<f64>).collect();
    let parts = parts.map_err(|e| format!("bad fractions '{s}': {e}"))?;
    let total: f64 = parts.iter().sum();
    if total <= 0.0 {
        return Err("fractions must sum to a positive value".into());
    }
    Ok(parts.iter().map(|f| f / total).collect())
}

fn parse_sdp(s: &str) -> Result<Sdp, String> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(str::parse::<f64>).collect();
    Sdp::new(&vals.map_err(|e| format!("bad sdp '{s}': {e}"))?).map_err(|e| e.to_string())
}

fn load(args: &[String]) -> Result<Trace, String> {
    let path = positional(args).ok_or("missing trace file argument")?;
    Trace::load_csv(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .map_err(|e| e.to_string())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let out = opt(args, "--out").ok_or("gen requires --out FILE")?;
    let rho: f64 = opt(args, "--rho")
        .unwrap_or("0.9")
        .parse()
        .map_err(|e| format!("bad --rho: {e}"))?;
    let punits: u64 = opt(args, "--punits")
        .unwrap_or("50000")
        .parse()
        .map_err(|e| format!("bad --punits: {e}"))?;
    let seed: u64 = opt(args, "--seed")
        .unwrap_or("1")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let fractions = parse_fractions(opt(args, "--fractions").unwrap_or("40,30,20,10"))?;
    let dist = opt(args, "--dist").unwrap_or("pareto");

    let plan = LoadPlan::new(1.0, rho, &fractions, SizeDist::paper()).map_err(|e| e.to_string())?;
    let family = match dist {
        "pareto" => IatDist::paper_pareto(1.0),
        "poisson" => IatDist::exponential(1.0),
        other => return Err(format!("unknown --dist '{other}' (pareto|poisson)")),
    }
    .map_err(|e| e.to_string())?;
    let mut sources = plan.sources(&family).map_err(|e| e.to_string())?;
    let horizon = Time::from_ticks(punits * 441);
    let trace = Trace::generate_per_source(&mut sources, horizon, seed);
    trace
        .save_csv(out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    say!(
        "wrote {} packets ({} bytes of traffic, load {:.3}) to {out}",
        trace.len(),
        trace.total_bytes(),
        trace.rate_bytes_per_tick()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let trace = load(args)?;
    if trace.is_empty() {
        return Err("trace is empty".into());
    }
    say!("packets: {}", trace.len());
    say!("bytes:   {}", trace.total_bytes());
    say!("load:    {:.4} bytes/tick", trace.rate_bytes_per_tick());
    let counts = trace.class_counts();
    let mut t = Table::new(["class", "packets", "share"]);
    for (c, n) in counts.iter().enumerate() {
        t.row([
            format!("{}", c + 1),
            format!("{n}"),
            format!("{:.1}%", 100.0 * *n as f64 / trace.len() as f64),
        ]);
    }
    say!("{t}");
    let times: Vec<u64> = trace.entries().iter().map(|e| e.at.ticks()).collect();
    let curve = idc_curve(&times, 4410, 8);
    if let (Some(first), Some(last)) = (curve.first(), curve.last()) {
        say!(
            "burstiness: IDC {:.2} -> {:.2} over windows {}..{} ticks",
            first.1,
            last.1,
            first.0,
            last.0
        );
    }
    if let Some(h) = hurst_estimate(&variance_time(&times, 4410, 8)) {
        say!("Hurst estimate: {h:.2} (0.5 = Poisson-like)");
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let trace = load(args)?;
    let kind: SchedulerKind = opt(args, "--scheduler")
        .unwrap_or("wtp")
        .parse()
        .map_err(|e: String| e)?;
    let sdp = parse_sdp(opt(args, "--sdp").unwrap_or("1,2,4,8"))?;
    let max_class = trace.entries().iter().map(|e| e.class).max().unwrap_or(0) as usize;
    if max_class >= sdp.num_classes() {
        return Err(format!(
            "trace uses class {} but SDP has only {} classes",
            max_class + 1,
            sdp.num_classes()
        ));
    }
    let mut s = kind.build(&sdp, 1.0);
    let mut acc = vec![Summary::new(); sdp.num_classes()];
    Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
        acc[d.packet.class as usize].push(d.wait().as_f64());
    });
    say!("scheduler: {}", kind.name());
    let mut t = Table::new(["class", "packets", "mean wait (p-units)", "ratio to next"]);
    for c in 0..sdp.num_classes() {
        let ratio = if c + 1 < sdp.num_classes() && acc[c + 1].mean() > 0.0 {
            format!("{:.2}", acc[c].mean() / acc[c + 1].mean())
        } else {
            "-".into()
        };
        t.row([
            format!("{}", c + 1),
            format!("{}", acc[c].count()),
            format!("{:.1}", acc[c].mean() / 441.0),
            ratio,
        ]);
    }
    say!("{t}");
    Ok(())
}

fn cmd_feasibility(args: &[String]) -> Result<(), String> {
    let trace = load(args)?;
    let spacing: f64 = opt(args, "--spacing")
        .unwrap_or("2.0")
        .parse()
        .map_err(|e| format!("bad --spacing: {e}"))?;
    let n = trace.entries().iter().map(|e| e.class).max().unwrap_or(0) as usize + 1;
    if n < 2 {
        return Err("need at least two classes for feasibility".into());
    }
    let arrivals: Vec<(u64, u8, u32)> = trace
        .entries()
        .iter()
        .map(|e| (e.at.ticks(), e.class, e.size))
        .collect();
    let model = ProportionalModel::new(Ddp::geometric(n, spacing).map_err(|e| e.to_string())?);
    let report = model.check_feasibility(&arrivals, 1.0);
    say!("{report}");
    Ok(())
}
