//! Proposition 2 (WTP short-term starvation) demonstrated empirically.
fn main() {
    let probes = experiments::ablations::starvation();
    println!("{}", experiments::ablations::render_starvation(&probes));
}
