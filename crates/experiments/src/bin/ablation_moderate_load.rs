//! Moderate-load accuracy of WTP/BPR vs the PAD/HPD extensions.
//!
//! Usage: `ablation_moderate_load [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::ablations::moderate_load(scale).render());
}
