//! All ten schedulers on identical traffic (scheduler shoot-out ablation).
//!
//! Usage: `ablation_schedulers [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::ablations::schedulers(scale).render());
}
