//! Simulator vs exact M/G/1 theory under Poisson arrivals.
//!
//! Usage: `ablation_analytic [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    let check = experiments::ablations::analytic(scale);
    println!("{}", experiments::ablations::render_analytic(&check));
}
