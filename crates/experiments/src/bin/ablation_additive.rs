//! The additive differentiation model (Eq. 3): constant delay differences.
//!
//! Usage: `ablation_additive [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    let study = experiments::ablations::additive(scale);
    println!("{}", experiments::ablations::render_additive(&study));
}
