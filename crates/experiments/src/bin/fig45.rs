//! Regenerates Figures 4-5 (microscopic views) and writes the raw series
//! as CSVs under `out/` for plotting.
//!
//! Usage: `fig45 [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    let f = experiments::fig45::run(scale);
    println!("{}", f.render());
    let dir = std::path::Path::new("out");
    match f.write_csvs(dir) {
        Ok(()) => println!(
            "raw views written to {}/fig[45]_view[12].csv",
            dir.display()
        ),
        Err(e) => eprintln!("could not write CSVs: {e}"),
    }
}
