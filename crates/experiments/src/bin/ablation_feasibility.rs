//! Eq. (7) feasibility region sweep (DDP spacing x utilization).
//!
//! Usage: `ablation_feasibility [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    let probes = experiments::ablations::feasibility(scale);
    println!("{}", experiments::ablations::render_feasibility(&probes));
}
