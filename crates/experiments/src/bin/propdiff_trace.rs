//! Packet-lifecycle tracing tool: replay a workload with the telemetry
//! layer attached and export JSONL and/or Chrome `trace_event` traces plus
//! a run-metrics summary.
//!
//! ```text
//! propdiff-trace run [--scheduler wtp] [--sdp 1,2,4,8] [--rho 0.9]
//!                    [--punits 2000] [--seed 1] [--trace FILE.csv]
//!                    [--buffer BYTES] [--jsonl FILE] [--chrome FILE]
//!                    [--metrics FILE] [--validate]
//! propdiff-trace studyb [--hops 3] [--rho 0.9] [--experiments 3]
//!                       [--seed 42] [--jsonl FILE] [--chrome FILE]
//!                       [--metrics FILE] [--validate]
//! propdiff-trace metrics [--scheduler wtp] [--sdp 1,2,4,8] [--rho 0.95]
//!                        [--punits 4000] [--seed 1] [--window 250]
//!                        [--epsilon 0.25] [--swap-sdp 1,3,9,27]
//!                        [--prom FILE] [--json FILE] [--validate]
//!                        [--expect-violations]
//! propdiff-trace validate FILE.jsonl
//! ```
//!
//! `run` replays a single-link Study-A workload (generated Pareto traffic,
//! or a CSV trace via `--trace`) through a monomorphized scheduler;
//! `--buffer` switches to the finite-buffer path so drops are traced too.
//! `studyb` runs the multi-hop engine: user packets keep one span id across
//! hops, so a flow's journey renders as a single track in
//! `chrome://tracing` / Perfetto. `--validate` re-reads the JSONL export
//! through the dependency-free schema checker (the CI telemetry job does
//! the same).
//!
//! `metrics` runs a Study-A workload with the full metrics registry and
//! the online PDD conformance monitor attached, then exports Prometheus
//! text exposition (`--prom`, registry + monitor families) and a JSON
//! snapshot bundle (`--json`). `--swap-sdp` swaps the SDP at mid-run and
//! retargets the monitor, so the transient shows up as violation events.
//! `--validate` runs the exposition through the dependency-free
//! Prometheus checker; `--expect-violations` exits nonzero when the
//! monitor stayed quiet — CI points an infeasible spacing (Eq. 7) at it
//! and asserts the monitor catches the miss.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

use pdd::netsim::{run_study_b_probed, StudyBConfig};
use pdd::qsim::{run_trace_lossy_probed, run_trace_probed, Departure, LossMode};
use pdd::sched::{Scheduler, SchedulerKind, SchedulerVisitor, Sdp};
use pdd::simcore::Time;
use pdd::telemetry::{schema, ChromeTraceSink, CountingProbe, JsonlSink, PacketId, Probe, Tee};
use pdd::traffic::{LoadPlan, Trace};

fn out(text: std::fmt::Arguments<'_>) {
    let stdout = std::io::stdout();
    let _ = writeln!(stdout.lock(), "{text}");
}

macro_rules! say {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

const USAGE: &str = "usage:
  propdiff-trace run [--scheduler wtp] [--sdp 1,2,4,8] [--rho 0.9]
                     [--punits 2000] [--seed 1] [--trace FILE.csv]
                     [--buffer BYTES] [--jsonl FILE] [--chrome FILE]
                     [--metrics FILE] [--validate]
  propdiff-trace studyb [--hops 3] [--rho 0.9] [--experiments 3] [--seed 42]
                        [--jsonl FILE] [--chrome FILE] [--metrics FILE]
                        [--validate]
  propdiff-trace metrics [--scheduler wtp] [--sdp 1,2,4,8] [--rho 0.95]
                         [--punits 4000] [--seed 1] [--window 250]
                         [--epsilon 0.25] [--swap-sdp 1,3,9,27]
                         [--prom FILE] [--json FILE] [--validate]
                         [--expect-violations]
  propdiff-trace validate FILE.jsonl";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("studyb") => cmd_studyb(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn positional(args: &[String]) -> Option<&str> {
    args.iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && (i == 0 || !args[i - 1].starts_with("--")))
        .map(|(_, a)| a.as_str())
        .next()
}

fn parse_sdp(s: &str) -> Result<Sdp, String> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(str::parse::<f64>).collect();
    Sdp::new(&vals.map_err(|e| format!("bad sdp '{s}': {e}"))?).map_err(|e| e.to_string())
}

/// The file-backed sinks requested on the command line, as one probe.
struct Sinks {
    jsonl: Option<JsonlSink<BufWriter<File>>>,
    chrome: Option<ChromeTraceSink<BufWriter<File>>>,
}

impl Sinks {
    fn open(args: &[String]) -> Result<Self, String> {
        let open = |path: &str| -> Result<BufWriter<File>, String> {
            File::create(path)
                .map(BufWriter::new)
                .map_err(|e| format!("cannot create {path}: {e}"))
        };
        Ok(Sinks {
            jsonl: opt(args, "--jsonl")
                .map(&open)
                .transpose()?
                .map(JsonlSink::new),
            chrome: opt(args, "--chrome")
                .map(&open)
                .transpose()?
                .map(ChromeTraceSink::new),
        })
    }

    /// Flushes both sinks, reporting what was written.
    fn finish(self, args: &[String]) -> Result<(), String> {
        if let Some(sink) = self.jsonl {
            let path = opt(args, "--jsonl").unwrap();
            let lines = sink.lines();
            sink.finish()
                .and_then(|mut w| w.flush())
                .map_err(|e| format!("writing {path}: {e}"))?;
            say!("jsonl:  {lines} events -> {path}");
            if flag(args, "--validate") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot re-read {path}: {e}"))?;
                let n = schema::validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
                say!("schema: {n} lines valid");
            }
        }
        if let Some(sink) = self.chrome {
            let path = opt(args, "--chrome").unwrap();
            let events = sink.events();
            sink.finish()
                .and_then(|mut w| w.flush())
                .map_err(|e| format!("writing {path}: {e}"))?;
            say!("chrome: {events} trace events -> {path}");
        }
        Ok(())
    }
}

impl Probe for Sinks {
    fn on_arrival(&mut self, at: Time, id: PacketId) {
        if let Some(s) = &mut self.jsonl {
            s.on_arrival(at, id);
        }
        if let Some(s) = &mut self.chrome {
            s.on_arrival(at, id);
        }
    }
    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        if let Some(s) = &mut self.jsonl {
            s.on_enqueue(at, id);
        }
        if let Some(s) = &mut self.chrome {
            s.on_enqueue(at, id);
        }
    }
    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        if let Some(s) = &mut self.jsonl {
            s.on_decision(at, scheduler, winner, values);
        }
        if let Some(s) = &mut self.chrome {
            s.on_decision(at, scheduler, winner, values);
        }
    }
    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        if let Some(s) = &mut self.jsonl {
            s.on_depart(id, arrival, start, finish, eol);
        }
        if let Some(s) = &mut self.chrome {
            s.on_depart(id, arrival, start, finish, eol);
        }
    }
    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        if let Some(s) = &mut self.jsonl {
            s.on_drop(at, id, backlog_bytes, buffer_bytes);
        }
        if let Some(s) = &mut self.chrome {
            s.on_drop(at, id, backlog_bytes, buffer_bytes);
        }
    }
    fn on_heartbeat(&mut self, at: Time, events_handled: u64, heap_depth: usize) {
        if let Some(s) = &mut self.jsonl {
            s.on_heartbeat(at, events_handled, heap_depth);
        }
        if let Some(s) = &mut self.chrome {
            s.on_heartbeat(at, events_handled, heap_depth);
        }
    }
}

/// Replays the trace through a statically-dispatched scheduler (the same
/// monomorphized path the perf baseline measures), probe attached.
struct ProbedReplay<'a, P: Probe> {
    trace: &'a Trace,
    probe: &'a mut P,
}

impl<P: Probe> SchedulerVisitor for ProbedReplay<'_, P> {
    type Out = u64;

    fn visit<S: Scheduler>(self, mut scheduler: S) -> u64 {
        let mut departures = 0u64;
        run_trace_probed(
            &mut scheduler,
            self.trace.entries().iter().copied(),
            1.0,
            |_: &Departure| departures += 1,
            self.probe,
        );
        departures
    }
}

fn write_metrics(args: &[String], report: &pdd::telemetry::MetricsReport) -> Result<(), String> {
    say!("{report}");
    if let Some(path) = opt(args, "--metrics") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        say!("metrics -> {path}");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let kind: SchedulerKind = opt(args, "--scheduler")
        .unwrap_or("wtp")
        .parse()
        .map_err(|e: String| e)?;
    let sdp = parse_sdp(opt(args, "--sdp").unwrap_or("1,2,4,8"))?;

    let trace = if let Some(path) = opt(args, "--trace") {
        Trace::load_csv(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?
            .map_err(|e| e.to_string())?
    } else {
        let rho: f64 = opt(args, "--rho")
            .unwrap_or("0.9")
            .parse()
            .map_err(|e| format!("bad --rho: {e}"))?;
        let punits: u64 = opt(args, "--punits")
            .unwrap_or("2000")
            .parse()
            .map_err(|e| format!("bad --punits: {e}"))?;
        let seed: u64 = opt(args, "--seed")
            .unwrap_or("1")
            .parse()
            .map_err(|e| format!("bad --seed: {e}"))?;
        let mut sources = LoadPlan::paper_study_a(rho)
            .map_err(|e| e.to_string())?
            .pareto_sources()
            .map_err(|e| e.to_string())?;
        Trace::generate_per_source(&mut sources, Time::from_ticks(punits * 441), seed)
    };
    let max_class = trace.entries().iter().map(|e| e.class).max().unwrap_or(0) as usize;
    if max_class >= sdp.num_classes() {
        return Err(format!(
            "trace uses class {} but SDP has only {} classes",
            max_class + 1,
            sdp.num_classes()
        ));
    }

    let sinks = Sinks::open(args)?;
    let mut probe = Tee(CountingProbe::new(sdp.num_classes()), sinks);
    say!("scheduler: {} on {} packets", kind.name(), trace.len());

    if let Some(buffer) = opt(args, "--buffer") {
        let buffer: u64 = buffer.parse().map_err(|e| format!("bad --buffer: {e}"))?;
        let mut s = kind.build(&sdp, 1.0);
        let r = run_trace_lossy_probed(
            s.as_mut(),
            &trace,
            1.0,
            buffer,
            LossMode::TailDrop,
            &mut probe,
        );
        say!(
            "lossy link: {} delivered, {} dropped (buffer {buffer} B)",
            r.delays.iter().map(|d| d.count()).sum::<u64>(),
            r.total_drops()
        );
    } else {
        let departures = kind.build_and_visit(
            &sdp,
            1.0,
            ProbedReplay {
                trace: &trace,
                probe: &mut probe,
            },
        );
        say!("lossless link: {departures} delivered");
    }

    let Tee(counter, sinks) = probe;
    write_metrics(args, &counter.report())?;
    sinks.finish(args)
}

fn cmd_studyb(args: &[String]) -> Result<(), String> {
    let hops: usize = opt(args, "--hops")
        .unwrap_or("3")
        .parse()
        .map_err(|e| format!("bad --hops: {e}"))?;
    let rho: f64 = opt(args, "--rho")
        .unwrap_or("0.9")
        .parse()
        .map_err(|e| format!("bad --rho: {e}"))?;
    let experiments: u32 = opt(args, "--experiments")
        .unwrap_or("3")
        .parse()
        .map_err(|e| format!("bad --experiments: {e}"))?;
    let seed: u64 = opt(args, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;

    let mut cfg = StudyBConfig::paper(hops, rho, 10, 200.0);
    cfg.experiments = experiments;
    cfg.warmup_secs = 2.0;
    cfg.seed = seed;

    let sinks = Sinks::open(args)?;
    let mut probe = Tee(CountingProbe::new(cfg.num_classes()), sinks);
    say!("study B: {hops} hops at rho {rho}, {experiments} experiments");
    let (records, links) = run_study_b_probed(&cfg, &mut probe);
    say!("delivered {} experiment records", records.len());
    for (l, stats) in links.iter().enumerate() {
        say!(
            "link {l}: {} departures, utilization {:.3}",
            stats.departures,
            stats.utilization()
        );
    }

    let Tee(counter, sinks) = probe;
    write_metrics(args, &counter.report())?;
    sinks.finish(args)
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    use pdd::qsim::Session;
    use pdd::scenario::Scenario;
    use pdd::telemetry::{validate_prometheus, MonitorConfig};
    use pdd::traffic::{SizeDist, PAPER_MEAN_PACKET_BYTES};

    let kind: SchedulerKind = opt(args, "--scheduler")
        .unwrap_or("wtp")
        .parse()
        .map_err(|e: String| e)?;
    let sdp = parse_sdp(opt(args, "--sdp").unwrap_or("1,2,4,8"))?;
    let rho: f64 = opt(args, "--rho")
        .unwrap_or("0.95")
        .parse()
        .map_err(|e| format!("bad --rho: {e}"))?;
    let punits: u64 = opt(args, "--punits")
        .unwrap_or("4000")
        .parse()
        .map_err(|e| format!("bad --punits: {e}"))?;
    let seed: u64 = opt(args, "--seed")
        .unwrap_or("1")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let window: u64 = opt(args, "--window")
        .unwrap_or("250")
        .parse()
        .map_err(|e| format!("bad --window: {e}"))?;
    let epsilon: f64 = opt(args, "--epsilon")
        .unwrap_or("0.25")
        .parse()
        .map_err(|e| format!("bad --epsilon: {e}"))?;

    let n = sdp.num_classes();
    let p = PAPER_MEAN_PACKET_BYTES as u64;
    let ratios = |sdp: &Sdp| -> Vec<f64> { (0..n - 1).map(|i| sdp.target_ratio(i)).collect() };
    let mut cfg = MonitorConfig::new(window * p, epsilon, ratios(&sdp));
    let mut scenario = Scenario::empty();
    if let Some(spec) = opt(args, "--swap-sdp") {
        let swapped = parse_sdp(spec)?;
        if swapped.num_classes() != n {
            return Err(format!(
                "--swap-sdp has {} classes but --sdp has {n}",
                swapped.num_classes()
            ));
        }
        let mid = (punits / 2) * p;
        cfg = cfg.retarget(mid, ratios(&swapped));
        scenario = Scenario::builder()
            .set_sdp(Time::from_ticks(mid), swapped)
            .build()
            .map_err(|e| e.to_string())?;
    }

    let fractions = vec![1.0 / n as f64; n];
    let sources = LoadPlan::new(1.0, rho, &fractions, SizeDist::paper())
        .map_err(|e| e.to_string())?
        .pareto_sources()
        .map_err(|e| e.to_string())?;
    let mut scheduler = kind.build(&sdp, 1.0);
    say!(
        "scheduler: {} at rho {rho} for {punits} p-units",
        kind.name()
    );
    let (registry, monitor) = Session::sources(&sources, Time::from_ticks(punits * p), seed, 1.0)
        .scenario(scenario)
        .run_monitored(cfg, scheduler.as_mut(), |_: &Departure| {});

    let departures: u64 = (0..n).map(|c| registry.class_total(c).departures).sum();
    say!("registry:  {departures} departures over {n} classes");
    say!(
        "monitor:   {} windows closed, {} pairs evaluated, {} violations",
        monitor.windows_closed(),
        monitor.pairs_evaluated(),
        monitor.violations().len()
    );

    let mut prom = registry.to_prometheus();
    prom.push_str(&monitor.to_prometheus());
    if flag(args, "--validate") {
        let samples = validate_prometheus(&prom).map_err(|e| format!("exposition invalid: {e}"))?;
        say!("exposition: {samples} samples valid");
    }
    if let Some(path) = opt(args, "--prom") {
        std::fs::write(path, &prom).map_err(|e| format!("cannot write {path}: {e}"))?;
        say!("prometheus -> {path}");
    }
    if let Some(path) = opt(args, "--json") {
        let bundle = format!(
            "{{\"schema\":\"propdiff-metrics-bundle-v1\",\"metrics\":{},\"monitor\":{}}}",
            registry.to_json(),
            monitor.to_json()
        );
        std::fs::write(path, bundle).map_err(|e| format!("cannot write {path}: {e}"))?;
        say!("snapshot -> {path}");
    }
    if flag(args, "--expect-violations") && monitor.violations().is_empty() {
        return Err(
            "--expect-violations: the monitor reported no violations for this workload".into(),
        );
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("missing FILE.jsonl argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let n = schema::validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    say!("{path}: {n} lines valid");
    Ok(())
}
