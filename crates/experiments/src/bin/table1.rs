//! Regenerates Table 1 (end-to-end R_D over the Figure-6 topology).
//!
//! Usage: `table1 [--paper|--bench]`. The paper scale runs 16 cells of
//! 100 user experiments each and takes a few minutes.
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::table1::run(scale).render());
}
