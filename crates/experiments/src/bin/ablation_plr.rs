//! Proportional loss-rate differentiation vs tail-drop on a lossy link.
//!
//! Usage: `ablation_plr [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    let study = experiments::ablations::plr(scale);
    println!("{}", experiments::ablations::render_plr(&study));
}
