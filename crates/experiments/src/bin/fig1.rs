//! Regenerates Figure 1 (delay ratios vs utilization).
//!
//! Usage: `fig1 [--paper|--bench]` (default: quick scale).
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::fig1::run(scale).render());
}
