//! End-to-end differentiation with legacy FCFS hops on the path.
//!
//! Usage: `ablation_mixed_path [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    let study = experiments::ablations::mixed_path(scale);
    println!("{}", experiments::ablations::render_mixed_path(&study));
}
