//! Regenerates Figure 3 (R_D percentiles vs monitoring timescale).
//!
//! Usage: `fig3 [--paper|--bench]`.
fn main() {
    let scale = experiments::Scale::from_args();
    println!("{}", experiments::fig3::run(scale).render());
}
