//! Figures 4 and 5: microscopic views of per-class queueing delays with
//! BPR (Fig. 4) and WTP (Fig. 5); 3 classes, SDPs 1, 2, 4, ρ = 0.95.
//!
//! View I plots per-class average delays over consecutive 30-p-unit
//! intervals; view II plots each packet's delay at its departure time over
//! a ~1000-p-unit overloaded window. The paper's observation: BPR shows
//! sawtooth variations (its backlog-proportional rates starve the last
//! packets of a draining queue) while WTP tracks the proportional spacing
//! smoothly. We quantify that with a per-class roughness metric.

use pdd::qsim::{MicroViews, Microscope};
use pdd::sched::SchedulerKind;
use pdd::stats::{AsciiPlot, Table};

use crate::{banner, Scale};

/// Both figures' data.
#[derive(Debug, Clone)]
pub struct Fig45 {
    /// Fig. 4: BPR microscopic views.
    pub bpr: MicroViews,
    /// Fig. 5: WTP microscopic views.
    pub wtp: MicroViews,
}

/// Measures one Figures-4/5 cell: the microscopic views of one scheduler
/// (BPR for Fig. 4, WTP for Fig. 5) on the shared packet stream.
pub fn cell(kind: SchedulerKind, scale: Scale) -> MicroViews {
    Microscope::paper(scale.punits(), 7).run(kind)
}

/// Regenerates Figures 4 and 5 (same arriving packet streams for both
/// schedulers, as in the paper).
pub fn run(scale: Scale) -> Fig45 {
    Fig45 {
        bpr: cell(SchedulerKind::Bpr, scale),
        wtp: cell(SchedulerKind::Wtp, scale),
    }
}

impl Fig45 {
    /// Renders the summary table plus a view-I excerpt per scheduler.
    pub fn render(&self) -> String {
        let mut out = banner("Figures 4-5: microscopic views (3 classes, s = 1,2,4, rho = 0.95)");
        let mut t = Table::new([
            "sched",
            "rough c1",
            "rough c2",
            "rough c3",
            "mean roughness",
        ]);
        for v in [&self.bpr, &self.wtp] {
            t.row([
                v.kind.name().to_string(),
                format!("{:.3}", v.roughness[0]),
                format!("{:.3}", v.roughness[1]),
                format!("{:.3}", v.roughness[2]),
                format!("{:.3}", v.mean_roughness()),
            ]);
        }
        out.push_str(&t.to_string());
        out.push_str(
            "\nview I excerpt (interval start in p-units; class avg delays in p-units):\n",
        );
        for v in [&self.bpr, &self.wtp] {
            out.push_str(&format!("  {}:\n", v.kind.name()));
            let p = pdd::traffic::PAPER_MEAN_PACKET_BYTES;
            for (start, avgs) in v.view1.iter().skip(v.view1.len() / 2).take(8) {
                let cells: Vec<String> = avgs
                    .iter()
                    .map(|a| match a {
                        Some(d) => format!("{:8.1}", d / p),
                        None => "       -".into(),
                    })
                    .collect();
                out.push_str(&format!(
                    "    t={:>8.0}  {}\n",
                    *start as f64 / p,
                    cells.join(" ")
                ));
            }
        }
        // View-I plot: class average delays over a mid-run window
        // (1 = lowest class, 3 = highest), one panel per scheduler.
        let p = pdd::traffic::PAPER_MEAN_PACKET_BYTES;
        for v in [&self.bpr, &self.wtp] {
            let window: Vec<_> = v.view1.iter().skip(v.view1.len() / 2).take(40).collect();
            let series = |class: usize| -> Vec<(f64, f64)> {
                window
                    .iter()
                    .filter_map(|(start, avgs)| avgs[class].map(|d| (*start as f64 / p, d / p)))
                    .collect()
            };
            out.push_str(&format!(
                "\n  {} view I (x = time in p-units, y = class avg delay in p-units):\n",
                v.kind.name()
            ));
            out.push_str(
                &AsciiPlot::new(60, 12)
                    .series('1', &series(0))
                    .series('2', &series(1))
                    .series('3', &series(2))
                    .render(),
            );
        }
        out.push_str(
            "\npaper shape: BPR's per-packet delays show sawtooth noise (higher\n\
             roughness); WTP tracks the 2x spacing smoothly in both views.\n",
        );
        out
    }

    /// Writes both views of both figures as CSV files under `dir`
    /// (`fig4_view1.csv`, `fig4_view2.csv`, `fig5_view1.csv`,
    /// `fig5_view2.csv`) for external plotting.
    pub fn write_csvs(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (fig, v) in [("fig4", &self.bpr), ("fig5", &self.wtp)] {
            let mut v1 = String::from("interval_start_ticks,class1,class2,class3\n");
            for (start, avgs) in &v.view1 {
                let cells: Vec<String> = avgs
                    .iter()
                    .map(|a| a.map(|d| format!("{d:.1}")).unwrap_or_default())
                    .collect();
                v1.push_str(&format!("{start},{}\n", cells.join(",")));
            }
            std::fs::write(dir.join(format!("{fig}_view1.csv")), v1)?;
            let mut v2 = String::from("departure_ticks,class,delay_ticks\n");
            for &(t, c, d) in &v.view2 {
                v2.push_str(&format!("{t},{},{d:.1}\n", c + 1));
            }
            std::fs::write(dir.join(format!("{fig}_view2.csv")), v2)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpr_sawtooth_exceeds_wtp_smoothness() {
        let f = run(Scale::Bench);
        assert!(
            f.bpr.mean_roughness() > f.wtp.mean_roughness(),
            "BPR {} vs WTP {}",
            f.bpr.mean_roughness(),
            f.wtp.mean_roughness()
        );
        let text = f.render();
        assert!(text.contains("BPR"));
        assert!(text.contains("WTP"));
    }

    #[test]
    fn csvs_are_written() {
        let f = run(Scale::Bench);
        let dir = std::env::temp_dir().join("pdd_fig45_test");
        f.write_csvs(&dir).unwrap();
        for name in [
            "fig4_view1.csv",
            "fig4_view2.csv",
            "fig5_view1.csv",
            "fig5_view2.csv",
        ] {
            let content = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(content.lines().count() > 1, "{name} is empty");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
