//! Datacenter-mesh experiment: PDD over a fat-tree fabric, simulated by
//! link-level decomposition.
//!
//! The cell builds a k-ary fat-tree ([`pdd::netsim::Topology::fat_tree`])
//! whose links all run the same scheduler, loads every link with the
//! paper's Pareto cross-traffic mix at a fixed utilization, and overlays a
//! large population of host-to-host *probe flows* routed by hashed ECMP.
//! The whole fabric is then simulated with the decomposition engine
//! ([`pdd::netsim::decompose`]): one independent single-link simulation
//! per link, composed into per-class per-hop and end-to-end delay
//! statistics.
//!
//! Decomposition makes the cell embarrassingly parallel — the unit of
//! work is the *link*, not the packet — so it shards two ways with
//! byte-identical results:
//!
//! * **threads** — [`run_decomposed`] dispatches per-link jobs through
//!   [`crate::parallel_map_on`] (results return in link
//!   order, composition folds in link order);
//! * **processes** — [`cell_shard`] computes the aggregate over links
//!   `l ≡ shard (mod shards)`; [`merge_shards`] folds the shard
//!   aggregates in shard order. Every aggregate field is an integer sum,
//!   so the fold is exact and transport-safe.
//!
//! The headline numbers are the per-class mean *per-hop* waits (which
//! Eq. 2 predicts follow the SDP spacing) and the per-class mean
//! *end-to-end* waits of the probe flows (the composition-law output).

use pdd::netsim::decompose::{DecomposeInput, DecomposedOutcome};
use pdd::netsim::mesh::{FlowModel, MeshConfig};
use pdd::netsim::topology::splitmix64;
use pdd::netsim::{CrossTraffic, HostFlow, LinkSpec, Topology, TopologyConfig};
use pdd::sched::{RankKind, SchedulerKind, Sdp};

use crate::{parallel_map_on, Scale};

/// Schedulers the mesh suite sweeps: the paper's WTP, its HPD refinement,
/// and the rank-function twin of WTP on the PIFO core (the mesh is the
/// one suite where the programmable core runs at fabric scale).
pub const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Wtp,
    SchedulerKind::Hpd,
    SchedulerKind::Pifo(RankKind::Wtp),
];

/// Process-shard count of a mesh cell: links are dealt round-robin to a
/// fixed number of shards (part of the shard-cache key via
/// `CellSpec::shard_count`), so the farm and the threaded runner replay
/// identical partials at every scale.
pub const SHARDS: usize = 4;

/// Packets per probe flow (a short request/response-sized burst).
pub const PROBE_PACKETS: u32 = 2;

/// Seed for probe-flow placement and ECMP route hashing.
const MESH_SEED: u64 = 0x4D45_5348; // "MESH"

/// Scale-derived dimensions of the mesh cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshDims {
    /// Fat-tree arity (k pods, 3k³/2 unidirectional links, k³/4 hosts).
    pub k: usize,
    /// Number of host-to-host probe flows.
    pub probe_flows: usize,
    /// Probe packet size in bytes (small, so a million-flow overlay adds
    /// load without overrunning the cross-traffic operating point).
    pub probe_bytes: u32,
    /// Gap between a probe flow's packets, ticks.
    pub probe_gap_ticks: u64,
    /// Link capacity, bits per second.
    pub link_bps: f64,
    /// Per-link cross-traffic utilization (paper Pareto mix).
    pub cross_utilization: f64,
    /// Cross-traffic materialization horizon, ticks. Probe starts are
    /// staggered over the first half of this window.
    pub horizon_ticks: u64,
}

/// The mesh cell's dimensions at `scale`.
///
/// Paper scale is the acceptance configuration: a k = 10 fat-tree
/// (1500 links, 250 hosts) carrying one million probe flows over the
/// Pareto cross traffic. Quick and bench scales shrink to k = 4
/// (96 links) so the suite stays interactive; `Custom` maps the p-unit
/// knob onto the horizon and the flow count.
pub fn dims(scale: Scale) -> MeshDims {
    let base = MeshDims {
        k: 4,
        probe_flows: 2_000,
        probe_bytes: 100,
        probe_gap_ticks: 500_000,
        link_bps: 1e9,
        cross_utilization: 0.55,
        horizon_ticks: 10_000_000,
    };
    match scale {
        Scale::Paper => MeshDims {
            k: 10,
            probe_flows: 1_000_000,
            probe_gap_ticks: 1_000_000,
            horizon_ticks: 50_000_000,
            ..base
        },
        Scale::Quick => base,
        Scale::Bench => MeshDims {
            probe_flows: 400,
            horizon_ticks: 2_000_000,
            ..base
        },
        Scale::Custom { punits, .. } => {
            let horizon = (punits.clamp(100, 100_000)) * 1_000;
            MeshDims {
                probe_flows: (punits / 4).clamp(50, 5_000) as usize,
                probe_gap_ticks: (horizon / 20).max(1),
                horizon_ticks: horizon,
                ..base
            }
        }
    }
}

/// Builds the cell's lowered [`MeshConfig`]: fat-tree + cross traffic +
/// ECMP-routed probe flows, fully deterministic in `(kind, scale)`.
///
/// Probe flow `i` picks its endpoints and start by hashing `i` with
/// [`splitmix64`] (no stateful RNG, so placement is independent of
/// evaluation order), cycles classes round-robin, and is routed by the
/// topology's hashed-ECMP contract with flow id `i`.
pub fn cell_config(kind: SchedulerKind, scale: Scale) -> MeshConfig {
    let d = dims(scale);
    let sdp = Sdp::paper_default();
    let spec = LinkSpec::new(d.link_bps, kind).with_cross(CrossTraffic::paper(d.cross_utilization));
    let topology = Topology::fat_tree(d.k, &spec).expect("even arity");
    let hosts = topology.hosts();
    let h = hosts.len() as u64;
    let nc = sdp.num_classes();
    let stagger = (d.horizon_ticks / 2).max(1);
    let flows = (0..d.probe_flows)
        .map(|i| {
            let key = splitmix64(MESH_SEED ^ i as u64);
            let src = hosts[(key % h) as usize];
            let dst = hosts[((key % h + 1 + splitmix64(key) % (h - 1)) % h) as usize];
            HostFlow {
                src,
                dst,
                class: (i % nc) as u8,
                packet_bytes: d.probe_bytes,
                model: FlowModel::Periodic {
                    gap_ticks: d.probe_gap_ticks,
                    count: PROBE_PACKETS,
                },
                start_ticks: 1 + splitmix64(key ^ 0xABCD) % stagger,
            }
        })
        .collect();
    TopologyConfig {
        topology,
        sdp,
        flows,
        seed: MESH_SEED,
        cross_horizon_ticks: d.horizon_ticks,
    }
    .to_mesh()
    .expect("generated mesh is valid by construction")
}

/// Runs the decomposition with per-link jobs on `workers` threads.
///
/// Byte-identical to [`DecomposeInput::run`]: `parallel_map_on` returns
/// results in input (= link) order and `compose` folds in link order, so
/// the worker count can never change a bit of the outcome (tested here
/// and replayed cold/warm by CI).
pub fn run_decomposed(cfg: &MeshConfig, workers: usize) -> Result<DecomposedOutcome, String> {
    let input = DecomposeInput::new(cfg)?;
    let jobs: Vec<_> = (0..input.num_links())
        .map(|l| {
            let input = &input;
            move || input.link_report(l)
        })
        .collect();
    let reports = parallel_map_on(jobs, workers);
    Ok(input.compose(&reports))
}

/// One shard's (or the whole cell's) aggregate: integer sums over a set
/// of links, exactly additive across disjoint link sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshShard {
    /// Links this aggregate covers.
    pub links: u64,
    /// Packet transmissions (packet-hops) on those links.
    pub departures: u64,
    /// Per-class packet-hop counts.
    pub class_hop_packets: Vec<u64>,
    /// Per-class total per-hop wait, ticks.
    pub class_hop_wait_sum: Vec<u64>,
    /// Per-class total wait of *probe-flow* packets on these links, ticks
    /// (summing a flow's route segments across shards reassembles its
    /// end-to-end wait exactly).
    pub probe_wait_sum: Vec<u64>,
    /// Per-class probe packet-hop counts on these links.
    pub probe_hop_packets: Vec<u64>,
}

impl MeshShard {
    fn empty(nc: usize) -> MeshShard {
        MeshShard {
            links: 0,
            departures: 0,
            class_hop_packets: vec![0; nc],
            class_hop_wait_sum: vec![0; nc],
            probe_wait_sum: vec![0; nc],
            probe_hop_packets: vec![0; nc],
        }
    }

    fn add(&mut self, other: &MeshShard) {
        self.links += other.links;
        self.departures += other.departures;
        for c in 0..self.class_hop_packets.len() {
            self.class_hop_packets[c] += other.class_hop_packets[c];
            self.class_hop_wait_sum[c] += other.class_hop_wait_sum[c];
            self.probe_wait_sum[c] += other.probe_wait_sum[c];
            self.probe_hop_packets[c] += other.probe_hop_packets[c];
        }
    }
}

/// Computes shard `shard` of `shards`: the aggregate over links
/// `l ≡ shard (mod shards)`. A pure function of its arguments — the farm
/// runs shards in separate processes and the fold reproduces the
/// monolithic cell bit-for-bit because every field is an integer sum over
/// a disjoint link set.
pub fn cell_shard(kind: SchedulerKind, scale: Scale, shard: usize, shards: usize) -> MeshShard {
    assert!(shard < shards, "shard {shard} out of range ({shards})");
    let cfg = cell_config(kind, scale);
    let n_probe = dims(scale).probe_flows as u32;
    let input = DecomposeInput::new(&cfg).expect("generated mesh is valid");
    let nc = cfg.sdp.num_classes();
    let mut agg = MeshShard::empty(nc);
    for l in (shard..input.num_links()).step_by(shards) {
        let r = input.link_report(l);
        agg.links += 1;
        agg.departures += r.departures;
        for c in 0..nc {
            agg.class_hop_packets[c] += r.class_packets[c];
            agg.class_hop_wait_sum[c] += r.class_wait_sum[c];
        }
        for &(f, sum, n) in &r.flow_wait {
            if f < n_probe {
                let c = cfg.flows[f as usize].class as usize;
                agg.probe_wait_sum[c] += sum;
                agg.probe_hop_packets[c] += n;
            }
        }
    }
    agg
}

/// Folds shard aggregates **in shard order** into the cell total.
pub fn merge_shards(shards: &[MeshShard]) -> MeshShard {
    let nc = shards.first().map_or(0, |s| s.class_hop_packets.len());
    let mut total = MeshShard::empty(nc);
    for s in shards {
        total.add(s);
    }
    total
}

/// One row of the mesh study: the merged aggregate turned into the
/// headline statistics.
#[derive(Debug, Clone)]
pub struct MeshRow {
    /// The scheduler every link ran.
    pub scheduler: SchedulerKind,
    /// Links in the fabric.
    pub links: u64,
    /// Total flows simulated (probe + materialized cross sources).
    pub flows: u64,
    /// Probe flows.
    pub probe_flows: u64,
    /// Packet transmissions summed over all links.
    pub packet_hops: u64,
    /// Per-class mean per-hop queueing wait, ticks.
    pub class_mean_hop_wait: Vec<f64>,
    /// Per-class mean end-to-end queueing wait of probe flows, ticks.
    pub class_mean_e2e: Vec<f64>,
}

impl MeshRow {
    /// Adjacent-class ratios of a per-class series (Eq. 2 targets the SDP
    /// spacing — 2.0 for the paper default).
    fn ratios(series: &[f64]) -> Vec<f64> {
        series
            .windows(2)
            .map(|w| if w[1] > 0.0 { w[0] / w[1] } else { f64::NAN })
            .collect()
    }

    /// Adjacent-class per-hop wait ratios.
    pub fn hop_ratios(&self) -> Vec<f64> {
        Self::ratios(&self.class_mean_hop_wait)
    }

    /// Adjacent-class end-to-end wait ratios.
    pub fn e2e_ratios(&self) -> Vec<f64> {
        Self::ratios(&self.class_mean_e2e)
    }
}

/// Derives the [`MeshRow`] from a merged cell aggregate.
///
/// `flows` is recomputed from the deterministic cell config; per-class
/// probe-flow counts likewise (classes cycle round-robin over the probe
/// index), so the row needs nothing but the integer aggregate.
pub fn cell_row(kind: SchedulerKind, scale: Scale, total: &MeshShard) -> MeshRow {
    let cfg = cell_config(kind, scale);
    let d = dims(scale);
    let nc = cfg.sdp.num_classes();
    let class_mean_hop_wait = (0..nc)
        .map(|c| {
            if total.class_hop_packets[c] == 0 {
                0.0
            } else {
                total.class_hop_wait_sum[c] as f64 / total.class_hop_packets[c] as f64
            }
        })
        .collect();
    // Probe flow i has class i % nc and PROBE_PACKETS packets per hop, so
    // the mean over class-c flows of (flow e2e wait sum / packets) is the
    // class wait sum over PROBE_PACKETS × (number of class-c flows).
    let class_mean_e2e = (0..nc)
        .map(|c| {
            let flows_c = (d.probe_flows + nc - 1 - c) / nc;
            let denom = (PROBE_PACKETS as u64 * flows_c as u64) as f64;
            if denom == 0.0 {
                0.0
            } else {
                total.probe_wait_sum[c] as f64 / denom
            }
        })
        .collect();
    MeshRow {
        scheduler: kind,
        links: total.links,
        flows: cfg.flows.len() as u64,
        probe_flows: d.probe_flows as u64,
        packet_hops: total.departures,
        class_mean_hop_wait,
        class_mean_e2e,
    }
}

/// Runs the whole cell in-process: every shard in order, folded. The
/// orchestrator's `CellSpec::Mesh` replays exactly this arithmetic from
/// cached shard partials.
pub fn cell(kind: SchedulerKind, scale: Scale) -> MeshRow {
    let shards: Vec<MeshShard> = (0..SHARDS)
        .map(|s| cell_shard(kind, scale, s, SHARDS))
        .collect();
    cell_row(kind, scale, &merge_shards(&shards))
}

/// The full mesh study: one row per scheduler in [`SCHEDULERS`].
#[derive(Debug, Clone)]
pub struct MeshStudy {
    /// Rows in [`SCHEDULERS`] order.
    pub rows: Vec<MeshRow>,
}

/// Runs the study at `scale` (cells in sequence; each cell's links
/// already fan out through the decomposition).
pub fn run(scale: Scale) -> MeshStudy {
    MeshStudy {
        rows: SCHEDULERS.iter().map(|&k| cell(k, scale)).collect(),
    }
}

impl MeshStudy {
    /// Renders the study as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = crate::banner("Datacenter mesh — decomposed fat-tree, per-class PDD");
        for r in &self.rows {
            let fmt = |v: &[f64]| {
                v.iter()
                    .map(|x| format!("{x:.2}"))
                    .collect::<Vec<_>>()
                    .join(" / ")
            };
            out.push_str(&format!(
                "{:<14} links {:>5}  flows {:>8}  packet-hops {:>10}  hop ratios {}  e2e ratios {}\n",
                r.scheduler.name(),
                r.links,
                r.flows,
                r.packet_hops,
                fmt(&r.hop_ratios()),
                fmt(&r.e2e_ratios()),
            ));
        }
        out.push_str(
            "\nEach link is simulated independently (link-level decomposition); \
             per-class end-to-end waits compose per-hop means over each probe \
             flow's ECMP route. Ratios target the SDP spacing (2.0).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale::Custom {
        punits: 2_000,
        nseeds: 1,
    };

    #[test]
    fn dims_scale_ladder_matches_the_fabric_arithmetic() {
        let paper = dims(Scale::Paper);
        assert_eq!(paper.k, 10);
        assert!(paper.probe_flows >= 1_000_000);
        let t = Topology::fat_tree(paper.k, &LinkSpec::new(paper.link_bps, SchedulerKind::Wtp))
            .unwrap();
        assert_eq!(t.links().len(), 1500, "paper cell spans >= 1k links");
        assert_eq!(t.hosts().len(), 250);
        assert!(dims(Scale::Bench).probe_flows < dims(Scale::Quick).probe_flows);
    }

    #[test]
    fn cell_config_is_deterministic_and_carries_cross_flows() {
        let a = cell_config(SchedulerKind::Wtp, SCALE);
        let b = cell_config(SchedulerKind::Wtp, SCALE);
        assert_eq!(a.flows.len(), b.flows.len());
        let d = dims(SCALE);
        assert!(a.flows.len() > d.probe_flows, "cross traffic materialized");
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.route, fb.route);
            assert_eq!(fa.start_ticks, fb.start_ticks);
        }
        // Probe flows are host-to-host (multi-hop); cross flows one hop.
        assert!(a.flows[0].route.len() >= 2);
        assert_eq!(a.flows[d.probe_flows].route.len(), 1);
    }

    #[test]
    fn run_decomposed_is_worker_invariant() {
        let cfg = cell_config(SchedulerKind::Wtp, SCALE);
        let one = run_decomposed(&cfg, 1).unwrap();
        for workers in [2, 5] {
            let many = run_decomposed(&cfg, workers).unwrap();
            assert_eq!(
                one.per_flow_mean_wait
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                many.per_flow_mean_wait
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "workers={workers}"
            );
            assert_eq!(one.class_hop_wait_sum, many.class_hop_wait_sum);
            assert_eq!(one.link_departures, many.link_departures);
        }
    }

    #[test]
    fn shards_fold_to_the_monolithic_aggregate() {
        let kind = SchedulerKind::Wtp;
        let whole = cell_shard(kind, SCALE, 0, 1);
        let parts: Vec<MeshShard> = (0..SHARDS)
            .map(|s| cell_shard(kind, SCALE, s, SHARDS))
            .collect();
        assert_eq!(merge_shards(&parts), whole);
    }

    #[test]
    fn probe_classes_see_differentiated_waits() {
        let row = cell(SchedulerKind::Wtp, SCALE);
        assert_eq!(row.links, 96);
        assert!(row.packet_hops > 0);
        assert!(
            row.class_mean_hop_wait[0] > row.class_mean_hop_wait[3],
            "class 1 must wait longer per hop than class 4: {:?}",
            row.class_mean_hop_wait
        );
        assert!(
            row.class_mean_e2e[0] > row.class_mean_e2e[3],
            "end-to-end differentiation must survive composition: {:?}",
            row.class_mean_e2e
        );
    }
}
