//! Figure 3: five percentiles of the R_D measure for four monitoring
//! timescales τ ∈ {10, 100, 1000, 10000} p-units (ρ = 0.95, SDPs 1,2,4,8).
//!
//! Paper reference points: at τ = 10000 p-units both schedulers satisfy the
//! short-timescale proportional model in almost every interval; in the
//! 25–75 % band WTP approximates the target even at tens of p-units, while
//! BPR stays "spread" below hundreds of p-units.

use pdd::qsim::{ShortTimescale, TimescaleResult};
use pdd::sched::SchedulerKind;
use pdd::stats::{AsciiPlot, Table};

use crate::{banner, parallel_map, Scale};

/// Results for both schedulers across the τ ladder.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// WTP results, one per τ.
    pub wtp: Vec<TimescaleResult>,
    /// BPR results, one per τ.
    pub bpr: Vec<TimescaleResult>,
}

/// The τ ladder measured at `scale`: the τ = 10000 column needs enough
/// horizon to produce intervals, so small scales drop it rather than
/// report a single-interval percentile.
pub fn taus(scale: Scale) -> Vec<u64> {
    if scale.punits() >= 20_000 {
        vec![10, 100, 1000, 10_000]
    } else {
        vec![10, 100, 1000]
    }
}

/// Measures one Figure-3 cell: the full τ ladder for one scheduler.
///
/// Implemented as the canonical shard pipeline ([`cell_seed`] per seed,
/// folded by [`merge_seeds`] in seed order), so multi-process runs
/// reproduce it bit-for-bit.
pub fn cell(kind: SchedulerKind, scale: Scale) -> Vec<TimescaleResult> {
    let per_seed: Vec<Vec<Vec<f64>>> = scale
        .seeds()
        .iter()
        .map(|&seed| cell_seed(kind, scale, seed))
        .collect();
    merge_seeds(kind, scale, &per_seed)
}

/// Measures **one seed** of a Figure-3 cell — the farm's shard unit.
/// Returns the defined R_D values per τ (outer index = [`taus`] order,
/// inner = interval order).
pub fn cell_seed(kind: SchedulerKind, scale: Scale, seed: u64) -> Vec<Vec<f64>> {
    let mut st = ShortTimescale::paper(scale.punits(), vec![seed]);
    st.taus_punits = taus(scale);
    st.run_seed(kind, seed)
}

/// Folds per-seed partials (**seed order**) into the per-τ percentile
/// results, exactly as the single-process run does.
pub fn merge_seeds(
    kind: SchedulerKind,
    scale: Scale,
    per_seed: &[Vec<Vec<f64>>],
) -> Vec<TimescaleResult> {
    let mut st = ShortTimescale::paper(scale.punits(), scale.seeds());
    st.taus_punits = taus(scale);
    st.finalize(kind, per_seed)
}

/// Regenerates Figure 3.
pub fn run(scale: Scale) -> Fig3 {
    let mut results = parallel_map(vec![
        Box::new(move || cell(SchedulerKind::Wtp, scale)) as Box<dyn FnOnce() -> _ + Send>,
        Box::new(move || cell(SchedulerKind::Bpr, scale)),
    ]);
    let bpr = results.pop().expect("two jobs");
    let wtp = results.pop().expect("two jobs");
    Fig3 { wtp, bpr }
}

impl Fig3 {
    /// Renders the percentile table (target R_D = 2.0).
    pub fn render(&self) -> String {
        let mut out = banner("Figure 3: R_D percentiles vs monitoring timescale (target 2.0)");
        let mut t = Table::new([
            "sched",
            "tau (p-units)",
            "p5",
            "p25",
            "median",
            "p75",
            "p95",
            "intervals",
        ]);
        for (name, results) in [("WTP", &self.wtp), ("BPR", &self.bpr)] {
            for r in results.iter() {
                let f = r.five_number;
                t.row([
                    name.to_string(),
                    format!("{}", r.tau_punits),
                    format!("{:.2}", f[0]),
                    format!("{:.2}", f[1]),
                    format!("{:.2}", f[2]),
                    format!("{:.2}", f[3]),
                    format!("{:.2}", f[4]),
                    format!("{}", r.intervals),
                ]);
            }
        }
        out.push_str(&t.to_string());
        // Plot the interquartile band edges vs tau (log x), per scheduler.
        let edge = |rs: &[TimescaleResult], idx: usize| -> Vec<(f64, f64)> {
            rs.iter()
                .map(|r| (r.tau_punits as f64, r.five_number[idx]))
                .collect()
        };
        let (w_lo, w_hi) = (edge(&self.wtp, 1), edge(&self.wtp, 3));
        let (b_lo, b_hi) = (edge(&self.bpr, 1), edge(&self.bpr, 3));
        out.push_str("\n  interquartile band (25%..75%) of R_D vs tau (w/W = WTP, b/B = BPR):\n");
        out.push_str(
            &AsciiPlot::new(56, 14)
                .log_x()
                .series('w', &w_lo)
                .series('W', &w_hi)
                .series('b', &b_lo)
                .series('B', &b_hi)
                .hline(2.0)
                .render(),
        );
        out.push_str(
            "\npaper shape: percentile boxes tighten around 2.0 as tau grows;\n\
             WTP's interquartile range is tight even at tens of p-units,\n\
             BPR stays spread until hundreds of p-units.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxes_tighten_with_tau_and_wtp_beats_bpr() {
        let f = run(Scale::Bench);
        // IQR shrinks from the shortest to the longest measured τ for WTP.
        let first = f.wtp.first().expect("has taus");
        let last = f.wtp.last().expect("has taus");
        assert!(last.iqr() <= first.iqr() + 1e-9);
        // Medians near the target at the longest τ.
        assert!(
            (last.median() - 2.0).abs() < 0.7,
            "median {}",
            last.median()
        );
        // WTP tighter than BPR at the shortest τ (paper's headline claim).
        let bpr_first = f.bpr.first().expect("has taus");
        assert!(first.iqr() < bpr_first.iqr() * 1.25);
        assert!(f.render().contains("Figure 3"));
    }
}
