//! Table 1: the end-to-end R_D metric over the Figure-6 multi-hop
//! topology, for every combination of K ∈ {4, 8} hops, ρ ∈ {0.85, 0.95},
//! F ∈ {10, 100} packets, and R_u ∈ {50, 200} kbps.
//!
//! Paper reference: R_D ≈ 2.0–2.3 everywhere (ideal 2.00), tending to 2.0
//! as load and hop count grow, and **zero** cases of inconsistent
//! differentiation.

use pdd::netsim::{analyze, packet_time_tolerance, run_study_b_probed, StudyBConfig, StudyBResult};
use pdd::stats::Table;
use pdd::telemetry::{NoopProbe, Probe};

use crate::{banner, parallel_map, Scale};

/// One Table-1 cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Hop count K.
    pub k_hops: usize,
    /// Link utilization ρ.
    pub utilization: f64,
    /// User-flow length F (packets).
    pub flow_len: u32,
    /// User-flow rate R_u (kbps).
    pub flow_rate_kbps: f64,
    /// The analyzed outcome.
    pub result: StudyBResult,
}

/// The whole table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// All sixteen cells (paper prints (K, ρ) rows × (F, R_u) columns).
    pub cells: Vec<Cell>,
}

/// Measures one Table-1 cell: one (K, ρ, F, R_u) Study-B run.
pub fn cell_run(k: usize, rho: f64, flow_len: u32, rate: f64, scale: Scale) -> Cell {
    cell_run_probed(k, rho, flow_len, rate, scale, &mut NoopProbe)
}

/// As [`cell_run`], streaming every hop's packet events into `probe`.
pub fn cell_run_probed<P: Probe>(
    k: usize,
    rho: f64,
    flow_len: u32,
    rate: f64,
    scale: Scale,
    probe: &mut P,
) -> Cell {
    let (experiments, warmup) = scale.study_b();
    let mut cfg = StudyBConfig::paper(k, rho, flow_len, rate);
    cfg.experiments = experiments;
    cfg.warmup_secs = warmup;
    cfg.seed = 1 + k as u64 * 1000 + (rho * 100.0) as u64;
    let (records, _links) = run_study_b_probed(&cfg, probe);
    let result = analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg));
    Cell {
        k_hops: k,
        utilization: rho,
        flow_len,
        flow_rate_kbps: rate,
        result,
    }
}

/// Regenerates Table 1.
pub fn run(scale: Scale) -> Table1 {
    let mut jobs = Vec::new();
    for &k in &[4usize, 8] {
        for &rho in &[0.85, 0.95] {
            for &flow_len in &[10u32, 100] {
                for &rate in &[50.0, 200.0] {
                    jobs.push(move || cell_run(k, rho, flow_len, rate, scale));
                }
            }
        }
    }
    Table1 {
        cells: parallel_map(jobs),
    }
}

impl Table1 {
    /// Renders the paper's grid: rows (K, ρ), columns (F, R_u), entries
    /// R_D (ideal 2.00).
    pub fn render(&self) -> String {
        let mut out = banner("Table 1: end-to-end R_D (ideal 2.00), WTP, Figure-6 topology");
        let mut t = Table::new([
            "",
            "F=10 Ru=50",
            "F=10 Ru=200",
            "F=100 Ru=50",
            "F=100 Ru=200",
        ]);
        for &k in &[4usize, 8] {
            for &rho in &[0.85, 0.95] {
                let mut cells = vec![format!("K={k} rho={:.0}%", rho * 100.0)];
                for &(f, r) in &[(10u32, 50.0), (10, 200.0), (100, 50.0), (100, 200.0)] {
                    let cell = self.cell(k, rho, f, r).expect("all sixteen cells present");
                    cells.push(format!("{:.1}", cell.result.rd));
                }
                t.row(cells);
            }
        }
        out.push_str(&t.to_string());
        let inconsistent: usize = self
            .cells
            .iter()
            .map(|c| c.result.inconsistent_experiments)
            .sum();
        let strict: usize = self
            .cells
            .iter()
            .map(|c| c.result.inconsistent_strict)
            .sum();
        let total: usize = self.cells.iter().map(|c| c.result.experiments).sum();
        out.push_str(&format!(
            "\ninconsistent differentiation cases: {inconsistent} of {total} user experiments\n\
             ({strict} at strict ns resolution; the paper reports zero. 'inconsistent' =\n\
             a higher class worse than a lower class in any end-to-end delay\n\
             percentile by more than one packet transmission time per hop)\n"
        ));
        out
    }

    /// Looks up one cell.
    pub fn cell(&self, k: usize, rho: f64, flow_len: u32, rate: f64) -> Option<&Cell> {
        self.cells.iter().find(|c| {
            c.k_hops == k
                && (c.utilization - rho).abs() < 1e-9
                && c.flow_len == flow_len
                && (c.flow_rate_kbps - rate).abs() < 1e-9
        })
    }

    /// Mean R_D across all cells.
    pub fn mean_rd(&self) -> f64 {
        self.cells.iter().map(|c| c.result.rd).sum::<f64>() / self.cells.len() as f64
    }

    /// Total inconsistent experiments across all cells.
    pub fn total_inconsistent(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.result.inconsistent_experiments)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdd::netsim::Session;

    /// One small cell rather than the full grid (the grid runs in the
    /// binary/bench); asserts the paper's two headline claims.
    #[test]
    fn single_cell_close_to_two_and_consistent() {
        let mut cfg = StudyBConfig::paper(4, 0.95, 10, 200.0);
        cfg.experiments = 8;
        cfg.warmup_secs = 4.0;
        let (records, _) = Session::study_b(&cfg).run();
        let result = analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg));
        assert!(
            (result.rd - 2.0).abs() < 0.6,
            "R_D {} far from ideal 2.0",
            result.rd
        );
        assert_eq!(
            result.inconsistent_experiments, 0,
            "inconsistent differentiation observed"
        );
    }
}
