//! Figure 1: average-delay ratios between successive classes vs link
//! utilization, for WTP and BPR, at SDP spacing 2 (panel a) and 4 (panel b).
//!
//! Paper reference points: both schedulers converge to the target ratio as
//! ρ → 1; at ρ = 0.70 the ratio is ≈1.5 when it should be 2 and ≈1.7 when
//! it should be 4; WTP converges more exactly than BPR.

use pdd::qsim::Experiment;
use pdd::sched::{SchedulerKind, Sdp};
use pdd::stats::{AsciiPlot, Table};
use pdd::telemetry::{NoopProbe, Probe};

use crate::{banner, parallel_map, Scale};

/// The utilizations swept by the paper's Fig. 1 x-axis.
pub const UTILIZATIONS: [f64; 7] = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.999];

/// One (panel, utilization) measurement.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Link utilization ρ.
    pub utilization: f64,
    /// WTP's successive-class ratios d̄1/d̄2, d̄2/d̄3, d̄3/d̄4.
    pub wtp: Vec<f64>,
    /// BPR's successive-class ratios.
    pub bpr: Vec<f64>,
}

/// One panel (one SDP spacing).
#[derive(Debug, Clone)]
pub struct Fig1Panel {
    /// The spacing ratio (2 for Fig. 1a, 4 for Fig. 1b).
    pub sdp_ratio: f64,
    /// Rows, one per utilization.
    pub rows: Vec<Fig1Row>,
}

/// Both panels.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Panels a (ratio 2) and b (ratio 4).
    pub panels: Vec<Fig1Panel>,
}

/// Measures one Figure-1 cell: one SDP spacing × one utilization, both
/// schedulers, averaged over the scale's seeds.
pub fn cell(sdp_ratio: f64, utilization: f64, scale: Scale) -> Fig1Row {
    cell_probed(sdp_ratio, utilization, scale, &mut NoopProbe)
}

/// As [`cell`], streaming packet-lifecycle events into `probe`.
///
/// Implemented as the canonical shard pipeline — each seed measured by
/// [`cell_seed_probed`], partials folded by [`merge_seeds`] in seed order
/// — so a multi-process run that ships per-seed partials between workers
/// reproduces this bit-for-bit.
pub fn cell_probed<P: Probe>(
    sdp_ratio: f64,
    utilization: f64,
    scale: Scale,
    probe: &mut P,
) -> Fig1Row {
    let per_seed: Vec<Vec<Vec<f64>>> = scale
        .seeds()
        .iter()
        .map(|&seed| cell_seed_probed(sdp_ratio, utilization, scale, seed, probe))
        .collect();
    merge_seeds(utilization, &per_seed)
}

/// Measures **one seed** of a Figure-1 cell — the farm's shard unit.
/// Returns each scheduler's successive-class delay ratios for that seed,
/// `[wtp, bpr]`.
pub fn cell_seed_probed<P: Probe>(
    sdp_ratio: f64,
    utilization: f64,
    scale: Scale,
    seed: u64,
    probe: &mut P,
) -> Vec<Vec<f64>> {
    let sdp = Sdp::geometric(4, sdp_ratio).expect("static");
    let e = Experiment::paper(utilization, sdp, scale.punits(), vec![seed]);
    e.run_seed_probed(&[SchedulerKind::Wtp, SchedulerKind::Bpr], seed, probe)
        .iter()
        .map(|sr| sr.successive_ratios())
        .collect()
}

/// Folds per-seed partials (one [`cell_seed_probed`] output per seed,
/// **in seed order**) into the cell row, with the exact float arithmetic
/// of the single-process seed aggregation.
pub fn merge_seeds(utilization: f64, per_seed: &[Vec<Vec<f64>>]) -> Fig1Row {
    let kind = |ki: usize| -> Vec<Vec<f64>> { per_seed.iter().map(|s| s[ki].clone()).collect() };
    Fig1Row {
        utilization,
        wtp: pdd::qsim::average_rows(&kind(0)),
        bpr: pdd::qsim::average_rows(&kind(1)),
    }
}

/// Regenerates Figure 1.
pub fn run(scale: Scale) -> Fig1 {
    let panels = [2.0, 4.0]
        .into_iter()
        .map(|ratio| {
            let jobs: Vec<_> = UTILIZATIONS
                .iter()
                .map(|&rho| move || cell(ratio, rho, scale))
                .collect();
            Fig1Panel {
                sdp_ratio: ratio,
                rows: parallel_map(jobs),
            }
        })
        .collect();
    Fig1 { panels }
}

impl Fig1 {
    /// Renders both panels as the paper's series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for panel in &self.panels {
            out.push_str(&banner(&format!(
                "Figure 1{}: desired average-delay ratio = {:.1} (SDPs {})",
                if panel.sdp_ratio == 2.0 { "a" } else { "b" },
                panel.sdp_ratio,
                (0..4)
                    .map(|i| format!("{}", panel.sdp_ratio.powi(i) as u64))
                    .collect::<Vec<_>>()
                    .join(",")
            )));
            let mut t = Table::new([
                "util", "WTP 1/2", "WTP 2/3", "WTP 3/4", "BPR 1/2", "BPR 2/3", "BPR 3/4",
            ]);
            for row in &panel.rows {
                let mut cells = vec![format!("{:.1}%", row.utilization * 100.0)];
                cells.extend(row.wtp.iter().map(|r| format!("{r:.2}")));
                cells.extend(row.bpr.iter().map(|r| format!("{r:.2}")));
                t.row(cells);
            }
            out.push_str(&t.to_string());
            // Plot the mean successive ratio per scheduler against the
            // target line — the visual shape of the paper's figure.
            let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
            let wtp: Vec<(f64, f64)> = panel
                .rows
                .iter()
                .map(|r| (r.utilization * 100.0, mean(&r.wtp)))
                .collect();
            let bpr: Vec<(f64, f64)> = panel
                .rows
                .iter()
                .map(|r| (r.utilization * 100.0, mean(&r.bpr)))
                .collect();
            out.push_str(
                "\n  mean successive ratio vs utilization (W = WTP, B = BPR, --- = target):\n",
            );
            out.push_str(
                &AsciiPlot::new(56, 14)
                    .series('W', &wtp)
                    .series('B', &bpr)
                    .hline(panel.sdp_ratio)
                    .render(),
            );
        }
        out.push_str(
            "\npaper shape: ratios rise toward the target as utilization -> 100%;\n\
             WTP converges more exactly than BPR; at 70% the ratio undershoots\n\
             (~1.5 for target 2, ~1.7 for target 4).\n",
        );
        out
    }

    /// The highest-load row of a panel — used by tests/benches to assert
    /// convergence.
    pub fn heaviest_row(&self, panel: usize) -> &Fig1Row {
        self.panels[panel].rows.last().expect("nonempty sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_reproduces_the_shape() {
        // One bench-scale seed is too noisy at rho = 0.999 for the 0.5
        // convergence tolerance; averaging four seeds stabilizes it.
        let f = run(Scale::Custom {
            punits: 6_000,
            nseeds: 4,
        });
        assert_eq!(f.panels.len(), 2);
        assert_eq!(f.panels[0].rows.len(), UTILIZATIONS.len());
        // Convergence at the heaviest load, panel a (target 2).
        let heavy = f.heaviest_row(0);
        for r in &heavy.wtp {
            assert!((r - 2.0).abs() < 0.5, "WTP heavy-load ratio {r}");
        }
        // Undershoot at the lightest load.
        let light = &f.panels[0].rows[0];
        let mean = light.wtp.iter().sum::<f64>() / light.wtp.len() as f64;
        assert!(mean < 1.95, "expected undershoot at 70%, got {mean}");
        // Rendering mentions both panels.
        let text = f.render();
        assert!(text.contains("Figure 1a"));
        assert!(text.contains("Figure 1b"));
    }
}
