//! Monitor study: the online conformance monitor across monitoring
//! timescales.
//!
//! The paper's Figures 2–3 observation is that proportional delay
//! differentiation holds *in the long run* while short timescales wander
//! and even invert. This study makes that observation operational: a
//! [`pdd::telemetry::PddMonitor`] watches a perturbed Study-A run (live SDP
//! swap at mid-horizon, the dynamics study's scenario shape) at several
//! window widths τ and counts structured violation events.
//!
//! * **Short windows** flag constantly even in steady state — the
//!   short-timescale noise the paper warns about, now measured as a
//!   violation rate per evaluated window-pair.
//! * **Long windows** stay quiet in steady state and flag only the
//!   genuine transient after the swap, then go quiet again once the
//!   scheduler reconverges — the monitor's time-to-quiet upper-bounds the
//!   reconvergence time at that timescale.
//!
//! WTP (memoryless, fast recovery) and HPD (history-keeping, slow
//! recovery) bracket the transient behavior exactly as in the dynamics
//! study.
//!
//! Unlike the dynamics study's 2 → 4 step, the swap here targets spacing
//! **3**: spacing 4 spreads the extreme classes 1:64, which the
//! thin-class pairs never track within ±25 % at ρ = 0.95 (the
//! feasibility ceiling the ablations map), so under a 2 → 4 step the
//! monitor — correctly — never goes quiet. Spacing 3 is trackable, which
//! lets the transient/quiet signal measure the *monitor*, not the
//! feasibility boundary.

use pdd::qsim::Session;
use pdd::scenario::Scenario;
use pdd::sched::{SchedulerKind, Sdp};
use pdd::simcore::Time;
use pdd::stats::Table;
use pdd::telemetry::{MetricsRegistry, MonitorConfig};
use pdd::traffic::{LoadPlan, SizeDist, PAPER_MEAN_PACKET_BYTES};

use crate::dynamics::{start_sdp, SCHEDULERS, UTILIZATION};
use crate::{banner, parallel_map, Scale};

/// The SDP the mid-run swap switches to (spacing 3 — see the module docs
/// for why not the dynamics study's spacing 4).
pub fn swapped_sdp() -> Sdp {
    Sdp::geometric(start_sdp().num_classes(), 3.0).expect("static")
}

/// Monitoring window widths swept, in p-units (mean packet transmission
/// times) — two orders of magnitude around the dynamics study's 250.
pub const WINDOW_LADDER: [u64; 4] = [50, 250, 1000, 4000];

/// Tolerance band for the monitor, matching the dynamics study's
/// reconvergence band: violate when `|achieved/target − 1| > 0.25`.
pub const EPSILON: f64 = 0.25;

/// Minimum departures per class per window for a pair to be evaluated.
pub const MIN_SAMPLES: u64 = 5;

/// One (scheduler, window) cell's seed-aggregated monitor verdicts.
#[derive(Debug, Clone)]
pub struct MonitorRow {
    /// The scheduler measured.
    pub scheduler: SchedulerKind,
    /// Monitoring window width, in p-units.
    pub window_punits: u64,
    /// Seeds measured.
    pub seeds: usize,
    /// Windows closed, summed over seeds.
    pub windows_closed: u64,
    /// (window, pair) evaluations with enough samples, summed over seeds.
    pub pairs_evaluated: u64,
    /// Violations in windows that ended at or before the swap.
    pub steady_violations: usize,
    /// Violations in windows that ended after the swap.
    pub transient_violations: usize,
    /// Of the transient violations, how many were inversions.
    pub inversions: usize,
    /// Mean over seeds of the quiet time: the last violating window's end
    /// minus the swap instant, in p-units (0 when a seed never violates
    /// after the swap).
    pub mean_quiet_punits: f64,
    /// Largest relative ratio drift `|achieved/target − 1|` seen.
    pub max_drift: f64,
}

impl MonitorRow {
    /// Violations per evaluated window-pair — the short-timescale "noise
    /// floor" the paper's Figure 2 describes.
    pub fn violation_rate(&self) -> f64 {
        if self.pairs_evaluated == 0 {
            0.0
        } else {
            (self.steady_violations + self.transient_violations) as f64
                / self.pairs_evaluated as f64
        }
    }
}

/// The monitor configuration for one cell: start-SDP targets from tick 0,
/// retargeted to the stepped SDP at the swap instant.
pub fn monitor_config(window_punits: u64, swap_at_ticks: u64) -> MonitorConfig {
    let p = PAPER_MEAN_PACKET_BYTES as u64;
    let ratios = |sdp: &Sdp| -> Vec<f64> {
        (0..sdp.num_classes() - 1)
            .map(|i| sdp.target_ratio(i))
            .collect()
    };
    let mut cfg = MonitorConfig::new(window_punits * p, EPSILON, ratios(&start_sdp()))
        .retarget(swap_at_ticks, ratios(&swapped_sdp()));
    cfg.min_samples = MIN_SAMPLES;
    cfg
}

/// Measures one (scheduler, window) cell at `scale`: one SDP-swap run per
/// seed with the monitor attached, reduced to violation tallies.
pub fn cell(scheduler: SchedulerKind, window_punits: u64, scale: Scale) -> MonitorRow {
    cell_metered(scheduler, window_punits, scale).0
}

/// Like [`cell`], but also returns the per-seed metrics registries merged
/// into one — the production use of the registry's exact merge, and the
/// per-cell metrics artifact the orchestrator writes next to its cache
/// entry.
///
/// Implemented as the canonical shard pipeline ([`cell_seed_metered`] per
/// seed, folded by [`merge_seeds`] in seed order), so multi-process runs
/// reproduce both the row and the merged registry bit-for-bit.
pub fn cell_metered(
    scheduler: SchedulerKind,
    window_punits: u64,
    scale: Scale,
) -> (MonitorRow, MetricsRegistry) {
    let per_seed: Vec<(MonitorSeed, MetricsRegistry)> = scale
        .seeds()
        .iter()
        .map(|&seed| cell_seed_metered(scheduler, window_punits, scale, seed))
        .collect();
    merge_seeds(scheduler, window_punits, &per_seed)
}

/// One seed's monitor verdicts — the shard partial of a monitor cell.
#[derive(Debug, Clone)]
pub struct MonitorSeed {
    /// Windows closed in this seed's run.
    pub windows_closed: u64,
    /// (window, pair) evaluations with enough samples.
    pub pairs_evaluated: u64,
    /// Violations in windows that ended at or before the swap.
    pub steady_violations: usize,
    /// Violations in windows that ended after the swap.
    pub transient_violations: usize,
    /// Of the transient violations, how many were inversions.
    pub inversions: usize,
    /// This seed's quiet time: the last violating window's end minus the
    /// swap instant, in p-units (0 when nothing violates after the swap).
    pub quiet_punits: f64,
    /// Largest relative ratio drift seen in this seed.
    pub max_drift: f64,
}

/// Measures **one seed** of a monitor cell — the farm's shard unit —
/// returning the seed's verdict tallies and its metrics registry.
pub fn cell_seed_metered(
    scheduler: SchedulerKind,
    window_punits: u64,
    scale: Scale,
    seed: u64,
) -> (MonitorSeed, MetricsRegistry) {
    let p = PAPER_MEAN_PACKET_BYTES as u64;
    let horizon = Time::from_ticks(scale.punits() * p);
    let mid = (scale.punits() / 2) * p;
    let sdp = start_sdp();
    let sc = Scenario::builder()
        .set_sdp(Time::from_ticks(mid), swapped_sdp())
        .build()
        .expect("static timeline");
    let cfg = monitor_config(window_punits, mid);
    let plan = LoadPlan::new(1.0, UTILIZATION, &[0.4, 0.3, 0.2, 0.1], SizeDist::paper())
        .expect("validated parameters");
    let sources = plan.pareto_sources().expect("valid plan");

    let mut s = scheduler.build(&sdp, 1.0);
    let (registry, monitor) = Session::sources(&sources, horizon, seed, 1.0)
        .scenario(sc)
        .run_monitored(cfg, s.as_mut(), |_| {});
    let mut out = MonitorSeed {
        windows_closed: monitor.windows_closed(),
        pairs_evaluated: monitor.pairs_evaluated(),
        steady_violations: 0,
        transient_violations: 0,
        inversions: 0,
        quiet_punits: 0.0,
        max_drift: 0.0,
    };
    let mut last_post_end = mid;
    for v in monitor.violations() {
        let end = v.window_start_ticks + v.window_ticks;
        if end <= mid {
            out.steady_violations += 1;
        } else {
            out.transient_violations += 1;
            if v.kind == pdd::telemetry::ViolationKind::Inversion {
                out.inversions += 1;
            }
            last_post_end = last_post_end.max(end);
        }
        out.max_drift = out.max_drift.max(v.drift());
    }
    out.quiet_punits = (last_post_end - mid) as f64 / PAPER_MEAN_PACKET_BYTES;
    (out, registry)
}

/// Folds per-seed partials (one [`cell_seed_metered`] output per seed,
/// **in seed order**) into the cell row and merged registry with the
/// single-process aggregation's exact arithmetic.
pub fn merge_seeds(
    scheduler: SchedulerKind,
    window_punits: u64,
    per_seed: &[(MonitorSeed, MetricsRegistry)],
) -> (MonitorRow, MetricsRegistry) {
    let mut row = MonitorRow {
        scheduler,
        window_punits,
        seeds: per_seed.len(),
        windows_closed: 0,
        pairs_evaluated: 0,
        steady_violations: 0,
        transient_violations: 0,
        inversions: 0,
        mean_quiet_punits: 0.0,
        max_drift: 0.0,
    };
    let mut quiet_sum = 0.0f64;
    let mut merged = MetricsRegistry::new();
    for (seed, registry) in per_seed {
        merged.merge(registry);
        row.windows_closed += seed.windows_closed;
        row.pairs_evaluated += seed.pairs_evaluated;
        row.steady_violations += seed.steady_violations;
        row.transient_violations += seed.transient_violations;
        row.inversions += seed.inversions;
        row.max_drift = row.max_drift.max(seed.max_drift);
        quiet_sum += seed.quiet_punits;
    }
    row.mean_quiet_punits = quiet_sum / per_seed.len() as f64;
    (row, merged)
}

/// The full study: both schedulers × the window ladder.
#[derive(Debug, Clone)]
pub struct MonitorStudy {
    /// One row per (scheduler, window), scheduler-major.
    pub rows: Vec<MonitorRow>,
}

/// Regenerates the monitor study.
pub fn run(scale: Scale) -> MonitorStudy {
    let mut jobs = Vec::new();
    for &scheduler in &SCHEDULERS {
        for &window in &WINDOW_LADDER {
            jobs.push(move || cell(scheduler, window, scale));
        }
    }
    MonitorStudy {
        rows: parallel_map(jobs),
    }
}

impl MonitorStudy {
    /// Renders the ratio-drift-vs-window-size table.
    pub fn render(&self) -> String {
        let mut out = banner(
            "Monitor: conformance violations vs monitoring timescale (SDP swap 2→3 at mid-run)",
        );
        let mut t = Table::new([
            "scheduler",
            "window",
            "eval pairs",
            "steady viol",
            "viol rate",
            "transient viol",
            "quiet after",
            "max drift",
        ]);
        for row in &self.rows {
            t.row([
                row.scheduler.name().to_string(),
                format!("{} p", row.window_punits),
                row.pairs_evaluated.to_string(),
                row.steady_violations.to_string(),
                format!("{:.3}", row.violation_rate()),
                format!("{} ({} inv)", row.transient_violations, row.inversions),
                format!("{:.0} p", row.mean_quiet_punits),
                format!("{:.2}", row.max_drift),
            ]);
        }
        out.push_str(&t.to_string());
        out.push_str(
            "\nEach run swaps the SDP spacing 2 → 3 at mid-horizon (ρ = 0.95). A\n\
             (window, pair) violates when the achieved delay ratio drifts more than\n\
             ±25 % from the target in force at the window start; steady = windows\n\
             ending before the swap, transient = after. Short windows flag\n\
             constantly (the paper's short-timescale noise); long windows flag only\n\
             the genuine transient, and \"quiet after\" — the last violating\n\
             window's end minus the swap — upper-bounds reconvergence at that\n\
             timescale.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: Scale = Scale::Custom {
        punits: 20_000,
        nseeds: 2,
    };

    #[test]
    fn short_windows_flag_steady_state_noise() {
        let row = cell(SchedulerKind::Wtp, 50, TEST_SCALE);
        assert!(row.pairs_evaluated > 0);
        assert!(
            row.steady_violations > 0,
            "50-p windows should catch short-timescale wander: {row:?}"
        );
    }

    #[test]
    fn monitor_flags_the_transient_then_goes_quiet() {
        // At the reconvergence timescale (long windows) the swap produces
        // violations, then the monitor falls silent once the scheduler
        // tracks the new targets.
        let row = cell(SchedulerKind::Wtp, 4000, TEST_SCALE);
        assert!(
            row.transient_violations > 0,
            "the swap transient should violate: {row:?}"
        );
        let half = (TEST_SCALE.punits() / 2) as f64;
        assert!(
            row.mean_quiet_punits < 0.9 * half,
            "monitor never went quiet: {row:?}"
        );
    }

    #[test]
    fn long_windows_are_quieter_than_short_ones() {
        let short = cell(SchedulerKind::Wtp, 50, TEST_SCALE);
        let long = cell(SchedulerKind::Wtp, 4000, TEST_SCALE);
        assert!(
            long.violation_rate() < short.violation_rate(),
            "short {short:?} vs long {long:?}"
        );
    }

    #[test]
    fn metered_cell_merges_registries_across_seeds() {
        let (row, reg) = cell_metered(SchedulerKind::Wtp, 250, TEST_SCALE);
        assert_eq!(row.seeds, 2);
        // Both seeds' departures land in the one merged registry.
        let departures: u64 = (0..4).map(|c| reg.class_total(c).departures).sum();
        assert!(departures > 0, "merged registry is empty");
        assert!(reg.to_json().contains("propdiff-metrics-v1"));
    }

    #[test]
    fn render_lists_every_row() {
        let study = MonitorStudy {
            rows: vec![cell(SchedulerKind::Wtp, 250, TEST_SCALE)],
        };
        let s = study.render();
        assert!(s.contains("WTP") && s.contains("250 p"));
        assert!(s.contains("quiet after"));
    }
}
