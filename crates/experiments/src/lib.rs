//! # experiments — the table/figure regeneration harness
//!
//! One module per experiment in the paper's evaluation; each exposes a
//! `run(scale)` returning structured results plus a `render()`d report that
//! prints the same rows/series the paper shows, and per-cell `cell(...)`
//! functions that the orchestrator crate schedules, caches, and merges.
//! The bench crate regenerates the same experiments at [`Scale::Bench`];
//! the `propdiff-run` and `all_experiments` binaries live in the
//! orchestrator crate.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`fig1`] | Fig. 1a/1b — delay ratios vs utilization |
//! | [`fig2`] | Fig. 2a/2b — delay ratios vs class load distribution |
//! | [`fig3`] | Fig. 3 — R_D percentiles vs monitoring timescale |
//! | [`fig45`] | Figs. 4–5 — microscopic views, BPR sawtooth vs WTP |
//! | [`table1`] | Table 1 — end-to-end R_D over the Fig.-6 topology |
//! | [`ablations`] | scheduler shoot-out, feasibility region, starvation, moderate-load undershoot |
//! | [`dynamics`] | reconvergence after live perturbations (SDP step, link flap) |
//! | [`rank`] | LSTF universality probe — static-slack LSTF vs WTP over the Fig.-1 grid |
//! | [`monitor`] | online conformance monitor — violation rate vs monitoring timescale |
//! | [`mesh`] | datacenter fat-tree via link-level decomposition — PDD at fabric scale |
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod dynamics;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod mesh;
pub mod monitor;
pub mod rank;
pub mod table1;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full fidelity, close to the paper's own run lengths (release mode).
    Paper,
    /// A few× smaller, for interactive use.
    Quick,
    /// Small enough for a Criterion iteration.
    Bench,
    /// User-chosen horizon and seed count (`--punits N --seeds K`).
    Custom {
        /// Study-A horizon in p-units.
        punits: u64,
        /// Number of seeds to average over.
        nseeds: u16,
    },
}

impl Scale {
    /// Parses the scale from argv: `--paper`, `--bench`, explicit
    /// `--punits N` / `--seeds K` overrides, or the `Quick` default (so the
    /// binaries finish in seconds).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let get = |key: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == key)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        let base = if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--bench") {
            Scale::Bench
        } else {
            Scale::Quick
        };
        match (get("--punits"), get("--seeds")) {
            (None, None) => base,
            (p, k) => Scale::Custom {
                punits: p.unwrap_or(base.punits()).max(100),
                nseeds: k.unwrap_or(base.seeds().len() as u64).clamp(1, 1000) as u16,
            },
        }
    }

    /// Study-A horizon in p-units.
    pub fn punits(self) -> u64 {
        match self {
            Scale::Paper => 90_000,
            Scale::Quick => 30_000,
            Scale::Bench => 6_000,
            Scale::Custom { punits, .. } => punits,
        }
    }

    /// Study-A seeds (the paper averages ten runs).
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Paper => (1..=10).collect(),
            Scale::Quick => (1..=4).collect(),
            Scale::Bench => vec![1],
            Scale::Custom { nseeds, .. } => (1..=nseeds as u64).collect(),
        }
    }

    /// Study-B `(experiments M, warmup seconds)`.
    pub fn study_b(self) -> (u32, f64) {
        match self {
            Scale::Paper => (100, 100.0),
            Scale::Quick => (30, 20.0),
            Scale::Bench => (6, 4.0),
            // Scale the experiment count with the requested horizon.
            Scale::Custom { punits, .. } => {
                let m = (punits / 1_000).clamp(4, 200) as u32;
                (m, (m as f64 / 2.0).clamp(4.0, 100.0))
            }
        }
    }
}

/// Prints a titled section banner.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Runs `jobs` closures on up to `std::thread::available_parallelism()`
/// OS threads and returns their results in order.
///
/// See [`parallel_map_on`] for the scheduling discipline.
pub fn parallel_map<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    parallel_map_on(jobs, workers)
}

/// Runs `jobs` on exactly `workers` OS threads (clamped to the job count)
/// and returns their results in input order.
///
/// Scheduling is work-stealing from a shared injector: idle workers claim
/// the next unstarted job, so a few heavy jobs (a K=8 Table-1 cell next to
/// a bench-scale feasibility probe) never serialize behind a static chunk
/// assignment. Results are tagged with their input index and sorted before
/// returning, so the output order — and everything downstream, including
/// the orchestrator's merged JSON — is independent of the worker count.
pub fn parallel_map_on<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::Mutex;

    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let results = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Claim the next job while holding the lock, run it outside.
                let next = queue.lock().expect("worker thread panicked").next();
                let Some((i, job)) = next else { break };
                let out = (i, job());
                results.lock().expect("worker thread panicked").push(out);
            });
        }
    });
    let mut results = results.into_inner().expect("worker thread panicked");
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = parallel_map(jobs);
        assert_eq!(got, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_edge_sizes() {
        // Empty, single, and a count that doesn't divide evenly by any
        // plausible worker count.
        assert_eq!(parallel_map(Vec::<fn() -> u32>::new()), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![|| 7u32]), vec![7]);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..23usize)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(parallel_map(jobs), (1..=23).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_on_is_order_stable_across_worker_counts() {
        let make = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..17usize)
                .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
                .collect()
        };
        let want: Vec<usize> = (0..17).map(|i| i * 3).collect();
        for workers in [1, 2, 5, 32] {
            assert_eq!(parallel_map_on(make(), workers), want, "workers={workers}");
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Paper.punits() > Scale::Quick.punits());
        assert!(Scale::Quick.punits() > Scale::Bench.punits());
        assert!(Scale::Paper.seeds().len() >= Scale::Quick.seeds().len());
    }

    #[test]
    fn custom_scale_honors_overrides() {
        let s = Scale::Custom {
            punits: 12_345,
            nseeds: 3,
        };
        assert_eq!(s.punits(), 12_345);
        assert_eq!(s.seeds(), vec![1, 2, 3]);
        let (m, warmup) = s.study_b();
        assert!(m >= 4 && warmup >= 4.0);
    }
}
