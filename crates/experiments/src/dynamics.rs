//! Dynamics study: how fast the proportional model *reconverges* after a
//! live perturbation.
//!
//! The paper evaluates stationary workloads; this study perturbs a running
//! Study-A link mid-flight through the [`Session`] scenario axis and
//! measures, with [`pdd::stats::reconvergence_times`], how long each
//! successive-class delay ratio d̄ᵢ/d̄ᵢ₊₁ takes to re-enter (and stay
//! inside) a tolerance band around its target:
//!
//! * **SDP step** — the operator doubles the spacing (2 → 4) while the
//!   queue is backlogged. WTP's recovery is a pure short-timescale
//!   effect: its priorities are a function of the *current* waiting
//!   times, so the new ratios emerge within a few busy periods. HPD adds
//!   a long-run-average (PAD) term whose pre-step history keeps steering
//!   the priorities until new departures dilute it.
//! * **Link flap** — the link holds (buffers, no service) for a short
//!   outage, then restores. Reconvergence is measured from the
//!   restoration: the accumulated backlog compresses the class delays
//!   together (one huge common wait), and the ratios return to target
//!   only as the backlog drains — a capacity-limited transient that is
//!   nearly scheduler-independent.

use pdd::qsim::Session;
use pdd::scenario::{DownPolicy, Scenario};
use pdd::sched::{SchedulerKind, Sdp};
use pdd::simcore::Time;
use pdd::stats::{reconvergence_times, ReconvergenceConfig, Table};
use pdd::traffic::{LoadPlan, SizeDist, PAPER_MEAN_PACKET_BYTES};

use crate::{banner, parallel_map, Scale};

/// Utilization for all dynamics cells — high enough that the schedulers
/// track their targets tightly once converged.
pub const UTILIZATION: f64 = 0.95;

/// The schedulers compared: memoryless WTP vs the history-keeping HPD.
pub const SCHEDULERS: [SchedulerKind; 2] = [SchedulerKind::Wtp, SchedulerKind::Hpd];

/// Window width for the reconvergence metric, in p-units (mean packet
/// transmission times). Wide enough that the 10 %-share class sees tens
/// of departures per window at ρ = 0.95.
pub const WINDOW_PUNITS: u64 = 250;

/// The perturbation a dynamics cell injects at mid-horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Live SDP swap: spacing 2 → spacing 4, same four classes.
    SdpStep,
    /// Link outage (hold policy) for ~1 % of the horizon, then restore.
    LinkFlap,
}

/// Both perturbations, in canonical order.
pub const PERTURBATIONS: [Perturbation; 2] = [Perturbation::SdpStep, Perturbation::LinkFlap];

impl Perturbation {
    /// Stable slug for ids, params, and tables.
    pub fn name(self) -> &'static str {
        match self {
            Perturbation::SdpStep => "sdp-step",
            Perturbation::LinkFlap => "link-flap",
        }
    }
}

/// One (scheduler, perturbation) cell's seed-aggregated reconvergence.
#[derive(Debug, Clone)]
pub struct DynamicsRow {
    /// The scheduler measured.
    pub scheduler: SchedulerKind,
    /// The perturbation injected.
    pub perturbation: Perturbation,
    /// Seeds measured.
    pub seeds: usize,
    /// Per successive class pair: how many seeds settled within the
    /// horizon.
    pub settled: Vec<usize>,
    /// Per successive class pair: mean settling time over the settled
    /// seeds, in p-units; `None` when no seed settled.
    pub mean_settle_punits: Vec<Option<f64>>,
}

impl DynamicsRow {
    /// Mean settling time across all pairs that settled in at least one
    /// seed — the scalar used to compare schedulers.
    pub fn headline_punits(&self) -> Option<f64> {
        let vals: Vec<f64> = self.mean_settle_punits.iter().flatten().copied().collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// The SDP every run starts under (the paper's default, spacing 2).
pub fn start_sdp() -> Sdp {
    Sdp::paper_default()
}

/// The SDP an [`Perturbation::SdpStep`] switches to (spacing 4).
pub fn stepped_sdp() -> Sdp {
    Sdp::geometric(start_sdp().num_classes(), 4.0).expect("static")
}

/// The scenario for one cell plus the instant reconvergence is measured
/// from (ticks) and the post-perturbation target ratios.
fn timeline(perturbation: Perturbation, scale: Scale) -> (Scenario, u64, Vec<f64>) {
    let p = PAPER_MEAN_PACKET_BYTES as u64;
    let mid = (scale.punits() / 2) * p;
    let targets = |sdp: &Sdp| -> Vec<f64> {
        (0..sdp.num_classes() - 1)
            .map(|i| sdp.target_ratio(i))
            .collect()
    };
    match perturbation {
        Perturbation::SdpStep => {
            let sdp = stepped_sdp();
            let targets = targets(&sdp);
            let sc = Scenario::builder()
                .set_sdp(Time::from_ticks(mid), sdp)
                .build()
                .expect("static timeline");
            (sc, mid, targets)
        }
        Perturbation::LinkFlap => {
            // ~1 % of the horizon down; at ρ = 0.95 the backlog drains in
            // ~19× the outage, well inside the remaining half-horizon.
            let outage = (scale.punits() / 100).max(20) * p;
            let sc = Scenario::builder()
                .link_down(Time::from_ticks(mid), 0, DownPolicy::Hold)
                .link_up(Time::from_ticks(mid + outage), 0)
                .build()
                .expect("static timeline");
            (sc, mid + outage, targets(&start_sdp()))
        }
    }
}

/// Measures one (scheduler, perturbation) cell at `scale`: one perturbed
/// Study-A run per seed, reduced to per-pair reconvergence times.
///
/// Implemented as the canonical shard pipeline ([`cell_seed`] per seed,
/// folded by [`merge_seeds`] in seed order), so multi-process runs
/// reproduce it bit-for-bit.
pub fn cell(scheduler: SchedulerKind, perturbation: Perturbation, scale: Scale) -> DynamicsRow {
    let per_seed: Vec<Vec<Option<u64>>> = scale
        .seeds()
        .iter()
        .map(|&seed| cell_seed(scheduler, perturbation, scale, seed))
        .collect();
    merge_seeds(scheduler, perturbation, &per_seed)
}

/// Measures **one seed** of a dynamics cell — the farm's shard unit.
/// Returns per successive class pair the settling time in ticks since the
/// perturbation, or `None` if that pair never settled in this seed.
pub fn cell_seed(
    scheduler: SchedulerKind,
    perturbation: Perturbation,
    scale: Scale,
    seed: u64,
) -> Vec<Option<u64>> {
    let p = PAPER_MEAN_PACKET_BYTES as u64;
    let horizon = Time::from_ticks(scale.punits() * p);
    let (sc, perturb_at, targets) = timeline(perturbation, scale);
    let sdp = start_sdp();
    let n = sdp.num_classes();
    let cfg = ReconvergenceConfig {
        window_ticks: WINDOW_PUNITS * p,
        epsilon: 0.25,
        settle_windows: 3,
    };
    let plan = LoadPlan::new(1.0, UTILIZATION, &[0.4, 0.3, 0.2, 0.1], SizeDist::paper())
        .expect("validated parameters");
    let sources = plan.pareto_sources().expect("valid plan");
    let mut samples: Vec<(u64, usize, f64)> = Vec::new();
    let mut s = scheduler.build(&sdp, 1.0);
    Session::sources(&sources, horizon, seed, 1.0)
        .scenario(sc)
        .run(s.as_mut(), |d| {
            samples.push((d.finish.ticks(), d.packet.class as usize, d.wait().as_f64()));
        });
    reconvergence_times(&samples, n, perturb_at, &targets, &cfg)
}

/// Folds per-seed partials (one [`cell_seed`] output per seed, **in seed
/// order**) into the cell row with the single-process aggregation's exact
/// arithmetic.
pub fn merge_seeds(
    scheduler: SchedulerKind,
    perturbation: Perturbation,
    per_seed: &[Vec<Option<u64>>],
) -> DynamicsRow {
    let n = start_sdp().num_classes();
    let mut settled = vec![0usize; n - 1];
    let mut sums = vec![0.0f64; n - 1];
    for times in per_seed {
        for (i, t) in times.iter().enumerate() {
            if let Some(t) = t {
                settled[i] += 1;
                sums[i] += *t as f64 / PAPER_MEAN_PACKET_BYTES;
            }
        }
    }
    let mean_settle_punits = sums
        .iter()
        .zip(&settled)
        .map(|(&sum, &k)| (k > 0).then(|| sum / k as f64))
        .collect();
    DynamicsRow {
        scheduler,
        perturbation,
        seeds: per_seed.len(),
        settled,
        mean_settle_punits,
    }
}

/// The full study: both schedulers × both perturbations.
#[derive(Debug, Clone)]
pub struct Dynamics {
    /// One row per (scheduler, perturbation), scheduler-major.
    pub rows: Vec<DynamicsRow>,
}

/// Regenerates the dynamics study.
pub fn run(scale: Scale) -> Dynamics {
    let mut jobs = Vec::new();
    for &scheduler in &SCHEDULERS {
        for &perturbation in &PERTURBATIONS {
            jobs.push(move || cell(scheduler, perturbation, scale));
        }
    }
    Dynamics {
        rows: parallel_map(jobs),
    }
}

impl Dynamics {
    /// Renders the reconvergence table.
    pub fn render(&self) -> String {
        let mut out = banner("Dynamics: reconvergence after live perturbations (ρ = 0.95)");
        let mut t = Table::new(["scheduler", "perturbation", "1/2", "2/3", "3/4", "mean"]);
        for row in &self.rows {
            let mut cells = vec![
                row.scheduler.name().to_string(),
                row.perturbation.name().to_string(),
            ];
            for (mean, &k) in row.mean_settle_punits.iter().zip(&row.settled) {
                cells.push(match mean {
                    Some(m) => format!("{m:.0} p ({k}/{})", row.seeds),
                    None => "—".into(),
                });
            }
            cells.push(match row.headline_punits() {
                Some(m) => format!("{m:.0} p"),
                None => "—".into(),
            });
            t.row(cells);
        }
        out.push_str(&t.to_string());
        out.push_str(
            "\nSettling time from the perturbation to the start of the first run of\n\
             3 consecutive 250-p-unit windows whose achieved ratio stays within\n\
             ±25 % of target; (k/N) = seeds that settled within the horizon.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: Scale = Scale::Custom {
        punits: 20_000,
        nseeds: 2,
    };

    #[test]
    fn wtp_settles_after_an_sdp_step() {
        let row = cell(SchedulerKind::Wtp, Perturbation::SdpStep, TEST_SCALE);
        assert_eq!(row.seeds, 2);
        assert!(
            row.settled.iter().any(|&k| k > 0),
            "no pair settled: {row:?}"
        );
        assert!(row.headline_punits().is_some());
    }

    #[test]
    fn link_flap_recovers_to_the_unchanged_targets() {
        let row = cell(SchedulerKind::Wtp, Perturbation::LinkFlap, TEST_SCALE);
        assert!(
            row.settled.iter().any(|&k| k > 0),
            "no pair settled after the flap: {row:?}"
        );
    }

    #[test]
    fn render_mentions_both_schedulers() {
        let d = Dynamics {
            rows: vec![
                DynamicsRow {
                    scheduler: SchedulerKind::Wtp,
                    perturbation: Perturbation::SdpStep,
                    seeds: 2,
                    settled: vec![2, 1, 0],
                    mean_settle_punits: vec![Some(500.0), Some(1000.0), None],
                },
                DynamicsRow {
                    scheduler: SchedulerKind::Hpd,
                    perturbation: Perturbation::SdpStep,
                    seeds: 2,
                    settled: vec![0, 0, 0],
                    mean_settle_punits: vec![None, None, None],
                },
            ],
        };
        let s = d.render();
        assert!(s.contains("WTP") && s.contains("HPD"));
        assert!(s.contains("500 p"));
    }
}
