//! Ablations: the design-choice studies DESIGN.md calls out.
//!
//! * [`schedulers`] — every scheduler on identical traffic: shows why §2.1
//!   rejects strict priority and capacity differentiation, and how the PAD
//!   and HPD extensions repair WTP's moderate-load undershoot.
//! * [`feasibility`] — maps the feasible DDP region of Eq. (7) by sweeping
//!   spacing ratios and utilizations.
//! * [`starvation`] — Proposition 2 demonstrated empirically: the SDP-ratio
//!   threshold at which a high-class burst starves lower classes.
//! * [`moderate_load`] — quantifies the ρ = 0.70 "ratio ≈ 1.5 when it
//!   should be 2" observation across schedulers.

use pdd::model::{Ddp, ProportionalModel};
use pdd::qsim::Experiment;
use pdd::sched::{Packet, Scheduler, SchedulerKind, Sdp, Wtp};
use pdd::simcore::{Dur, Time};
use pdd::stats::Table;
use pdd::traffic::Trace;

use crate::{banner, parallel_map, Scale};

/// Result of the scheduler shoot-out.
#[derive(Debug, Clone)]
pub struct SchedulerShootout {
    /// `(scheduler, per-pair ratios, mean deviation from target)` at
    /// ρ = 0.95, target spacing 2.
    pub rows: Vec<(SchedulerKind, Vec<f64>, f64)>,
}

/// Runs every scheduler on the same traces (ρ = 0.95, SDPs 1,2,4,8).
pub fn schedulers(scale: Scale) -> SchedulerShootout {
    let e = Experiment::paper(0.95, Sdp::paper_default(), scale.punits(), scale.seeds());
    let kinds = SchedulerKind::ALL;
    let results = e.run_many(&kinds);
    SchedulerShootout {
        rows: kinds
            .iter()
            .zip(results)
            .map(|(&k, r)| (k, r.ratios.clone(), r.ratio_deviation()))
            .collect(),
    }
}

impl SchedulerShootout {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut out =
            banner("Ablation: all schedulers on identical traffic (rho=0.95, target ratio 2)");
        let mut t = Table::new([
            "scheduler",
            "d1/d2",
            "d2/d3",
            "d3/d4",
            "mean |dev| from 2.0",
        ]);
        for (k, ratios, dev) in &self.rows {
            let mut cells = vec![k.name().to_string()];
            cells.extend(ratios.iter().map(|r| format!("{r:.2}")));
            cells.push(format!("{:.1}%", dev * 100.0));
            t.row(cells);
        }
        out.push_str(&t.to_string());
        out.push_str(
            "\nreading: FCFS ~1.0 (no differentiation); Strict is huge and\n\
             untunable; WFQ/SCFQ/DRR ratios drift with load (capacity, not\n\
             delay, differentiation); Additive spaces differences, not ratios;\n\
             WTP/BPR approximate 2.0; PAD/HPD (extensions) pin it.\n",
        );
        out
    }

    /// Deviation of one scheduler.
    pub fn deviation(&self, kind: SchedulerKind) -> f64 {
        self.rows
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, _, d)| *d)
            .expect("kind present")
    }
}

/// One feasibility-region probe.
#[derive(Debug, Clone)]
pub struct FeasibilityProbe {
    /// Utilization of the probed trace.
    pub utilization: f64,
    /// DDP spacing ratio probed.
    pub spacing: f64,
    /// Whether Eq. (7) admits the Eq. (6) targets.
    pub feasible: bool,
    /// Worst subset slack (negative = violated).
    pub worst_slack: f64,
}

/// The spacing ratios swept by the feasibility ablation.
pub const FEASIBILITY_SPACINGS: [f64; 6] = [1.5, 2.0, 4.0, 8.0, 16.0, 32.0];

/// The utilizations swept by the feasibility ablation.
pub const FEASIBILITY_UTILS: [f64; 3] = [0.75, 0.85, 0.95];

/// Probes one (utilization, spacing) point of the feasibility region.
pub fn feasibility_cell(rho: f64, spacing: f64, scale: Scale) -> FeasibilityProbe {
    let e = Experiment::paper(
        rho,
        Sdp::paper_default(),
        scale.punits().min(30_000),
        vec![11],
    );
    let trace: Trace = e.trace_for_seed(11);
    let arrivals: Vec<(u64, u8, u32)> = trace
        .entries()
        .iter()
        .map(|t| (t.at.ticks(), t.class, t.size))
        .collect();
    let model = ProportionalModel::new(Ddp::geometric(4, spacing).expect("static"));
    let report = model.check_feasibility(&arrivals, 1.0);
    let worst = report
        .checks
        .iter()
        .map(|c| c.slack())
        .fold(f64::INFINITY, f64::min);
    FeasibilityProbe {
        utilization: rho,
        spacing,
        feasible: report.feasible(),
        worst_slack: worst,
    }
}

/// Sweeps DDP spacing × utilization and checks Eq. (7) on a recorded trace.
pub fn feasibility(scale: Scale) -> Vec<FeasibilityProbe> {
    let mut jobs = Vec::new();
    for &rho in &FEASIBILITY_UTILS {
        for &r in &FEASIBILITY_SPACINGS {
            jobs.push(move || feasibility_cell(rho, r, scale));
        }
    }
    parallel_map(jobs)
}

/// Renders the feasibility sweep.
pub fn render_feasibility(probes: &[FeasibilityProbe]) -> String {
    let mut out =
        banner("Ablation: Eq. (7) feasibility of Eq. (6) targets (4 classes, 40/30/20/10 loads)");
    let mut t = Table::new(["util", "spacing", "feasible", "worst subset slack"]);
    for p in probes {
        t.row([
            format!("{:.0}%", p.utilization * 100.0),
            format!("{:.1}", p.spacing),
            if p.feasible {
                "yes".into()
            } else {
                "NO".to_string()
            },
            format!("{:+.3}", p.worst_slack),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nreading: the Fig.1/Fig.2 operating points (spacing 2 and 4) are\n\
         feasible; very wide spacings push the top class below its FCFS\n\
         lower bound and leave the feasible region.\n",
    );
    out
}

/// One starvation probe: does a class-2 burst fully starve class 1?
#[derive(Debug, Clone)]
pub struct StarvationProbe {
    /// SDP ratio s2/s1.
    pub sdp_ratio: f64,
    /// 1 − R/R₁ for the constructed burst.
    pub condition_lhs: f64,
    /// s1/s2 (Proposition 2 threshold).
    pub condition_rhs: f64,
    /// Whether Proposition 2 predicts starvation.
    pub predicted: bool,
    /// Whether the simulation starved the low class for the whole burst.
    pub observed: bool,
}

/// Reproduces Proposition 2 across SDP ratios with a burst at peak rate
/// R₁ = 2R.
pub fn starvation() -> Vec<StarvationProbe> {
    let burst = 60u64;
    [1.2, 1.5, 1.9, 2.0, 2.1, 3.0, 4.0, 8.0]
        .into_iter()
        .map(|ratio| {
            let mut s = Wtp::new(Sdp::new(&[1.0, ratio]).expect("static"));
            // Victim arrives at t0 = 0; burst packets at R1 = 2R (gap 50
            // ticks for 100-tick services).
            s.enqueue(Packet::new(0, 0, 100, Time::ZERO));
            for k in 0..burst {
                s.enqueue(Packet::new(k + 1, 1, 100, Time::from_ticks(50 * k)));
            }
            let mut now = Time::ZERO;
            let mut victim_position = 0usize;
            let mut idx = 0usize;
            while let Some(p) = s.dequeue(now) {
                if p.class == 0 {
                    victim_position = idx;
                }
                idx += 1;
                now += Dur::from_ticks(100);
            }
            let condition_lhs = 0.5; // 1 − R/R1 with R1 = 2R
            let condition_rhs = 1.0 / ratio;
            StarvationProbe {
                sdp_ratio: ratio,
                condition_lhs,
                condition_rhs,
                predicted: condition_lhs > condition_rhs,
                observed: victim_position == burst as usize,
            }
        })
        .collect()
}

/// Renders the starvation probes.
pub fn render_starvation(probes: &[StarvationProbe]) -> String {
    let mut out = banner("Ablation: Proposition 2 — WTP short-term starvation (R1 = 2R)");
    let mut t = Table::new(["s2/s1", "1-R/R1", "s1/s2", "predicted", "observed"]);
    for p in probes {
        t.row([
            format!("{:.1}", p.sdp_ratio),
            format!("{:.2}", p.condition_lhs),
            format!("{:.2}", p.condition_rhs),
            if p.predicted { "starve" } else { "-" }.to_string(),
            if p.observed { "starve" } else { "-" }.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nreading: for s2/s1 > 2 = 1/(1-R/R1), an arbitrarily long class-2\n\
         burst is fully serviced before a class-1 packet that arrived with\n\
         its first packet — exactly Proposition 2's threshold.\n",
    );
    out
}

/// Moderate-load undershoot comparison.
#[derive(Debug, Clone)]
pub struct ModerateLoad {
    /// `(utilization, rows)` where each row is `(scheduler, mean ratio)`.
    pub points: Vec<(f64, Vec<(SchedulerKind, f64)>)>,
}

/// The utilizations swept by the moderate-load ablation.
pub const MODERATE_LOAD_UTILS: [f64; 4] = [0.70, 0.80, 0.90, 0.95];

/// Measures one moderate-load point: all four schedulers at one
/// utilization, returning `(scheduler, mean successive ratio)` rows.
pub fn moderate_load_cell(rho: f64, scale: Scale) -> (f64, Vec<(SchedulerKind, f64)>) {
    let kinds = [
        SchedulerKind::Wtp,
        SchedulerKind::Bpr,
        SchedulerKind::Pad,
        SchedulerKind::Hpd,
    ];
    let e = Experiment::paper(rho, Sdp::paper_default(), scale.punits(), scale.seeds());
    let results = e.run_many(&kinds);
    let rows = kinds
        .iter()
        .zip(results)
        .map(|(&k, r)| (k, r.ratios.iter().sum::<f64>() / r.ratios.len() as f64))
        .collect();
    (rho, rows)
}

/// Quantifies the moderate-load undershoot for WTP/BPR and shows the
/// PAD/HPD extensions holding the target (target ratio 2).
pub fn moderate_load(scale: Scale) -> ModerateLoad {
    let jobs: Vec<_> = MODERATE_LOAD_UTILS
        .into_iter()
        .map(|rho| move || moderate_load_cell(rho, scale))
        .collect();
    ModerateLoad {
        points: parallel_map(jobs),
    }
}

impl ModerateLoad {
    /// Renders the undershoot table.
    pub fn render(&self) -> String {
        let mut out =
            banner("Ablation: moderate-load accuracy (mean successive ratio, target 2.0)");
        let mut t = Table::new(["util", "WTP", "BPR", "PAD", "HPD"]);
        for (rho, rows) in &self.points {
            let mut cells = vec![format!("{:.0}%", rho * 100.0)];
            cells.extend(rows.iter().map(|(_, r)| format!("{r:.2}")));
            t.row(cells);
        }
        out.push_str(&t.to_string());
        out.push_str(
            "\nreading: WTP/BPR undershoot at 70-80% (the paper's \"about 1.5\n\
             when it should be 2\"); PAD holds the long-term target at every\n\
             load, HPD sits between — the §7 open problem and its later fix.\n",
        );
        out
    }
}

/// PLR vs tail-drop loss differentiation on an overloaded lossy link.
#[derive(Debug, Clone)]
pub struct PlrStudy {
    /// `(sigma_ratio, plr_loss_ratio, taildrop_loss_ratio, delay_ratio)`
    /// rows for a 2-class WTP link at offered load ≈ 1.3.
    pub rows: Vec<(f64, f64, f64, f64)>,
}

/// The loss-spacing targets σ₁/σ₂ swept by the PLR ablation.
pub const PLR_SIGMAS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Measures one PLR point: `(sigma_ratio, plr_loss_ratio,
/// taildrop_loss_ratio, delay_ratio)` for one target loss spacing.
pub fn plr_cell(sigma_ratio: f64, scale: Scale) -> (f64, f64, f64, f64) {
    use pdd::qsim::{LossMode, Session};
    use pdd::sched::PlrDropper;
    use pdd::simcore::Time as SimTime;
    use pdd::traffic::{ClassSource, IatDist, SizeDist};

    let horizon = SimTime::from_ticks(scale.punits().max(4_000) * 100);
    let make_trace = |seed| {
        let mut sources = vec![
            ClassSource::new(
                0,
                IatDist::paper_pareto(154.0).expect("static"),
                SizeDist::fixed(100),
            ),
            ClassSource::new(
                1,
                IatDist::paper_pareto(154.0).expect("static"),
                SizeDist::fixed(100),
            ),
        ];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        Trace::generate(&mut sources, horizon, &mut rng)
    };
    let trace = make_trace(13);
    let sdp = Sdp::new(&[1.0, 2.0]).expect("static");
    let mut s = SchedulerKind::Wtp.build(&sdp, 1.0);
    let plr_mode = LossMode::Plr(PlrDropper::new(&[sigma_ratio, 1.0]).expect("static"));
    let r_plr = Session::trace(&trace, 1.0)
        .lossy(6_000, plr_mode)
        .run(s.as_mut());
    let mut s2 = SchedulerKind::Wtp.build(&sdp, 1.0);
    let r_tail = Session::trace(&trace, 1.0)
        .lossy(6_000, LossMode::TailDrop)
        .run(s2.as_mut());
    (
        sigma_ratio,
        r_plr.loss_ratio(0, 1).unwrap_or(f64::NAN),
        r_tail.loss_ratio(0, 1).unwrap_or(f64::NAN),
        r_plr.delays[0].mean() / r_plr.delays[1].mean(),
    )
}

/// Runs the §7 coupled delay+loss extension: WTP spaces the delays while
/// the PLR dropper spaces the losses; tail-drop is the uncontrolled
/// baseline.
pub fn plr(scale: Scale) -> PlrStudy {
    let jobs: Vec<_> = PLR_SIGMAS
        .into_iter()
        .map(|sigma_ratio| move || plr_cell(sigma_ratio, scale))
        .collect();
    PlrStudy {
        rows: parallel_map(jobs),
    }
}

/// Renders the PLR study.
pub fn render_plr(study: &PlrStudy) -> String {
    let mut out = banner(
        "Ablation: proportional loss differentiation (2 classes, WTP, offered load 1.3, 6 kB buffer)",
    );
    let mut t = Table::new([
        "target sigma1/sigma2",
        "PLR loss ratio",
        "tail-drop loss ratio",
        "PLR delay ratio (target 2)",
    ]);
    for (sigma, plr, tail, delay) in &study.rows {
        t.row([
            format!("{sigma:.1}"),
            format!("{plr:.2}"),
            format!("{tail:.2}"),
            format!("{delay:.2}"),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nreading: the PLR push-out pins the class loss-fraction ratio to the\n\
         chosen sigma spacing while tail-drop leaves it near 1 (uncontrolled);\n\
         WTP keeps spacing the queueing delays on the same lossy link — the\n\
         first step toward the paper's coupled delay+loss future work.\n",
    );
    out
}

/// The additive differentiation model (Eq. 3) measured at heavy load.
#[derive(Debug, Clone)]
pub struct AdditiveStudy {
    /// Offsets s_i used (ticks).
    pub offsets: Vec<f64>,
    /// Measured class mean delays (ticks).
    pub delays: Vec<f64>,
    /// Measured successive differences d_i − d_{i+1} (ticks).
    pub differences: Vec<f64>,
    /// Target differences s_{i+1} − s_i (ticks).
    pub targets: Vec<f64>,
}

/// Measures Eq. (3): at heavy load the additive scheduler spaces class
/// delays by constant *differences* D_ij = s_j − s_i.
pub fn additive(scale: Scale) -> AdditiveStudy {
    // Offsets of 1, 11, 21, 31 p-units (in ticks): targets of 10 p-units
    // between successive classes.
    let p = pdd::traffic::PAPER_MEAN_PACKET_BYTES;
    let offsets: Vec<f64> = (0..4).map(|i| (1.0 + 10.0 * i as f64) * p).collect();
    let sdp = Sdp::new(&offsets).expect("increasing offsets");
    // The additive scheduler, like WTP, reaches its heavy-load regime only
    // when class delays dwarf the offsets; run very close to saturation.
    let e = Experiment::paper(0.995, sdp, scale.punits(), scale.seeds());
    let r = e.run(SchedulerKind::Additive);
    let differences = r.mean_delays.windows(2).map(|w| w[0] - w[1]).collect();
    let targets = offsets.windows(2).map(|w| w[1] - w[0]).collect();
    AdditiveStudy {
        offsets,
        delays: r.mean_delays,
        differences,
        targets,
    }
}

/// Renders the additive study.
pub fn render_additive(study: &AdditiveStudy) -> String {
    let p = pdd::traffic::PAPER_MEAN_PACKET_BYTES;
    let mut out = banner("Ablation: additive differentiation (Eq. 3) at rho = 0.995");
    let mut t = Table::new([
        "pair",
        "measured d_i - d_j (p-units)",
        "target s_j - s_i (p-units)",
    ]);
    for (i, (diff, target)) in study.differences.iter().zip(&study.targets).enumerate() {
        t.row([
            format!("{}/{}", i + 1, i + 2),
            format!("{:.1}", diff / p),
            format!("{:.1}", target / p),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nreading: with p_i(t) = w_i(t) + s_i the heavy-load class delays are\n\
         spaced by constant differences D_ij ~= s_j - s_i (the paper's Eq. 3\n\
         observation), not constant ratios — the contrast that motivates the\n\
         proportional model.\n",
    );
    out
}

/// Simulator-vs-theory comparison under Poisson arrivals.
#[derive(Debug, Clone)]
pub struct AnalyticCheck {
    /// `(scheduler, class, measured wait, predicted wait)` rows, waits in
    /// p-units.
    pub rows: Vec<(SchedulerKind, usize, f64, f64)>,
}

/// Validates the simulator against the exact M/G/1 formulas: P–K (FCFS),
/// Cobham (strict priority), and Kleinrock's TDP (WTP), at ρ = 0.9 with
/// the paper's packet sizes and 40/30/20/10 class mix.
pub fn analytic(scale: Scale) -> AnalyticCheck {
    use pdd::analytic::Mg1;
    use pdd::qsim::Session;
    use pdd::simcore::Time as SimTime;
    use pdd::stats::Summary;
    use pdd::traffic::{IatDist, LoadPlan, SizeDist};

    let fractions = [0.4, 0.3, 0.2, 0.1];
    let rho = 0.9;
    let q = Mg1::paper_sizes(rho, &fractions).expect("stable");
    let slopes = [1.0, 2.0, 4.0, 8.0];
    let predicted: Vec<(SchedulerKind, Vec<f64>)> = vec![
        (SchedulerKind::Fcfs, vec![q.fcfs_wait(); 4]),
        (SchedulerKind::Strict, q.strict_priority_waits()),
        (SchedulerKind::Wtp, q.tdp_waits(&slopes)),
    ];

    // Mean waits mix slowly at rho = 0.9 (long busy-period correlations),
    // so average several independent seeds rather than one long window.
    let horizon = SimTime::from_ticks(scale.punits().max(20_000) * 441 * 4);
    let warmup = SimTime::from_ticks(horizon.ticks() / 20);
    let seeds: Vec<u64> = (0..6).map(|k| 23 + k * 101).collect();
    let jobs: Vec<_> = seeds
        .into_iter()
        .map(|seed| {
            let predicted = predicted.clone();
            move || {
                let plan = LoadPlan::new(1.0, rho, &fractions, SizeDist::paper()).expect("valid");
                let mut sources = plan
                    .sources(&IatDist::exponential(1.0).expect("static"))
                    .expect("valid");
                let trace = Trace::generate_per_source(&mut sources, horizon, seed);
                let mut out = Vec::new();
                for (kind, _) in &predicted {
                    let mut s = kind.build(&Sdp::geometric(4, 2.0).expect("static"), 1.0);
                    let mut acc = vec![Summary::new(); 4];
                    Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
                        if d.start >= warmup {
                            acc[d.packet.class as usize].push(d.wait().as_f64());
                        }
                    });
                    out.push(acc.iter().map(Summary::mean).collect::<Vec<_>>());
                }
                out
            }
        })
        .collect();
    let per_seed = parallel_map(jobs);
    let mut rows = Vec::new();
    for (k, (kind, pred)) in predicted.iter().enumerate() {
        for c in 0..4 {
            let measured = per_seed.iter().map(|s| s[k][c]).sum::<f64>() / per_seed.len() as f64;
            rows.push((*kind, c, measured / 441.0, pred[c] / 441.0));
        }
    }
    AnalyticCheck { rows }
}

/// Renders the analytic check.
pub fn render_analytic(check: &AnalyticCheck) -> String {
    let mut out =
        banner("Ablation: simulator vs exact M/G/1 theory (Poisson arrivals, rho = 0.9, p-units)");
    let mut t = Table::new(["scheduler", "class", "simulated", "theory", "error"]);
    for (kind, c, m, p) in &check.rows {
        t.row([
            kind.name().to_string(),
            format!("{}", c + 1),
            format!("{m:.1}"),
            format!("{p:.1}"),
            format!("{:+.1}%", (m / p - 1.0) * 100.0),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nreading: FCFS matches Pollaczek-Khinchine, strict priority matches\n\
         Cobham, and WTP matches Kleinrock's Time-Dependent Priorities — the\n\
         simulator agrees with independent closed forms to Monte-Carlo noise.\n",
    );
    out
}

/// End-to-end differentiation on partially deployed paths.
#[derive(Debug, Clone)]
pub struct MixedPath {
    /// `(label, R_D, inconsistent experiments)` per deployment scenario.
    pub rows: Vec<(&'static str, f64, usize)>,
}

/// The mixed-path deployment scenarios: `(label, per-hop schedulers)`.
pub fn mixed_path_scenarios() -> Vec<(&'static str, Vec<SchedulerKind>)> {
    vec![
        ("WTP x4", vec![SchedulerKind::Wtp; 4]),
        (
            "WTP x3 + FCFS",
            vec![
                SchedulerKind::Wtp,
                SchedulerKind::Fcfs,
                SchedulerKind::Wtp,
                SchedulerKind::Wtp,
            ],
        ),
        (
            "WTP x2 + FCFS x2",
            vec![
                SchedulerKind::Wtp,
                SchedulerKind::Fcfs,
                SchedulerKind::Wtp,
                SchedulerKind::Fcfs,
            ],
        ),
        ("FCFS x4", vec![SchedulerKind::Fcfs; 4]),
    ]
}

/// Measures one mixed-path scenario by its [`mixed_path_scenarios`] index.
pub fn mixed_path_cell(scenario: usize, scale: Scale) -> (&'static str, f64, usize) {
    use pdd::netsim::{analyze, packet_time_tolerance, Session, StudyBConfig};

    let (experiments, warmup) = scale.study_b();
    let (label, links) = mixed_path_scenarios()
        .into_iter()
        .nth(scenario)
        .expect("scenario index in range");
    let mut cfg = StudyBConfig::paper(4, 0.95, 20, 200.0);
    cfg.experiments = experiments;
    cfg.warmup_secs = warmup;
    cfg.link_schedulers = Some(links);
    cfg.seed = 5;
    let (records, _) = Session::study_b(&cfg).run();
    let r = analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg));
    (label, r.rd, r.inconsistent_experiments)
}

/// Measures how a path with legacy (FCFS) hops dilutes the end-to-end
/// differentiation: all-WTP vs one FCFS hop vs half FCFS vs all-FCFS, on a
/// 4-hop Figure-6 chain at ρ = 0.95.
pub fn mixed_path(scale: Scale) -> MixedPath {
    let jobs: Vec<_> = (0..mixed_path_scenarios().len())
        .map(|i| move || mixed_path_cell(i, scale))
        .collect();
    MixedPath {
        rows: parallel_map(jobs),
    }
}

/// Renders the mixed-path study.
pub fn render_mixed_path(study: &MixedPath) -> String {
    let mut out = banner(
        "Ablation: partially deployed differentiation (4-hop path, rho = 0.95, ideal R_D 2.0)",
    );
    let mut t = Table::new(["per-hop schedulers", "end-to-end R_D", "inconsistent exps"]);
    for (label, rd, inc) in &study.rows {
        t.row([label.to_string(), format!("{rd:.2}"), format!("{inc}")]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nreading: every legacy FCFS hop pulls the end-to-end ratio toward 1;\n\
         differentiation survives partial deployment but weakens per legacy\n\
         hop — deployment coverage is itself a tuning knob.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shootout_separates_scheduler_families() {
        // PAD's long-run-average bookkeeping needs more departures than a
        // single bench-scale seed provides before its deviation separates
        // cleanly from WTP's; a slightly longer two-seed run is stable.
        let s = schedulers(Scale::Custom {
            punits: 12_000,
            nseeds: 2,
        });
        // FCFS does not differentiate.
        let fcfs = s
            .rows
            .iter()
            .find(|(k, _, _)| *k == SchedulerKind::Fcfs)
            .unwrap();
        let fcfs_mean = fcfs.1.iter().sum::<f64>() / fcfs.1.len() as f64;
        assert!((fcfs_mean - 1.0).abs() < 0.3, "FCFS mean ratio {fcfs_mean}");
        // WTP is far closer to target than FCFS.
        assert!(s.deviation(SchedulerKind::Wtp) < s.deviation(SchedulerKind::Fcfs));
        // PAD holds the target at least as well as WTP does.
        assert!(s.deviation(SchedulerKind::Pad) < s.deviation(SchedulerKind::Wtp) + 0.05);
        assert!(s.render().contains("scheduler"));
    }

    #[test]
    fn proposition_2_threshold_matches_observation() {
        let probes = starvation();
        for p in &probes {
            // At the exact threshold (ratio = 2) the proposition's strict
            // inequality doesn't apply; skip it.
            if (p.sdp_ratio - 2.0).abs() < 1e-9 {
                continue;
            }
            assert_eq!(
                p.predicted, p.observed,
                "ratio {}: predicted {} observed {}",
                p.sdp_ratio, p.predicted, p.observed
            );
        }
        assert!(render_starvation(&probes).contains("Proposition 2"));
    }

    #[test]
    fn paper_operating_points_are_feasible() {
        let probes = feasibility(Scale::Bench);
        for p in probes.iter().filter(|p| p.spacing <= 4.0) {
            assert!(
                p.feasible,
                "spacing {} at {}% should be feasible",
                p.spacing,
                p.utilization * 100.0
            );
        }
        assert!(render_feasibility(&probes).contains("feasibility"));
    }

    #[test]
    fn pad_fixes_moderate_load_undershoot() {
        let m = moderate_load(Scale::Bench);
        let (rho, rows) = &m.points[0];
        assert!((*rho - 0.70).abs() < 1e-9);
        let get = |kind| {
            rows.iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, r)| *r)
                .unwrap()
        };
        let wtp = get(SchedulerKind::Wtp);
        let pad = get(SchedulerKind::Pad);
        assert!(wtp < 1.9, "WTP should undershoot at 70%, got {wtp}");
        assert!(
            (pad - 2.0).abs() < (wtp - 2.0).abs() + 0.05,
            "PAD {pad} should be closer to 2.0 than WTP {wtp}"
        );
        assert!(m.render().contains("moderate-load"));
    }

    #[test]
    fn plr_controls_losses_tail_drop_does_not() {
        let study = plr(Scale::Bench);
        for (sigma, plr_ratio, tail_ratio, delay_ratio) in &study.rows {
            assert!(
                (plr_ratio - sigma).abs() / sigma < 0.35,
                "sigma {sigma}: PLR ratio {plr_ratio}"
            );
            assert!(
                (tail_ratio - 1.0).abs() < 0.4,
                "tail-drop ratio {tail_ratio} should stay near 1"
            );
            assert!(*delay_ratio > 1.3, "WTP still differentiates delays");
        }
        assert!(render_plr(&study).contains("loss"));
    }

    #[test]
    fn additive_spaces_differences_not_ratios() {
        // Bench scale is too short for the additive scheduler's heavy-load
        // regime (the spacing only converges once class delays dwarf the
        // offsets), so this one statistical check runs a longer horizon.
        let study = additive(Scale::Custom {
            punits: 20_000,
            nseeds: 4,
        });
        for (diff, target) in study.differences.iter().zip(&study.targets) {
            assert!(
                (diff - target).abs() / target < 0.35,
                "difference {diff} vs target {target}"
            );
        }
        assert!(render_additive(&study).contains("additive"));
    }

    #[test]
    fn simulator_agrees_with_closed_forms() {
        let check = analytic(Scale::Bench);
        for (kind, c, m, p) in &check.rows {
            assert!(
                (m - p).abs() / p < 0.15,
                "{} class {c}: measured {m} vs theory {p}",
                kind.name()
            );
        }
        assert!(render_analytic(&check).contains("theory"));
    }

    #[test]
    fn mixed_paths_interpolate_between_wtp_and_fcfs() {
        let m = mixed_path(Scale::Bench);
        let rd = |label: &str| {
            m.rows
                .iter()
                .find(|(l, _, _)| *l == label)
                .map(|(_, r, _)| *r)
                .unwrap()
        };
        let full = rd("WTP x4");
        let one = rd("WTP x3 + FCFS");
        let none = rd("FCFS x4");
        assert!(full > one, "full {full} vs one-FCFS {one}");
        assert!(one > none, "one-FCFS {one} vs FCFS {none}");
        assert!((none - 1.0).abs() < 0.25, "all-FCFS R_D {none}");
        assert!(render_mixed_path(&m).contains("partially deployed"));
    }
}
