//! The counting probe: run metrics with no per-event allocation.

use std::fmt;
use std::time::Instant;

use simcore::Time;

use crate::probe::{PacketId, Probe};

/// Per-class counters and gauges accumulated by [`CountingProbe`].
#[derive(Debug, Clone, Default)]
pub struct ClassMetrics {
    /// Packets offered to the system.
    pub arrivals: u64,
    /// Packets admitted into the class queue.
    pub enqueues: u64,
    /// Packets that finished transmission (at their exit hop).
    pub departures: u64,
    /// Packets dropped by a finite buffer.
    pub drops: u64,
    /// Decisions won by this class.
    pub decisions_won: u64,
    /// Sum of hop-local queueing waits (ticks) over departures.
    pub wait_ticks_sum: u64,
    /// Bytes delivered (departures at the exit hop).
    pub bytes_delivered: u64,
    /// Current queued-packet gauge (enqueues − hop departures − drops).
    pub depth: i64,
    /// High-water mark of the queued-packet gauge.
    pub depth_high_water: i64,
    /// Current queued-byte gauge.
    pub backlog_bytes: i64,
    /// High-water mark of the queued-byte gauge.
    pub backlog_high_water: i64,
}

impl ClassMetrics {
    /// Mean hop-local queueing wait of delivered packets, in ticks.
    pub fn mean_wait(&self) -> f64 {
        if self.departures == 0 {
            0.0
        } else {
            self.wait_ticks_sum as f64 / self.departures as f64
        }
    }

    /// Fraction of arrivals dropped.
    pub fn loss_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops as f64 / self.arrivals as f64
        }
    }
}

/// A metrics-recording probe: cheap enough to leave on for real runs.
///
/// Tracks per-class counters/gauges, global decision and heartbeat tallies,
/// the engine's event-queue high-water mark, the virtual-time span of the
/// run, and wall-clock throughput. Snapshot with
/// [`CountingProbe::report`].
///
/// On multi-hop runs, gauges aggregate over hops (the depth gauge counts
/// queued packets anywhere in the network) while `departures` counts exit
/// hops only, so packet conservation (`arrivals = departures + drops`)
/// still holds per class.
#[derive(Debug, Clone)]
pub struct CountingProbe {
    classes: Vec<ClassMetrics>,
    decisions: u64,
    events: u64,
    heartbeats: u64,
    scenario_events: u64,
    heap_high_water: usize,
    first_event: Option<Time>,
    last_event: Time,
    started: Instant,
}

impl CountingProbe {
    /// A probe for `num_classes` service classes.
    pub fn new(num_classes: usize) -> Self {
        CountingProbe {
            classes: vec![ClassMetrics::default(); num_classes],
            decisions: 0,
            events: 0,
            heartbeats: 0,
            scenario_events: 0,
            heap_high_water: 0,
            first_event: None,
            last_event: Time::ZERO,
            started: Instant::now(),
        }
    }

    fn class(&mut self, class: u8) -> &mut ClassMetrics {
        let c = class as usize;
        assert!(
            c < self.classes.len(),
            "probe saw class {c} but was built for {} classes",
            self.classes.len()
        );
        &mut self.classes[c]
    }

    fn touch(&mut self, at: Time) {
        self.events += 1;
        if self.first_event.is_none() {
            self.first_event = Some(at);
        }
        self.last_event = self.last_event.max(at);
    }

    /// Freezes the counters into a [`MetricsReport`].
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            classes: self.classes.clone(),
            decisions: self.decisions,
            probe_events: self.events,
            heartbeats: self.heartbeats,
            scenario_events: self.scenario_events,
            heap_high_water: self.heap_high_water,
            virtual_span_ticks: self
                .last_event
                .ticks()
                .saturating_sub(self.first_event.unwrap_or(Time::ZERO).ticks()),
            wall_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}

impl Probe for CountingProbe {
    fn on_arrival(&mut self, at: Time, id: PacketId) {
        self.touch(at);
        self.class(id.class).arrivals += 1;
    }

    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        self.touch(at);
        let m = self.class(id.class);
        m.enqueues += 1;
        m.depth += 1;
        m.depth_high_water = m.depth_high_water.max(m.depth);
        m.backlog_bytes += id.size as i64;
        m.backlog_high_water = m.backlog_high_water.max(m.backlog_bytes);
    }

    fn on_decision(
        &mut self,
        at: Time,
        _scheduler: &'static str,
        winner: PacketId,
        _values: &[(usize, f64)],
    ) {
        self.touch(at);
        self.decisions += 1;
        self.class(winner.class).decisions_won += 1;
    }

    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        self.touch(finish);
        let m = self.class(id.class);
        m.depth -= 1;
        m.backlog_bytes -= id.size as i64;
        m.wait_ticks_sum += start.saturating_since(arrival).ticks();
        if eol {
            m.departures += 1;
            m.bytes_delivered += id.size as u64;
        }
    }

    fn on_drop(&mut self, at: Time, id: PacketId, _backlog_bytes: u64, _buffer_bytes: u64) {
        self.touch(at);
        self.class(id.class).drops += 1;
    }

    fn on_heartbeat(&mut self, at: Time, _events_handled: u64, heap_depth: usize) {
        self.touch(at);
        self.heartbeats += 1;
        self.heap_high_water = self.heap_high_water.max(heap_depth);
    }

    fn on_scenario_event(&mut self, at: Time, _link: u16, _kind: &'static str, _value: f64) {
        self.touch(at);
        self.scenario_events += 1;
    }
}

/// A frozen snapshot of a [`CountingProbe`].
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Per-class counters and gauge high-water marks.
    pub classes: Vec<ClassMetrics>,
    /// Total scheduler decisions observed.
    pub decisions: u64,
    /// Total probe events observed (all kinds).
    pub probe_events: u64,
    /// Heartbeats received from the discrete-event runner.
    pub heartbeats: u64,
    /// Dynamic-scenario timeline events applied during the run.
    pub scenario_events: u64,
    /// Largest event-queue depth reported by any heartbeat.
    pub heap_high_water: usize,
    /// Virtual-time span covered by the run, in ticks.
    pub virtual_span_ticks: u64,
    /// Wall-clock seconds from probe construction to the snapshot.
    pub wall_secs: f64,
}

impl MetricsReport {
    /// Probe events per wall-clock second (the run's observed throughput).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.probe_events as f64 / self.wall_secs
        }
    }

    /// Total departures across classes.
    pub fn total_departures(&self) -> u64 {
        self.classes.iter().map(|c| c.departures).sum()
    }

    /// Total drops across classes.
    pub fn total_drops(&self) -> u64 {
        self.classes.iter().map(|c| c.drops).sum()
    }

    /// Renders the report as a compact JSON object (stable key order, no
    /// dependencies), for machine consumption next to the JSONL trace.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"decisions\":{},", self.decisions));
        s.push_str(&format!("\"probe_events\":{},", self.probe_events));
        s.push_str(&format!("\"heartbeats\":{},", self.heartbeats));
        s.push_str(&format!("\"scenario_events\":{},", self.scenario_events));
        s.push_str(&format!("\"heap_high_water\":{},", self.heap_high_water));
        s.push_str(&format!(
            "\"virtual_span_ticks\":{},",
            self.virtual_span_ticks
        ));
        s.push_str(&format!("\"wall_secs\":{},", self.wall_secs));
        s.push_str(&format!("\"events_per_sec\":{:.0},", self.events_per_sec()));
        s.push_str("\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"class\":{i},\"arrivals\":{},\"departures\":{},\"drops\":{},\
                 \"decisions_won\":{},\"mean_wait_ticks\":{:.3},\"loss_fraction\":{:.6},\
                 \"depth_high_water\":{},\"backlog_bytes_high_water\":{}}}",
                c.arrivals,
                c.departures,
                c.drops,
                c.decisions_won,
                c.mean_wait(),
                c.loss_fraction(),
                c.depth_high_water,
                c.backlog_high_water,
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} probe events over {} virtual ticks ({} decisions, {} heartbeats, heap high-water {})",
            self.probe_events, self.virtual_span_ticks, self.decisions, self.heartbeats, self.heap_high_water
        )?;
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(
                f,
                "class {}: arrivals {:>8}  departures {:>8}  drops {:>6}  mean wait {:>12.1}  \
                 depth hwm {:>6}  backlog hwm {:>9} B",
                i + 1,
                c.arrivals,
                c.departures,
                c.drops,
                c.mean_wait(),
                c.depth_high_water,
                c.backlog_high_water,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64, class: u8, size: u32) -> PacketId {
        PacketId::single_link(seq, class, size)
    }

    #[test]
    fn lifecycle_counters_balance() {
        let mut p = CountingProbe::new(2);
        // Packet 0 (class 0): arrives, queues, wins, departs.
        p.on_arrival(Time::ZERO, id(0, 0, 100));
        p.on_enqueue(Time::ZERO, id(0, 0, 100));
        p.on_decision(Time::from_ticks(5), "WTP", id(0, 0, 100), &[(0, 5.0)]);
        p.on_depart(
            id(0, 0, 100),
            Time::ZERO,
            Time::from_ticks(5),
            Time::from_ticks(105),
            true,
        );
        // Packet 1 (class 1): arrives and is dropped.
        p.on_arrival(Time::from_ticks(10), id(1, 1, 50));
        p.on_drop(Time::from_ticks(10), id(1, 1, 50), 100, 128);
        let r = p.report();
        assert_eq!(r.classes[0].arrivals, 1);
        assert_eq!(r.classes[0].departures, 1);
        assert_eq!(r.classes[0].decisions_won, 1);
        assert_eq!(r.classes[0].wait_ticks_sum, 5);
        assert_eq!(r.classes[0].depth, 0);
        assert_eq!(r.classes[0].depth_high_water, 1);
        assert_eq!(r.classes[0].backlog_high_water, 100);
        assert_eq!(r.classes[1].drops, 1);
        assert_eq!(r.classes[1].loss_fraction(), 1.0);
        assert_eq!(r.total_departures(), 1);
        assert_eq!(r.total_drops(), 1);
        assert_eq!(r.decisions, 1);
        assert_eq!(r.virtual_span_ticks, 105);
    }

    #[test]
    fn gauges_track_high_water() {
        let mut p = CountingProbe::new(1);
        for s in 0..3 {
            p.on_enqueue(Time::ZERO, id(s, 0, 100));
        }
        p.on_depart(
            id(0, 0, 100),
            Time::ZERO,
            Time::ZERO,
            Time::from_ticks(100),
            true,
        );
        p.on_enqueue(Time::from_ticks(100), id(3, 0, 100));
        let r = p.report();
        assert_eq!(r.classes[0].depth, 3);
        assert_eq!(r.classes[0].depth_high_water, 3);
        assert_eq!(r.classes[0].backlog_high_water, 300);
    }

    #[test]
    fn non_eol_departures_keep_conservation() {
        // A two-hop journey: hop 0 departure is not end-of-life.
        let mut p = CountingProbe::new(1);
        p.on_arrival(Time::ZERO, id(0, 0, 100));
        p.on_enqueue(Time::ZERO, id(0, 0, 100));
        p.on_depart(
            id(0, 0, 100),
            Time::ZERO,
            Time::ZERO,
            Time::from_ticks(100),
            false,
        );
        p.on_enqueue(Time::from_ticks(100), id(0, 0, 100));
        p.on_depart(
            id(0, 0, 100),
            Time::from_ticks(100),
            Time::from_ticks(100),
            Time::from_ticks(200),
            true,
        );
        let r = p.report();
        assert_eq!(r.classes[0].arrivals, 1);
        assert_eq!(r.classes[0].departures, 1);
        assert_eq!(r.classes[0].depth, 0);
    }

    #[test]
    fn heartbeat_tracks_heap_high_water() {
        let mut p = CountingProbe::new(1);
        p.on_heartbeat(Time::from_ticks(1), 100, 7);
        p.on_heartbeat(Time::from_ticks(2), 200, 3);
        let r = p.report();
        assert_eq!(r.heartbeats, 2);
        assert_eq!(r.heap_high_water, 7);
    }

    #[test]
    fn scenario_events_are_tallied() {
        let mut p = CountingProbe::new(1);
        p.on_scenario_event(Time::from_ticks(5), 0, "set_sdp", 0.0);
        p.on_scenario_event(Time::from_ticks(9), 1, "link_down", 0.0);
        let r = p.report();
        assert_eq!(r.scenario_events, 2);
        assert!(r.to_json().contains("\"scenario_events\":2"));
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let mut p = CountingProbe::new(2);
        p.on_enqueue(Time::ZERO, id(0, 1, 40));
        let j = p.report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"classes\":["));
        assert!(j.contains("\"decisions\":0"));
        // Balanced braces (cheap structural sanity).
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    #[should_panic(expected = "built for 2 classes")]
    fn out_of_range_class_panics() {
        let mut p = CountingProbe::new(2);
        p.on_arrival(Time::ZERO, id(0, 5, 10));
    }
}
