//! The counting probe: run metrics with no per-event allocation.

use std::fmt;
use std::time::Instant;

use simcore::Time;

use crate::probe::{PacketId, Probe};
use crate::registry::MetricsRegistry;

/// Per-class counters and gauges accumulated by [`CountingProbe`].
#[derive(Debug, Clone, Default)]
pub struct ClassMetrics {
    /// Packets offered to the system.
    pub arrivals: u64,
    /// Packets admitted into the class queue.
    pub enqueues: u64,
    /// Packets that finished transmission (at their exit hop).
    pub departures: u64,
    /// Packets dropped by a finite buffer.
    pub drops: u64,
    /// Decisions won by this class.
    pub decisions_won: u64,
    /// Sum of hop-local queueing waits (ticks) over departures.
    pub wait_ticks_sum: u64,
    /// Bytes delivered (departures at the exit hop).
    pub bytes_delivered: u64,
    /// Current queued-packet gauge (enqueues − hop departures − drops).
    pub depth: i64,
    /// High-water mark of the queued-packet gauge.
    pub depth_high_water: i64,
    /// Current queued-byte gauge.
    pub backlog_bytes: i64,
    /// High-water mark of the queued-byte gauge.
    pub backlog_high_water: i64,
}

impl ClassMetrics {
    /// Mean hop-local queueing wait of delivered packets, in ticks.
    pub fn mean_wait(&self) -> f64 {
        if self.departures == 0 {
            0.0
        } else {
            self.wait_ticks_sum as f64 / self.departures as f64
        }
    }

    /// Fraction of arrivals dropped.
    pub fn loss_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops as f64 / self.arrivals as f64
        }
    }
}

/// A metrics-recording probe: cheap enough to leave on for real runs.
///
/// Since the registry landed this is a thin class-checked wrapper over
/// [`MetricsRegistry`] (the wrapper adds the fixed class universe, the
/// wall clock, and the flat [`MetricsReport`] snapshot shape — the
/// registry itself is open-world and wall-clock-free so it stays
/// mergeable). Reach the registry with [`CountingProbe::registry`] for
/// per-link channels, histograms, and merging.
///
/// On multi-hop runs, gauges aggregate over hops (the depth gauge counts
/// queued packets anywhere in the network) while `departures` counts exit
/// hops only, so packet conservation (`arrivals = departures + drops`)
/// still holds per class.
#[derive(Debug, Clone)]
pub struct CountingProbe {
    registry: MetricsRegistry,
    num_classes: usize,
    started: Instant,
}

impl CountingProbe {
    /// A probe for `num_classes` service classes.
    pub fn new(num_classes: usize) -> Self {
        CountingProbe {
            registry: MetricsRegistry::with_shape(1, num_classes),
            num_classes,
            started: Instant::now(),
        }
    }

    #[inline]
    fn check(&self, class: u8) {
        let c = class as usize;
        assert!(
            c < self.num_classes,
            "probe saw class {c} but was built for {} classes",
            self.num_classes
        );
    }

    /// The underlying mergeable registry (per-link channels, histograms).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the probe, keeping the registry (e.g. to merge shards).
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    /// Freezes the counters into a [`MetricsReport`].
    pub fn report(&self) -> MetricsReport {
        let classes = (0..self.num_classes)
            .map(|c| {
                let t = self.registry.class_total(c);
                ClassMetrics {
                    arrivals: t.arrivals,
                    enqueues: t.enqueues,
                    departures: t.departures,
                    drops: t.drops,
                    decisions_won: t.decisions_won,
                    wait_ticks_sum: t.wait_ticks_sum,
                    bytes_delivered: t.bytes_delivered,
                    depth: t.depth,
                    depth_high_water: t.depth_high_water,
                    backlog_bytes: t.backlog_bytes,
                    backlog_high_water: t.backlog_high_water,
                }
            })
            .collect();
        MetricsReport {
            classes,
            decisions: self.registry.decisions(),
            probe_events: self.registry.probe_events(),
            heartbeats: self.registry.heartbeats(),
            scenario_events: self.registry.scenario_events(),
            heap_high_water: self.registry.heap_high_water(),
            virtual_span_ticks: self.registry.virtual_span_ticks(),
            wall_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}

impl Probe for CountingProbe {
    // Wraps the registry; the audit slice is forwarded but never read.
    const WANTS_DECISION_VALUES: bool = false;

    fn on_arrival(&mut self, at: Time, id: PacketId) {
        self.check(id.class);
        self.registry.on_arrival(at, id);
    }

    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        self.check(id.class);
        self.registry.on_enqueue(at, id);
    }

    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        self.check(winner.class);
        self.registry.on_decision(at, scheduler, winner, values);
    }

    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        self.check(id.class);
        self.registry.on_depart(id, arrival, start, finish, eol);
    }

    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        self.check(id.class);
        self.registry.on_drop(at, id, backlog_bytes, buffer_bytes);
    }

    fn on_heartbeat(&mut self, at: Time, events_handled: u64, heap_depth: usize) {
        self.registry.on_heartbeat(at, events_handled, heap_depth);
    }

    fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
        self.registry.on_scenario_event(at, link, kind, value);
    }
}

/// A frozen snapshot of a [`CountingProbe`].
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Per-class counters and gauge high-water marks.
    pub classes: Vec<ClassMetrics>,
    /// Total scheduler decisions observed.
    pub decisions: u64,
    /// Total probe events observed (all kinds).
    pub probe_events: u64,
    /// Heartbeats received from the discrete-event runner.
    pub heartbeats: u64,
    /// Dynamic-scenario timeline events applied during the run.
    pub scenario_events: u64,
    /// Largest event-queue depth reported by any heartbeat.
    pub heap_high_water: usize,
    /// Virtual-time span covered by the run, in ticks.
    pub virtual_span_ticks: u64,
    /// Wall-clock seconds from probe construction to the snapshot.
    pub wall_secs: f64,
}

impl MetricsReport {
    /// Probe events per wall-clock second (the run's observed throughput).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.probe_events as f64 / self.wall_secs
        }
    }

    /// Total departures across classes.
    pub fn total_departures(&self) -> u64 {
        self.classes.iter().map(|c| c.departures).sum()
    }

    /// Total drops across classes.
    pub fn total_drops(&self) -> u64 {
        self.classes.iter().map(|c| c.drops).sum()
    }

    /// Renders the report as a compact JSON object (stable key order, no
    /// dependencies), for machine consumption next to the JSONL trace.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"decisions\":{},", self.decisions));
        s.push_str(&format!("\"probe_events\":{},", self.probe_events));
        s.push_str(&format!("\"heartbeats\":{},", self.heartbeats));
        s.push_str(&format!("\"scenario_events\":{},", self.scenario_events));
        s.push_str(&format!("\"heap_high_water\":{},", self.heap_high_water));
        s.push_str(&format!(
            "\"virtual_span_ticks\":{},",
            self.virtual_span_ticks
        ));
        s.push_str(&format!("\"wall_secs\":{},", self.wall_secs));
        s.push_str(&format!("\"events_per_sec\":{:.0},", self.events_per_sec()));
        s.push_str("\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"class\":{i},\"arrivals\":{},\"departures\":{},\"drops\":{},\
                 \"decisions_won\":{},\"mean_wait_ticks\":{:.3},\"loss_fraction\":{:.6},\
                 \"depth_high_water\":{},\"backlog_bytes_high_water\":{}}}",
                c.arrivals,
                c.departures,
                c.drops,
                c.decisions_won,
                c.mean_wait(),
                c.loss_fraction(),
                c.depth_high_water,
                c.backlog_high_water,
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} probe events over {} virtual ticks ({} decisions, {} heartbeats, heap high-water {})",
            self.probe_events, self.virtual_span_ticks, self.decisions, self.heartbeats, self.heap_high_water
        )?;
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(
                f,
                "class {}: arrivals {:>8}  departures {:>8}  drops {:>6}  mean wait {:>12.1}  \
                 depth hwm {:>6}  backlog hwm {:>9} B",
                i + 1,
                c.arrivals,
                c.departures,
                c.drops,
                c.mean_wait(),
                c.depth_high_water,
                c.backlog_high_water,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64, class: u8, size: u32) -> PacketId {
        PacketId::single_link(seq, class, size)
    }

    #[test]
    fn lifecycle_counters_balance() {
        let mut p = CountingProbe::new(2);
        // Packet 0 (class 0): arrives, queues, wins, departs.
        p.on_arrival(Time::ZERO, id(0, 0, 100));
        p.on_enqueue(Time::ZERO, id(0, 0, 100));
        p.on_decision(Time::from_ticks(5), "WTP", id(0, 0, 100), &[(0, 5.0)]);
        p.on_depart(
            id(0, 0, 100),
            Time::ZERO,
            Time::from_ticks(5),
            Time::from_ticks(105),
            true,
        );
        // Packet 1 (class 1): arrives and is dropped.
        p.on_arrival(Time::from_ticks(10), id(1, 1, 50));
        p.on_drop(Time::from_ticks(10), id(1, 1, 50), 100, 128);
        let r = p.report();
        assert_eq!(r.classes[0].arrivals, 1);
        assert_eq!(r.classes[0].departures, 1);
        assert_eq!(r.classes[0].decisions_won, 1);
        assert_eq!(r.classes[0].wait_ticks_sum, 5);
        assert_eq!(r.classes[0].depth, 0);
        assert_eq!(r.classes[0].depth_high_water, 1);
        assert_eq!(r.classes[0].backlog_high_water, 100);
        assert_eq!(r.classes[1].drops, 1);
        assert_eq!(r.classes[1].loss_fraction(), 1.0);
        assert_eq!(r.total_departures(), 1);
        assert_eq!(r.total_drops(), 1);
        assert_eq!(r.decisions, 1);
        assert_eq!(r.virtual_span_ticks, 105);
    }

    #[test]
    fn gauges_track_high_water() {
        let mut p = CountingProbe::new(1);
        for s in 0..3 {
            p.on_enqueue(Time::ZERO, id(s, 0, 100));
        }
        p.on_depart(
            id(0, 0, 100),
            Time::ZERO,
            Time::ZERO,
            Time::from_ticks(100),
            true,
        );
        p.on_enqueue(Time::from_ticks(100), id(3, 0, 100));
        let r = p.report();
        assert_eq!(r.classes[0].depth, 3);
        assert_eq!(r.classes[0].depth_high_water, 3);
        assert_eq!(r.classes[0].backlog_high_water, 300);
    }

    #[test]
    fn non_eol_departures_keep_conservation() {
        // A two-hop journey: hop 0 departure is not end-of-life.
        let mut p = CountingProbe::new(1);
        p.on_arrival(Time::ZERO, id(0, 0, 100));
        p.on_enqueue(Time::ZERO, id(0, 0, 100));
        p.on_depart(
            id(0, 0, 100),
            Time::ZERO,
            Time::ZERO,
            Time::from_ticks(100),
            false,
        );
        p.on_enqueue(Time::from_ticks(100), id(0, 0, 100));
        p.on_depart(
            id(0, 0, 100),
            Time::from_ticks(100),
            Time::from_ticks(100),
            Time::from_ticks(200),
            true,
        );
        let r = p.report();
        assert_eq!(r.classes[0].arrivals, 1);
        assert_eq!(r.classes[0].departures, 1);
        assert_eq!(r.classes[0].depth, 0);
    }

    #[test]
    fn heartbeat_tracks_heap_high_water() {
        let mut p = CountingProbe::new(1);
        p.on_heartbeat(Time::from_ticks(1), 100, 7);
        p.on_heartbeat(Time::from_ticks(2), 200, 3);
        let r = p.report();
        assert_eq!(r.heartbeats, 2);
        assert_eq!(r.heap_high_water, 7);
    }

    #[test]
    fn scenario_events_are_tallied() {
        let mut p = CountingProbe::new(1);
        p.on_scenario_event(Time::from_ticks(5), 0, "set_sdp", 0.0);
        p.on_scenario_event(Time::from_ticks(9), 1, "link_down", 0.0);
        let r = p.report();
        assert_eq!(r.scenario_events, 2);
        assert!(r.to_json().contains("\"scenario_events\":2"));
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let mut p = CountingProbe::new(2);
        p.on_enqueue(Time::ZERO, id(0, 1, 40));
        let j = p.report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"classes\":["));
        assert!(j.contains("\"decisions\":0"));
        // Balanced braces (cheap structural sanity).
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    #[should_panic(expected = "built for 2 classes")]
    fn out_of_range_class_panics() {
        let mut p = CountingProbe::new(2);
        p.on_arrival(Time::ZERO, id(0, 5, 10));
    }
}
