//! Online PDD conformance monitoring.
//!
//! The proportional model's contract is Eq. (2): over any monitoring
//! interval `(t, t+τ)` the achieved ratio of successive-class average
//! delays should sit at the spacing target `δᵢ/δᵢ₊₁`. The paper's Figures
//! 2–3 show why a *live* check matters: with short timescales the achieved
//! ratio wanders and even inverts while long-run averages look perfect —
//! exactly the failure a post-hoc summary hides.
//!
//! [`PddMonitor`] watches end-of-life departures (it is a [`Probe`], so it
//! attaches to any session), accumulates per-class delay sums over rolling
//! windows of `window_ticks`, and at each window boundary evaluates every
//! successive pair against the target in force at the window's start. A
//! pair whose achieved ratio leaves the tolerance band emits a structured
//! [`Violation`] — [`ViolationKind::Inversion`] when differentiation
//! actually reversed (achieved < 1 against a target > 1), otherwise
//! [`ViolationKind::Drift`].
//!
//! Targets are an epoch schedule ([`MonitorConfig::retarget`]), so a live
//! SDP swap mid-run retargets the monitor at the same instant: windows
//! during the transient violate, then the monitor goes quiet once the
//! scheduler reconverges.

use simcore::Time;

use crate::probe::{PacketId, Probe};

/// Which way a window failed conformance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The achieved ratio left the tolerance band but stayed above 1.
    Drift,
    /// The achieved ratio fell below 1 against a target above 1: the
    /// lower class got *better* delay — differentiation inverted.
    Inversion,
}

impl ViolationKind {
    /// Stable slug for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Drift => "drift",
            ViolationKind::Inversion => "inversion",
        }
    }
}

/// One conformance failure: a (window, class pair) whose achieved delay
/// ratio missed its target.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Start of the offending window, in ticks.
    pub window_start_ticks: u64,
    /// Window width, in ticks.
    pub window_ticks: u64,
    /// Class-pair index `i`: the ratio is d̄ᵢ/d̄ᵢ₊₁.
    pub pair: usize,
    /// The achieved ratio over this window.
    pub achieved: f64,
    /// The target ratio in force at the window's start.
    pub target: f64,
    /// Drift or inversion.
    pub kind: ViolationKind,
}

impl Violation {
    /// Relative error of the achieved ratio, `|achieved/target − 1|`.
    pub fn drift(&self) -> f64 {
        (self.achieved / self.target - 1.0).abs()
    }

    /// One JSON object per violation (stable key order, one line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window_start_ticks\":{},\"window_ticks\":{},\"pair\":{},\
             \"achieved\":{:.6},\"target\":{:.6},\"kind\":\"{}\"}}",
            self.window_start_ticks,
            self.window_ticks,
            self.pair,
            self.achieved,
            self.target,
            self.kind.name()
        )
    }
}

/// Configuration for [`PddMonitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Rolling-window width in ticks (the paper's monitoring timescale τ).
    pub window_ticks: u64,
    /// Tolerance band: a pair violates when `|achieved/target − 1| > epsilon`.
    pub epsilon: f64,
    /// Minimum departures per class in a window for the pair to be
    /// evaluated (guards against meaningless two-sample ratios).
    pub min_samples: u64,
    /// Target-ratio epochs `(from_tick, ratios)`, sorted by `from_tick`;
    /// `ratios[i]` is the target for d̄ᵢ/d̄ᵢ₊₁.
    pub targets: Vec<(u64, Vec<f64>)>,
}

impl MonitorConfig {
    /// A single-epoch config: `ratios` in force from tick 0.
    ///
    /// # Panics
    /// Panics if `window_ticks` is 0, `epsilon` is not positive and
    /// finite, or `ratios` is empty or contains a non-positive entry.
    pub fn new(window_ticks: u64, epsilon: f64, ratios: Vec<f64>) -> Self {
        assert!(window_ticks > 0, "window must be positive");
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "tolerance must be positive and finite"
        );
        assert!(!ratios.is_empty(), "need at least one class pair");
        assert!(
            ratios.iter().all(|&r| r > 0.0 && r.is_finite()),
            "target ratios must be positive and finite"
        );
        MonitorConfig {
            window_ticks,
            epsilon,
            min_samples: 5,
            targets: vec![(0, ratios)],
        }
    }

    /// Appends a target epoch: `ratios` take effect for windows starting
    /// at or after `from_tick` (use alongside a scenario SDP swap so the
    /// monitor retargets when the scheduler does).
    ///
    /// # Panics
    /// Panics if `from_tick` is not after the last epoch's start or the
    /// pair count changes.
    pub fn retarget(mut self, from_tick: u64, ratios: Vec<f64>) -> Self {
        let (last_from, last) = self.targets.last().expect("always at least one epoch");
        assert!(from_tick > *last_from, "epochs must be strictly ordered");
        assert_eq!(last.len(), ratios.len(), "pair count cannot change");
        assert!(
            ratios.iter().all(|&r| r > 0.0 && r.is_finite()),
            "target ratios must be positive and finite"
        );
        self.targets.push((from_tick, ratios));
        self
    }

    /// Number of classes implied by the target vectors.
    pub fn num_classes(&self) -> usize {
        self.targets[0].1.len() + 1
    }

    fn targets_at(&self, tick: u64) -> &[f64] {
        let mut current = &self.targets[0].1;
        for (from, ratios) in &self.targets {
            if *from <= tick {
                current = ratios;
            } else {
                break;
            }
        }
        current
    }
}

/// The online conformance monitor: buckets departures into rolling
/// windows of [`MonitorConfig::window_ticks`], compares each adjacent
/// class pair's achieved delay ratio to the target in force, and records
/// a [`Violation`] when the ratio drifts outside the tolerance band or
/// inverts. Call [`finish`](Self::finish) to close the trailing partial
/// window.
#[derive(Debug, Clone)]
pub struct PddMonitor {
    cfg: MonitorConfig,
    window: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
    violations: Vec<Violation>,
    windows_closed: u64,
    pairs_evaluated: u64,
    finished: bool,
}

impl PddMonitor {
    /// Creates a monitor; windows start at tick 0.
    pub fn new(cfg: MonitorConfig) -> Self {
        let n = cfg.num_classes();
        PddMonitor {
            cfg,
            window: 0,
            sums: vec![0.0; n],
            counts: vec![0; n],
            violations: Vec::new(),
            windows_closed: 0,
            pairs_evaluated: 0,
            finished: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Feeds one departure: `class`'s packet left at `at_ticks` after a
    /// queueing delay of `delay_ticks`. Departures are expected in
    /// nondecreasing time order (a stray earlier sample folds into the
    /// current window rather than reopening a closed one).
    ///
    /// # Panics
    /// Panics if `class` is outside the configured class set.
    pub fn record(&mut self, at_ticks: u64, class: usize, delay_ticks: f64) {
        assert!(
            class < self.sums.len(),
            "monitor saw class {class} but was built for {} classes",
            self.sums.len()
        );
        let k = at_ticks / self.cfg.window_ticks;
        while k > self.window {
            self.close_window();
        }
        self.sums[class] += delay_ticks;
        self.counts[class] += 1;
    }

    fn close_window(&mut self) {
        let start = self.window * self.cfg.window_ticks;
        let targets = self.cfg.targets_at(start).to_vec();
        for (pair, &target) in targets.iter().enumerate() {
            let (hi, lo) = (self.counts[pair], self.counts[pair + 1]);
            if hi < self.cfg.min_samples || lo < self.cfg.min_samples {
                continue;
            }
            self.pairs_evaluated += 1;
            let achieved = (self.sums[pair] / hi as f64) / (self.sums[pair + 1] / lo as f64);
            if (achieved / target - 1.0).abs() > self.cfg.epsilon {
                let kind = if achieved < 1.0 && target >= 1.0 {
                    ViolationKind::Inversion
                } else {
                    ViolationKind::Drift
                };
                self.violations.push(Violation {
                    window_start_ticks: start,
                    window_ticks: self.cfg.window_ticks,
                    pair,
                    achieved,
                    target,
                    kind,
                });
            }
        }
        self.sums.iter_mut().for_each(|s| *s = 0.0);
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.window += 1;
        self.windows_closed += 1;
    }

    /// Closes the current partial window so its samples are evaluated.
    /// Call once after the run; further departures reopen monitoring.
    pub fn finish(&mut self) {
        if !self.finished && self.counts.iter().any(|&c| c > 0) {
            self.close_window();
        }
        self.finished = true;
    }

    /// All violations so far, in window order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// (window, pair) combinations that had enough samples to evaluate.
    pub fn pairs_evaluated(&self) -> u64 {
        self.pairs_evaluated
    }

    /// End tick of the last violating window (`None` if fully conformant).
    pub fn last_violation_end_ticks(&self) -> Option<u64> {
        self.violations
            .iter()
            .map(|v| v.window_start_ticks + v.window_ticks)
            .max()
    }

    /// Largest relative drift among the violations (`0` if none).
    pub fn max_drift(&self) -> f64 {
        self.violations
            .iter()
            .map(Violation::drift)
            .fold(0.0, f64::max)
    }

    /// The monitor state as one JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"propdiff-monitor-v1\",");
        s.push_str(&format!("\"window_ticks\":{},", self.cfg.window_ticks));
        s.push_str(&format!("\"epsilon\":{:.6},", self.cfg.epsilon));
        s.push_str(&format!("\"min_samples\":{},", self.cfg.min_samples));
        s.push_str(&format!("\"windows_closed\":{},", self.windows_closed));
        s.push_str(&format!("\"pairs_evaluated\":{},", self.pairs_evaluated));
        s.push_str(&format!("\"violation_count\":{},", self.violations.len()));
        s.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&v.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Monitor counters in the Prometheus text exposition format
    /// (concatenates cleanly after [`MetricsRegistry::to_prometheus`]
    /// output).
    ///
    /// [`MetricsRegistry::to_prometheus`]: crate::MetricsRegistry::to_prometheus
    pub fn to_prometheus(&self) -> String {
        let mut out = String::from(
            "# HELP propdiff_monitor_violations_total Conformance violations by pair and kind.\n\
             # TYPE propdiff_monitor_violations_total counter\n",
        );
        let pairs = self.cfg.num_classes() - 1;
        for pair in 0..pairs {
            for kind in [ViolationKind::Drift, ViolationKind::Inversion] {
                let n = self
                    .violations
                    .iter()
                    .filter(|v| v.pair == pair && v.kind == kind)
                    .count();
                out.push_str(&format!(
                    "propdiff_monitor_violations_total{{pair=\"{pair}\",kind=\"{}\"}} {n}\n",
                    kind.name()
                ));
            }
        }
        out.push_str(&format!(
            "# HELP propdiff_monitor_windows_closed_total Monitoring windows evaluated.\n\
             # TYPE propdiff_monitor_windows_closed_total counter\n\
             propdiff_monitor_windows_closed_total {}\n",
            self.windows_closed
        ));
        out.push_str(&format!(
            "# HELP propdiff_monitor_pairs_evaluated_total Window-pair evaluations with enough samples.\n\
             # TYPE propdiff_monitor_pairs_evaluated_total counter\n\
             propdiff_monitor_pairs_evaluated_total {}\n",
            self.pairs_evaluated
        ));
        out
    }
}

impl Probe for PddMonitor {
    // Delay samples only — the decision audit slice is never read.
    const WANTS_DECISION_VALUES: bool = false;

    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        if eol {
            let wait = start.saturating_since(arrival).ticks();
            self.record(finish.ticks(), id.class as usize, wait as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64) -> MonitorConfig {
        let mut c = MonitorConfig::new(window, 0.25, vec![2.0, 2.0]);
        c.min_samples = 1;
        c
    }

    /// Fills window `k` with per-class mean delays `d` (one sample each).
    fn fill(m: &mut PddMonitor, k: u64, d: [f64; 3]) {
        let at = k * m.config().window_ticks;
        for (c, &delay) in d.iter().enumerate() {
            m.record(at, c, delay);
        }
    }

    #[test]
    fn conformant_windows_stay_quiet() {
        let mut m = PddMonitor::new(cfg(100));
        for k in 0..5 {
            fill(&mut m, k, [40.0, 20.0, 10.0]);
        }
        m.finish();
        assert_eq!(m.windows_closed(), 5);
        assert_eq!(m.pairs_evaluated(), 10);
        assert!(m.violations().is_empty());
        assert_eq!(m.max_drift(), 0.0);
    }

    #[test]
    fn drift_outside_the_band_fires() {
        let mut m = PddMonitor::new(cfg(100));
        fill(&mut m, 0, [70.0, 20.0, 10.0]); // pair 0 achieved 3.5 vs 2.0
        m.finish();
        let v = &m.violations()[0];
        assert_eq!(v.pair, 0);
        assert_eq!(v.kind, ViolationKind::Drift);
        assert!((v.achieved - 3.5).abs() < 1e-12);
        assert!((v.drift() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn inversion_is_classified() {
        let mut m = PddMonitor::new(cfg(100));
        fill(&mut m, 0, [10.0, 20.0, 10.0]); // pair 0 achieved 0.5
        m.finish();
        assert_eq!(m.violations()[0].kind, ViolationKind::Inversion);
        assert!(m.violations()[0].to_json().contains("inversion"));
    }

    #[test]
    fn min_samples_guards_thin_windows() {
        let mut c = cfg(100);
        c.min_samples = 2;
        let mut m = PddMonitor::new(c);
        fill(&mut m, 0, [10.0, 20.0, 10.0]); // only 1 sample per class
        m.finish();
        assert_eq!(m.pairs_evaluated(), 0);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn retarget_epochs_take_effect() {
        let c = cfg(100).retarget(300, vec![4.0, 4.0]);
        let mut m = PddMonitor::new(c);
        // Ratio 4 everywhere: violates under the first epoch (target 2),
        // conforms after the retarget at tick 300.
        for k in 0..6 {
            fill(&mut m, k, [160.0, 40.0, 10.0]);
        }
        m.finish();
        assert!(
            m.violations().iter().all(|v| v.window_start_ticks < 300),
            "{:?}",
            m.violations()
        );
        assert_eq!(m.violations().len(), 6); // 3 windows × 2 pairs
        assert_eq!(m.last_violation_end_ticks(), Some(300));
    }

    #[test]
    fn empty_windows_are_skipped_without_evaluation() {
        let mut m = PddMonitor::new(cfg(100));
        fill(&mut m, 0, [40.0, 20.0, 10.0]);
        fill(&mut m, 4, [40.0, 20.0, 10.0]); // windows 1-3 silent
        m.finish();
        assert_eq!(m.windows_closed(), 5);
        assert_eq!(m.pairs_evaluated(), 4);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn probe_feed_uses_eol_departures_only() {
        let mut m = PddMonitor::new(cfg(100));
        let p = PacketId::single_link(0, 1, 100);
        m.on_depart(
            p,
            Time::ZERO,
            Time::from_ticks(30),
            Time::from_ticks(40),
            false,
        );
        m.on_depart(
            p,
            Time::ZERO,
            Time::from_ticks(30),
            Time::from_ticks(40),
            true,
        );
        assert_eq!(m.counts[1], 1);
        assert_eq!(m.sums[1], 30.0);
    }

    #[test]
    fn json_and_prometheus_render() {
        let mut m = PddMonitor::new(cfg(100));
        fill(&mut m, 0, [70.0, 20.0, 10.0]);
        m.finish();
        let j = m.to_json();
        assert!(j.contains("\"violation_count\":1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let prom = m.to_prometheus();
        assert!(crate::registry::validate_prometheus(&prom).is_ok());
        assert!(prom.contains("pair=\"0\",kind=\"drift\"} 1"));
    }

    #[test]
    #[should_panic(expected = "built for 3 classes")]
    fn out_of_range_class_panics() {
        PddMonitor::new(cfg(100)).record(0, 7, 1.0);
    }
}
