//! The probe trait, the zero-cost no-op, and the fan-out combinator.

use simcore::Time;

/// Identity of a packet as seen by a probe event.
///
/// `span` is the end-to-end trace id: constant across every hop of a
/// multi-hop journey (the multi-hop engine stores its per-packet
/// correlation tag here), so one packet's whole path shares one id. On a
/// single link `span == seq`. `seq` and `arrival` in the events are always
/// local to the hop that emitted them; `hop` says which hop that is (0 on
/// a single link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketId {
    /// End-to-end trace/span id (constant across hops).
    pub span: u64,
    /// Hop-local sequence number.
    pub seq: u64,
    /// Service class, 0-based; higher index = higher class.
    pub class: u8,
    /// Length in bytes.
    pub size: u32,
    /// Which hop emitted the event (0 on a single link).
    pub hop: u16,
}

impl PacketId {
    /// A single-link id: span = seq, hop = 0.
    pub fn single_link(seq: u64, class: u8, size: u32) -> Self {
        PacketId {
            span: seq,
            seq,
            class,
            size,
            hop: 0,
        }
    }
}

/// A packet-lifecycle and engine observer.
///
/// Instrumented loops are generic over `P: Probe` and wrap every call in
/// `if P::ENABLED { … }`. With [`NoopProbe`] that constant is `false`, the
/// branches fold away at monomorphization time, and the instrumented loop
/// compiles to the uninstrumented one — *zero*-cost, not merely cheap
/// (verified against the tracked perf baseline).
///
/// All methods default to no-ops so probes implement only what they need.
/// Within one hop, events for a packet arrive in lifecycle order
/// (arrival → enqueue → decision naming its class → depart, or
/// arrival → drop); times are nondecreasing per hop. An arrival is
/// followed immediately by its enqueue or drop *at the same instant*, and
/// a decision at `t` by its departure at `finish >= t` — probes tracking
/// the observed time span may rely on this (the metrics registry skips
/// span upkeep in `on_arrival`/`on_decision` because of it).
pub trait Probe {
    /// Whether instrumented code should construct and emit records at all.
    /// Leave `true` for any probe that observes anything.
    const ENABLED: bool = true;

    /// Whether this probe consumes the `values` audit slice passed to
    /// [`on_decision`](Self::on_decision). Computing it costs the scheduler
    /// a full per-class pass *per decision*, so counter-only probes (the
    /// metrics registry, the conformance monitor) opt out and receive an
    /// empty slice; instrumented loops skip the audit when this is `false`.
    /// Defaults to `true` so recording probes stay complete by default.
    const WANTS_DECISION_VALUES: bool = true;

    /// A packet was offered to the system at `at` (before any buffer
    /// admission decision).
    fn on_arrival(&mut self, at: Time, id: PacketId) {
        let _ = (at, id);
    }

    /// A packet was admitted into its class queue at `at`.
    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        let _ = (at, id);
    }

    /// The scheduler picked `winner` at decision instant `at`.
    ///
    /// `values` is the scheduler's internal decision record — per-class
    /// `(class, value)` pairs in class order, covering at least the
    /// backlogged classes. The meaning of `value` is per scheduler: WTP
    /// reports the normalized head-of-line priority `w_i(t)·s_i`, BPR the
    /// head's remaining virtual work `L_i − v_i(t)` (its service-share
    /// deficit). Schedulers without an audit hook report an empty slice.
    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        let _ = (at, scheduler, winner, values);
    }

    /// A packet finished transmission.
    ///
    /// `arrival`/`start`/`finish` are hop-local. `eol` (end of life) is
    /// `true` when the packet leaves the *system* — always on a single
    /// link, only at the exit hop of a multi-hop path — so sinks can close
    /// the packet's span exactly once.
    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        let _ = (id, arrival, start, finish, eol);
    }

    /// A packet was dropped at `at` (finite-buffer operation).
    ///
    /// `backlog_bytes` is the queued-byte occupancy at the drop instant
    /// (excluding the dropped packet), `buffer_bytes` the configured limit.
    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        let _ = (at, id, backlog_bytes, buffer_bytes);
    }

    /// Periodic engine progress: virtual time, events handled so far, and
    /// the current event-queue depth. Emitted by the discrete-event runner
    /// every N events so multi-minute runs are observably alive.
    fn on_heartbeat(&mut self, at: Time, events_handled: u64, heap_depth: usize) {
        let _ = (at, events_handled, heap_depth);
    }

    /// A dynamic-scenario timeline event was applied at `at` — a live SDP
    /// swap, link-rate change, link fault, class membership change, or load
    /// surge (see the `scenario` crate). `link` is the affected link index
    /// (0 on a single link; the scenario runtime uses it for the class index
    /// of class-scoped events). `kind` is the event's stable name
    /// (`"set_sdp"`, `"link_down"`, …) and `value` its scalar payload
    /// (new rate, gap scale, …; 0 when the event carries none).
    fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
        let _ = (at, link, kind, value);
    }
}

/// The zero-cost probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
    const WANTS_DECISION_VALUES: bool = false;
}

/// Forwarding impl so loops can take `&mut P` without consuming the probe.
impl<P: Probe + ?Sized> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;
    const WANTS_DECISION_VALUES: bool = P::WANTS_DECISION_VALUES;

    fn on_arrival(&mut self, at: Time, id: PacketId) {
        (**self).on_arrival(at, id);
    }

    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        (**self).on_enqueue(at, id);
    }

    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        (**self).on_decision(at, scheduler, winner, values);
    }

    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        (**self).on_depart(id, arrival, start, finish, eol);
    }

    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        (**self).on_drop(at, id, backlog_bytes, buffer_bytes);
    }

    fn on_heartbeat(&mut self, at: Time, events_handled: u64, heap_depth: usize) {
        (**self).on_heartbeat(at, events_handled, heap_depth);
    }

    fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
        (**self).on_scenario_event(at, link, kind, value);
    }
}

/// Fans every event out to two probes (nest for more): metrics *and* a
/// trace sink in one replay, still fully monomorphized.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    const WANTS_DECISION_VALUES: bool = A::WANTS_DECISION_VALUES || B::WANTS_DECISION_VALUES;

    fn on_arrival(&mut self, at: Time, id: PacketId) {
        self.0.on_arrival(at, id);
        self.1.on_arrival(at, id);
    }

    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        self.0.on_enqueue(at, id);
        self.1.on_enqueue(at, id);
    }

    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        self.0.on_decision(at, scheduler, winner, values);
        self.1.on_decision(at, scheduler, winner, values);
    }

    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        self.0.on_depart(id, arrival, start, finish, eol);
        self.1.on_depart(id, arrival, start, finish, eol);
    }

    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        self.0.on_drop(at, id, backlog_bytes, buffer_bytes);
        self.1.on_drop(at, id, backlog_bytes, buffer_bytes);
    }

    fn on_heartbeat(&mut self, at: Time, events_handled: u64, heap_depth: usize) {
        self.0.on_heartbeat(at, events_handled, heap_depth);
        self.1.on_heartbeat(at, events_handled, heap_depth);
    }

    fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
        self.0.on_scenario_event(at, link, kind, value);
        self.1.on_scenario_event(at, link, kind, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe that records which hooks fired, for combinator tests.
    #[derive(Default)]
    struct Recorder(Vec<&'static str>);

    impl Probe for Recorder {
        fn on_arrival(&mut self, _at: Time, _id: PacketId) {
            self.0.push("arrival");
        }
        fn on_depart(&mut self, _id: PacketId, _a: Time, _s: Time, _f: Time, _eol: bool) {
            self.0.push("depart");
        }
    }

    fn pid() -> PacketId {
        PacketId::single_link(7, 2, 100)
    }

    // The assertions *should* be constant: they pin compile-time ENABLED
    // wiring that instrumented loops branch on.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn noop_probe_is_disabled() {
        assert!(!NoopProbe::ENABLED);
        // And callable anyway (instrumented code may skip the gate).
        let mut p = NoopProbe;
        p.on_arrival(Time::ZERO, pid());
        p.on_heartbeat(Time::ZERO, 1, 2);
    }

    #[test]
    fn single_link_id_aliases_span_to_seq() {
        let id = pid();
        assert_eq!(id.span, 7);
        assert_eq!(id.seq, 7);
        assert_eq!(id.hop, 0);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = Tee(Recorder::default(), Recorder::default());
        tee.on_arrival(Time::ZERO, pid());
        tee.on_depart(pid(), Time::ZERO, Time::ZERO, Time::from_ticks(1), true);
        assert_eq!(tee.0 .0, vec!["arrival", "depart"]);
        assert_eq!(tee.1 .0, vec!["arrival", "depart"]);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn tee_enabled_is_or_of_parts() {
        assert!(!Tee::<NoopProbe, NoopProbe>::ENABLED);
        assert!(Tee::<Recorder, NoopProbe>::ENABLED);
        assert!(Tee::<NoopProbe, Recorder>::ENABLED);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut r = Recorder::default();
        {
            let by_ref = &mut r;
            let mut fwd: &mut Recorder = by_ref;
            Probe::on_arrival(&mut fwd, Time::ZERO, pid());
        }
        assert_eq!(r.0, vec!["arrival"]);
    }
}
